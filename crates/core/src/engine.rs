//! Pluggable CQ-evaluation engines.
//!
//! The paper's tractability results are statements about *which algorithm a
//! class admits*: the same WDPT procedures (Theorems 6, 8, 9, 11) run on top
//! of a CQ hom-existence oracle that is the generic backtracking search for
//! arbitrary WDPTs, the `TW(k)` structured engine under (local/global)
//! treewidth bounds, or the `HW(k)` engine under hypertreewidth bounds.
//! [`Engine`] makes that choice explicit, so benchmarks can compare the
//! columns of Table 1 like-for-like.

use std::collections::BTreeSet;
use wdpt_cq::{
    backtrack,
    structured::{boolean_eval_structured, enumerate_projections, StructuredPlan},
    ConjunctiveQuery,
};
use wdpt_model::{Database, Mapping, Var};

/// The CQ evaluation strategy used inside WDPT procedures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Generic backtracking join (always applicable; exponential worst case).
    Backtrack,
    /// Decomposition-guided evaluation assuming treewidth ≤ k.
    Tw(usize),
    /// Decomposition-guided evaluation assuming hypertreewidth ≤ k.
    Hw(usize),
}

impl Engine {
    fn plan(self, q: &ConjunctiveQuery) -> Option<StructuredPlan> {
        match self {
            Engine::Backtrack => None,
            Engine::Tw(k) => Some(StructuredPlan::for_query_tw(q, k).unwrap_or_else(|| {
                panic!("Engine::Tw({k}): query is not in TW({k}); class restriction violated")
            })),
            Engine::Hw(k) => Some(StructuredPlan::for_query_hw(q, k).unwrap_or_else(|| {
                panic!("Engine::Hw({k}): query is not in HW({k}); class restriction violated")
            })),
        }
    }

    /// Does a homomorphism from `q`'s body into `db` extending `seed` exist?
    pub fn hom_exists(self, q: &ConjunctiveQuery, db: &Database, seed: &Mapping) -> bool {
        match self.plan(q) {
            None => backtrack::extend_exists(db, q.body(), seed),
            Some(plan) => boolean_eval_structured(q, db, &plan, seed),
        }
    }

    /// Projections onto `targets` of the homomorphisms from `q`'s body into
    /// `db` extending `seed`. With a structured engine this enumerates the
    /// candidate product of `targets` and Boolean-checks each — polynomial
    /// for bounded `|targets|` (the Theorem 6 pattern).
    pub fn project(
        self,
        q: &ConjunctiveQuery,
        db: &Database,
        targets: &BTreeSet<Var>,
        seed: &Mapping,
    ) -> Vec<Mapping> {
        match self.plan(q) {
            None => {
                let mut out: BTreeSet<Mapping> = BTreeSet::new();
                for h in backtrack::extend_all(db, q.body(), seed) {
                    out.insert(h.restrict(targets));
                }
                out.into_iter().collect()
            }
            Some(plan) => enumerate_projections(q, db, &plan, targets, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_model::parse::{parse_atoms, parse_database};
    use wdpt_model::Interner;

    #[test]
    fn engines_agree_on_path_query() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(a,b) e(b,c)").unwrap();
        let q = ConjunctiveQuery::boolean(parse_atoms(&mut i, "e(?x,?y) e(?y,?z)").unwrap());
        for engine in [Engine::Backtrack, Engine::Tw(1), Engine::Hw(1)] {
            assert!(engine.hom_exists(&q, &db, &Mapping::empty()));
        }
        let q2 = ConjunctiveQuery::boolean(parse_atoms(&mut i, "e(?x,?x)").unwrap());
        for engine in [Engine::Backtrack, Engine::Tw(1), Engine::Hw(1)] {
            assert!(!engine.hom_exists(&q2, &db, &Mapping::empty()));
        }
    }

    #[test]
    #[should_panic(expected = "not in TW(1)")]
    fn tw_engine_rejects_wide_queries() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(a,b)").unwrap();
        let q =
            ConjunctiveQuery::boolean(parse_atoms(&mut i, "e(?x,?y) e(?y,?z) e(?z,?x)").unwrap());
        Engine::Tw(1).hom_exists(&q, &db, &Mapping::empty());
    }

    #[test]
    fn project_agrees_across_engines() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(a,b) e(b,c) e(c,d)").unwrap();
        let q = ConjunctiveQuery::boolean(parse_atoms(&mut i, "e(?x,?y) e(?y,?z)").unwrap());
        let y = i.var("y");
        let targets: BTreeSet<Var> = [y].into_iter().collect();
        let mut a = Engine::Backtrack.project(&q, &db, &targets, &Mapping::empty());
        let mut b = Engine::Tw(1).project(&q, &db, &targets, &Mapping::empty());
        let mut c = Engine::Hw(1).project(&q, &db, &targets, &Mapping::empty());
        a.sort();
        b.sort();
        c.sort();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.len(), 2); // y ∈ {b, c}
    }
}
