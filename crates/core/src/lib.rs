//! # wdpt-core — well-designed pattern trees
//!
//! The primary contribution of Barceló & Pichler (PODS 2015): WDPTs over
//! arbitrary relational schemas, their semantics, tractable classes, the
//! evaluation-problem variants, and subsumption.
//!
//! * [`tree`] — the WDPT type `(T, λ, x̄)` with well-designedness checking
//!   and rooted-subtree machinery (Definitions 1–2).
//! * [`semantics`] — maximal homomorphisms, `p(D)`, `p_m(D)`, and the
//!   thread-parallel evaluator fanning out over root homomorphisms and
//!   independent OPT children.
//! * [`classes`] — local tractability `ℓ-C(k)`, bounded interface `BI(c)`,
//!   global tractability `g-C(k)`, the well-behaved classes `WB(k)`
//!   (Sections 3 and 5).
//! * [`engine`] — the pluggable CQ oracle (backtracking vs `TW(k)` vs
//!   `HW(k)` structured evaluation).
//! * [`eval`] — the general EVAL decision procedure (Σ₂ᵖ, Theorem 1).
//! * [`eval_bi`] — the Theorem 6 polynomial algorithm for
//!   `ℓ-C(k) ∩ BI(c)`.
//! * [`profile`] — profiled evaluation entry points returning a
//!   [`wdpt_obs::QueryProfile`] (per-node homomorphism tallies, time per
//!   phase) alongside the answers.
//! * [`projection_free`] — the Theorem 4 polynomial algorithm for
//!   projection-free locally tractable trees.
//! * [`variants`] — PARTIAL-EVAL (Theorem 8) and MAX-EVAL (Theorem 9),
//!   polynomial under global tractability.
//! * [`subsumption`] — `⊑`, `≡ₛ`, and MAXEQUIVALENCE (Section 4,
//!   Theorems 11–12, Proposition 5).

pub mod classes;
pub mod engine;
pub mod eval;
pub mod eval_bi;
pub mod optimize;
pub mod planning;
pub mod profile;
pub mod projection_free;
pub mod semantics;
pub mod subsumption;
pub mod text;
pub mod tree;
pub mod variants;

pub use classes::{
    has_bounded_interface, in_wb, interface_width, is_globally_in, is_locally_in, WidthKind,
};
pub use engine::Engine;
pub use eval::eval_decide;
pub use eval_bi::eval_bounded_interface;
pub use optimize::normalize;
pub use planning::plan_wdpt;
pub use profile::{
    evaluate_max_profiled, evaluate_parallel_profiled, evaluate_profiled,
    try_evaluate_parallel_captured, try_evaluate_parallel_captured_planned,
    try_evaluate_parallel_profiled,
};
pub use projection_free::eval_projection_free;
pub use semantics::{
    evaluate, evaluate_max, evaluate_max_parallel, evaluate_parallel, maximal_homomorphisms,
    maximal_homomorphisms_parallel, try_evaluate, try_evaluate_parallel,
    try_evaluate_parallel_planned, try_maximal_homomorphisms, try_maximal_homomorphisms_parallel,
};
pub use subsumption::{max_equivalent, subsumed, subsumption_equivalent};
pub use text::{parse_wdpt, to_text};
pub use tree::{NodeId, Subtree, Wdpt, WdptBuilder, WdptError};
pub use variants::{max_eval_decide, partial_eval_decide};
