//! Well-designed pattern trees: structure and subtree machinery.
//!
//! A WDPT is a triple `(T, λ, x̄)` (Definition 1): a rooted tree `T`, a
//! labeling `λ` of nodes by sets of relational atoms, and a tuple `x̄` of
//! free variables. *Well-designedness* requires that, for every variable,
//! the set of nodes mentioning it is connected in `T`. Semantics flows
//! through the CQs `q_{T'}` of the rooted subtrees `T'` (Definition 2).

use std::collections::BTreeSet;
use wdpt_cq::ConjunctiveQuery;
use wdpt_model::{Atom, Interner, Var};

/// Index of a node inside a [`Wdpt`]; the root is always node `0`.
pub type NodeId = usize;

/// A rooted subtree of a WDPT: a set of node ids containing the root and
/// closed under parents.
pub type Subtree = BTreeSet<NodeId>;

/// A well-designed pattern tree `(T, λ, x̄)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wdpt {
    labels: Vec<Vec<Atom>>,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    free: Vec<Var>,
}

/// Errors raised when assembling a malformed pattern tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WdptError {
    /// Some variable's occurrence set is not connected in the tree
    /// (violates condition 2 of Definition 1).
    NotWellDesigned(Var),
    /// A free variable does not occur in any node label.
    FreeVarNotMentioned(Var),
    /// The free variable tuple contains duplicates.
    DuplicateFreeVar(Var),
}

impl std::fmt::Display for WdptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WdptError::NotWellDesigned(v) => {
                write!(f, "variable {v} occurs in a disconnected set of nodes")
            }
            WdptError::FreeVarNotMentioned(v) => {
                write!(f, "free variable {v} is not mentioned in the tree")
            }
            WdptError::DuplicateFreeVar(v) => {
                write!(f, "free variable {v} is repeated")
            }
        }
    }
}

impl std::error::Error for WdptError {}

/// Incremental builder: add the root first, then children, then call
/// [`WdptBuilder::build`] with the free variables.
#[derive(Debug, Default, Clone)]
pub struct WdptBuilder {
    labels: Vec<Vec<Atom>>,
    parent: Vec<Option<NodeId>>,
}

impl WdptBuilder {
    /// Starts a builder with the root node's label.
    pub fn new(root_atoms: Vec<Atom>) -> Self {
        WdptBuilder {
            labels: vec![root_atoms],
            parent: vec![None],
        }
    }

    /// Adds a child of `parent` and returns its id.
    ///
    /// # Panics
    /// Panics if `parent` does not exist yet.
    pub fn child(&mut self, parent: NodeId, atoms: Vec<Atom>) -> NodeId {
        assert!(parent < self.labels.len(), "unknown parent node");
        let id = self.labels.len();
        self.labels.push(atoms);
        self.parent.push(Some(parent));
        id
    }

    /// Finalizes the WDPT, validating well-designedness and the free tuple.
    pub fn build(self, free: Vec<Var>) -> Result<Wdpt, WdptError> {
        let n = self.labels.len();
        let mut children = vec![Vec::new(); n];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(i);
            }
        }
        let wdpt = Wdpt {
            labels: self.labels,
            parent: self.parent,
            children,
            free: free.clone(),
        };
        // Condition 2: connected occurrences.
        for v in wdpt.all_variables() {
            if !wdpt.occurrences_connected(v) {
                return Err(WdptError::NotWellDesigned(v));
            }
        }
        // Condition 3: free variables distinct and mentioned.
        let mentioned = wdpt.all_variables();
        let mut seen = BTreeSet::new();
        for &x in &free {
            if !seen.insert(x) {
                return Err(WdptError::DuplicateFreeVar(x));
            }
            if !mentioned.contains(&x) {
                return Err(WdptError::FreeVarNotMentioned(x));
            }
        }
        Ok(wdpt)
    }
}

impl Wdpt {
    /// A single-node WDPT — the representation of a plain CQ (the paper
    /// notes CQs are exactly the single-node WDPTs).
    pub fn from_cq(q: &ConjunctiveQuery) -> Self {
        WdptBuilder::new(q.body().to_vec())
            .build(q.head().to_vec())
            .expect("a single node is always well-designed")
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// The label `λ(t)`.
    pub fn atoms(&self, t: NodeId) -> &[Atom] {
        &self.labels[t]
    }

    /// Children of `t`.
    pub fn children(&self, t: NodeId) -> &[NodeId] {
        &self.children[t]
    }

    /// Parent of `t` (`None` for the root).
    pub fn parent(&self, t: NodeId) -> Option<NodeId> {
        self.parent[t]
    }

    /// The free variables `x̄`.
    pub fn free_vars(&self) -> &[Var] {
        &self.free
    }

    /// The free variables as a set.
    pub fn free_set(&self) -> BTreeSet<Var> {
        self.free.iter().copied().collect()
    }

    /// True iff every variable of the tree is free (Definition 1's
    /// projection-free WDPTs).
    pub fn is_projection_free(&self) -> bool {
        self.all_variables() == self.free_set()
    }

    /// Variables of a single node label.
    pub fn node_vars(&self, t: NodeId) -> BTreeSet<Var> {
        self.labels[t].iter().flat_map(|a| a.vars()).collect()
    }

    /// All variables mentioned anywhere in the tree.
    pub fn all_variables(&self) -> BTreeSet<Var> {
        (0..self.node_count())
            .flat_map(|t| self.node_vars(t))
            .collect()
    }

    /// Variables mentioned in a subtree.
    pub fn subtree_vars(&self, subtree: &Subtree) -> BTreeSet<Var> {
        subtree.iter().flat_map(|&t| self.node_vars(t)).collect()
    }

    /// Free variables mentioned in a subtree.
    pub fn subtree_free_vars(&self, subtree: &Subtree) -> BTreeSet<Var> {
        let free = self.free_set();
        self.subtree_vars(subtree)
            .intersection(&free)
            .copied()
            .collect()
    }

    fn occurrences_connected(&self, v: Var) -> bool {
        let holders: Vec<NodeId> = (0..self.node_count())
            .filter(|&t| self.node_vars(t).contains(&v))
            .collect();
        if holders.len() <= 1 {
            return true;
        }
        // The occurrence set is connected iff every holder except the
        // top-most one has its parent path reaching another holder through
        // holders only. Equivalently: walk up from each holder; the parent
        // of a non-top holder must itself be a holder.
        let hset: BTreeSet<NodeId> = holders.iter().copied().collect();
        let top = *holders
            .iter()
            .min_by_key(|&&t| self.depth(t))
            .expect("non-empty");
        holders.iter().all(|&t| {
            if t == top {
                return true;
            }
            match self.parent[t] {
                Some(p) => hset.contains(&p),
                None => false,
            }
        })
    }

    /// Depth of a node (root has depth 0).
    pub fn depth(&self, mut t: NodeId) -> usize {
        let mut d = 0;
        while let Some(p) = self.parent[t] {
            t = p;
            d += 1;
        }
        d
    }

    /// The full subtree (all nodes).
    pub fn full_subtree(&self) -> Subtree {
        (0..self.node_count()).collect()
    }

    /// The CQ `q_{T'}` of a rooted subtree: head = all variables of `T'`
    /// (Section 2).
    pub fn cq_of_subtree(&self, subtree: &Subtree) -> ConjunctiveQuery {
        let atoms: Vec<Atom> = subtree
            .iter()
            .flat_map(|&t| self.labels[t].iter().cloned())
            .collect();
        let head: Vec<Var> = self.subtree_vars(subtree).into_iter().collect();
        ConjunctiveQuery::new(head, atoms)
    }

    /// The CQ `r_{T'}` of a rooted subtree: head = free variables occurring
    /// in `T'` (Section 6, used by the `φ_cq` translation).
    pub fn projected_cq_of_subtree(&self, subtree: &Subtree) -> ConjunctiveQuery {
        let atoms: Vec<Atom> = subtree
            .iter()
            .flat_map(|&t| self.labels[t].iter().cloned())
            .collect();
        let head: Vec<Var> = self.subtree_free_vars(subtree).into_iter().collect();
        ConjunctiveQuery::new(head, atoms)
    }

    /// The Boolean CQ of one node label (for local-tractability checks).
    pub fn node_cq(&self, t: NodeId) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(self.labels[t].to_vec())
    }

    /// Number of rooted subtrees (including the root-only one), computed by
    /// the product formula `f(t) = Π_c (f(c) + 1)`.
    pub fn rooted_subtree_count(&self) -> u128 {
        fn f(w: &Wdpt, t: NodeId) -> u128 {
            w.children(t)
                .iter()
                .map(|&c| f(w, c).saturating_add(1))
                .fold(1u128, u128::saturating_mul)
        }
        f(self, self.root())
    }

    /// Enumerates every rooted subtree, invoking `visit` on each. The
    /// enumeration is exponential in general — exactly the co-nondeterminism
    /// of the paper's Π₂ᵖ upper bounds — so callers should consult
    /// [`Wdpt::rooted_subtree_count`] first on untrusted inputs.
    pub fn for_each_rooted_subtree<F: FnMut(&Subtree)>(&self, visit: &mut F) {
        let mut current: Subtree = [self.root()].into_iter().collect();
        self.enumerate_rec(&mut current, &self.frontier(&[self.root()]), visit);
    }

    fn frontier(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        nodes
            .iter()
            .flat_map(|&t| self.children(t).iter().copied())
            .collect()
    }

    fn enumerate_rec<F: FnMut(&Subtree)>(
        &self,
        current: &mut Subtree,
        frontier: &[NodeId],
        visit: &mut F,
    ) {
        match frontier.split_first() {
            None => visit(current),
            Some((&t, rest)) => {
                // Exclude t (and its whole subtree).
                self.enumerate_rec(current, rest, visit);
                // Include t; its children join the frontier.
                current.insert(t);
                let mut extended = rest.to_vec();
                extended.extend(self.children(t).iter().copied());
                self.enumerate_rec(current, &extended, visit);
                current.remove(&t);
            }
        }
    }

    /// The unique node containing `v` that is closest to the root (the top
    /// of `v`'s connected occurrence set), or `None` if `v` is not
    /// mentioned.
    pub fn top_node_of(&self, v: Var) -> Option<NodeId> {
        (0..self.node_count())
            .filter(|&t| self.node_vars(t).contains(&v))
            .min_by_key(|&t| self.depth(t))
    }

    /// The minimal rooted subtree mentioning every variable in `vars`, or
    /// `None` if some variable is absent from the tree. (The subtree `T'`
    /// of the Theorem 6 / Theorem 8 algorithms.)
    pub fn minimal_subtree_covering(&self, vars: &BTreeSet<Var>) -> Option<Subtree> {
        let mut subtree: Subtree = [self.root()].into_iter().collect();
        for &v in vars {
            let mut t = self.top_node_of(v)?;
            loop {
                if !subtree.insert(t) {
                    break;
                }
                match self.parent[t] {
                    Some(p) => t = p,
                    None => break,
                }
            }
        }
        Some(subtree)
    }

    /// The maximal rooted subtree whose free variables are contained in
    /// `allowed`: grow from the root, including a node iff its parent is
    /// included and it introduces no free variable outside `allowed`.
    /// (The subtree `T''` of the Theorem 6 algorithm.)
    pub fn maximal_subtree_with_free_vars_in(&self, allowed: &BTreeSet<Var>) -> Subtree {
        let free = self.free_set();
        let mut subtree = Subtree::new();
        let mut stack = vec![self.root()];
        while let Some(t) = stack.pop() {
            let bad = self
                .node_vars(t)
                .iter()
                .any(|v| free.contains(v) && !allowed.contains(v));
            if bad && t != self.root() {
                continue;
            }
            if bad && t == self.root() {
                // The root always belongs to every rooted subtree; callers
                // must handle a root that introduces disallowed free vars.
                subtree.insert(t);
                continue;
            }
            subtree.insert(t);
            stack.extend(self.children(t).iter().copied());
        }
        subtree
    }

    /// Renders the tree with one line per node, indented by depth.
    pub fn display(&self, interner: &Interner) -> String {
        let mut out = String::new();
        let free = self
            .free
            .iter()
            .map(|v| format!("?{}", interner.var_name(*v)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("WDPT free=({free})\n"));
        fn rec(w: &Wdpt, t: NodeId, depth: usize, interner: &Interner, out: &mut String) {
            let label = w.labels[t]
                .iter()
                .map(|a| a.display(interner))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("{}[{t}] {{{label}}}\n", "  ".repeat(depth)));
            for &c in w.children(t) {
                rec(w, c, depth + 1, interner, out);
            }
        }
        rec(self, self.root(), 0, interner, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_model::parse::parse_atoms;

    /// The WDPT of Figure 1 (query (1) of Example 1), with binary predicates
    /// as in Example 8.
    pub fn figure1(i: &mut Interner) -> Wdpt {
        let root = parse_atoms(i, r#"rec_by(?x,?y) publ(?x,"after_2010")"#).unwrap();
        let left = parse_atoms(i, "nme_rating(?x,?z)").unwrap();
        let right = parse_atoms(i, "formed_in(?y,?z2)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, left);
        b.child(0, right);
        let free = ["x", "y", "z", "z2"].iter().map(|n| i.var(n)).collect();
        b.build(free).unwrap()
    }

    #[test]
    fn figure1_shape() {
        let mut i = Interner::new();
        let p = figure1(&mut i);
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.children(0), &[1, 2]);
        assert!(p.is_projection_free());
        assert_eq!(p.rooted_subtree_count(), 4);
    }

    #[test]
    fn disconnected_variable_is_rejected() {
        let mut i = Interner::new();
        // ?z appears in the two leaves but not in the root: not connected.
        let root = parse_atoms(&mut i, "a(?x)").unwrap();
        let l1 = parse_atoms(&mut i, "b(?x,?z)").unwrap();
        let l2 = parse_atoms(&mut i, "c(?x,?z)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, l1);
        b.child(0, l2);
        let free = vec![i.var("x")];
        assert!(matches!(b.build(free), Err(WdptError::NotWellDesigned(_))));
    }

    #[test]
    fn variable_chain_through_parent_is_accepted() {
        let mut i = Interner::new();
        let root = parse_atoms(&mut i, "a(?x,?z)").unwrap();
        let l1 = parse_atoms(&mut i, "b(?x,?z)").unwrap();
        let l2 = parse_atoms(&mut i, "c(?x,?z)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, l1);
        b.child(0, l2);
        assert!(b.build(vec![i.var("x")]).is_ok());
    }

    #[test]
    fn free_var_must_be_mentioned() {
        let mut i = Interner::new();
        let b = WdptBuilder::new(parse_atoms(&mut i, "a(?x)").unwrap());
        let w = i.var("w");
        assert!(matches!(
            b.build(vec![w]),
            Err(WdptError::FreeVarNotMentioned(_))
        ));
    }

    #[test]
    fn duplicate_free_var_rejected() {
        let mut i = Interner::new();
        let b = WdptBuilder::new(parse_atoms(&mut i, "a(?x)").unwrap());
        let x = i.var("x");
        assert!(matches!(
            b.build(vec![x, x]),
            Err(WdptError::DuplicateFreeVar(_))
        ));
    }

    #[test]
    fn subtree_enumeration_counts_match() {
        let mut i = Interner::new();
        let p = figure1(&mut i);
        let mut n = 0usize;
        p.for_each_rooted_subtree(&mut |_| n += 1);
        assert_eq!(n as u128, p.rooted_subtree_count());
    }

    #[test]
    fn subtree_cqs_have_expected_heads() {
        let mut i = Interner::new();
        let p = figure1(&mut i);
        let full = p.full_subtree();
        let q = p.cq_of_subtree(&full);
        assert_eq!(q.head().len(), 4);
        assert_eq!(q.body().len(), 4);
        let root_only: Subtree = [0].into_iter().collect();
        let q0 = p.cq_of_subtree(&root_only);
        assert_eq!(q0.head().len(), 2); // x, y
    }

    #[test]
    fn minimal_subtree_covering_vars() {
        let mut i = Interner::new();
        let p = figure1(&mut i);
        let z = i.var("z");
        let cover = p
            .minimal_subtree_covering(&[z].into_iter().collect())
            .unwrap();
        assert!(cover.contains(&0));
        assert!(cover.contains(&1));
        assert!(!cover.contains(&2));
    }

    #[test]
    fn minimal_subtree_missing_var_is_none() {
        let mut i = Interner::new();
        let p = figure1(&mut i);
        let nope = i.var("nonexistent");
        assert!(p
            .minimal_subtree_covering(&[nope].into_iter().collect())
            .is_none());
    }

    #[test]
    fn maximal_subtree_excludes_disallowed_free_vars() {
        let mut i = Interner::new();
        let p = figure1(&mut i);
        let allowed: BTreeSet<Var> = ["x", "y", "z"].iter().map(|n| i.var(n)).collect();
        let t = p.maximal_subtree_with_free_vars_in(&allowed);
        assert!(t.contains(&0));
        assert!(t.contains(&1));
        assert!(!t.contains(&2)); // introduces z2
    }

    #[test]
    fn from_cq_roundtrip() {
        let mut i = Interner::new();
        let atoms = parse_atoms(&mut i, "e(?x,?y)").unwrap();
        let q = ConjunctiveQuery::new(vec![i.var("x")], atoms);
        let p = Wdpt::from_cq(&q);
        assert_eq!(p.node_count(), 1);
        assert!(!p.is_projection_free());
    }

    #[test]
    fn depth_and_tops() {
        let mut i = Interner::new();
        let p = figure1(&mut i);
        assert_eq!(p.depth(0), 0);
        assert_eq!(p.depth(2), 1);
        let x = i.var("x");
        let z = i.var("z");
        assert_eq!(p.top_node_of(x), Some(0));
        assert_eq!(p.top_node_of(z), Some(1));
    }

    #[test]
    fn display_is_indented() {
        let mut i = Interner::new();
        let p = figure1(&mut i);
        let s = p.display(&i);
        assert!(s.contains("WDPT free=(?x, ?y, ?z, ?z2)"));
        assert!(s.contains("  [1]"));
    }
}
