//! WDPT semantics: maximal homomorphisms, `p(D)`, and `p_m(D)`.
//!
//! Definition 2 of the paper: a homomorphism from `p = (T, λ, x̄)` to `D` is
//! a partial mapping that is a full homomorphism of `q_{T'}` for some rooted
//! subtree `T'`; it is *maximal* if no proper extension is again a
//! homomorphism; `p(D)` is the set of projections `h_x̄` of maximal
//! homomorphisms; `p_m(D)` (Section 3.4) keeps only the ⊑-maximal ones.
//!
//! The evaluator exploits well-designedness: two sibling subtrees can share
//! a variable only through their common ancestors, so once the ancestor
//! valuation is fixed the children are independent. A maximal homomorphism
//! is therefore a local homomorphism of the root joined, for every child
//! that is extendable at all, with some maximal extension into that child —
//! a recursive product that never enumerates the `2^{|T|}` subtrees
//! explicitly.

use crate::tree::Wdpt;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use wdpt_cq::backtrack::{extend_all, extend_exists, try_extend_all, try_extend_all_ordered};
use wdpt_model::{mapping::maximal_mappings, CancelToken, Cancelled, Database, Mapping};
use wdpt_obs::span;
use wdpt_plan::ExecPlan;

/// Local homomorphisms of node `t` under `inherited`, following the
/// planned static atom order when an [`ExecPlan`] carries one for the node
/// and the dynamic most-constrained heuristic otherwise. A plan indexed
/// for a different tree shape degrades per-node to the dynamic default.
fn node_extend(
    db: &Database,
    p: &Wdpt,
    t: usize,
    plan: Option<&ExecPlan>,
    inherited: &Mapping,
    token: &CancelToken,
) -> Result<Vec<Mapping>, Cancelled> {
    match plan.and_then(|pl| pl.nodes.get(t)) {
        Some(no) => try_extend_all_ordered(db, p.atoms(t), &no.order, inherited, token),
        None => try_extend_all(db, p.atoms(t), inherited, token),
    }
}

/// Per-query, per-tree-node tallies collected while evaluating. One slot
/// per WDPT node (preorder id); atomics so the parallel workers can share
/// one tally. Unlike the process-wide metrics registry, a `NodeTally` is
/// local to a single evaluation, so its counts are exact and deterministic
/// even when other queries run concurrently — which is what lets the
/// observability-parity test assert sequential == parallel exactly.
#[derive(Debug)]
pub(crate) struct NodeTally {
    /// Local homomorphisms found at node `t`, summed over all ancestor
    /// contexts the node was evaluated under.
    homs: Vec<AtomicU64>,
}

impl NodeTally {
    pub(crate) fn new(nodes: usize) -> Self {
        NodeTally {
            homs: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn add_homs(&self, t: usize, n: u64) {
        self.homs[t].fetch_add(n, Relaxed);
    }

    /// Final per-node counts, indexed by preorder node id.
    pub(crate) fn hom_counts(&self) -> Vec<u64> {
        self.homs.iter().map(|a| a.load(Relaxed)).collect()
    }
}

/// All maximal homomorphisms from `p` to `db` (on their various domains).
/// Exponential in the size of the output; intended for exact small-scale
/// semantics, tests, and the intractable baselines of the benchmarks.
pub fn maximal_homomorphisms(p: &Wdpt, db: &Database) -> Vec<Mapping> {
    maximal_homomorphisms_tallied(p, db, None)
}

/// [`maximal_homomorphisms`] under a cancel token: `Err(Cancelled)` if the
/// token fires (or its deadline passes) mid-evaluation.
pub fn try_maximal_homomorphisms(
    p: &Wdpt,
    db: &Database,
    token: &CancelToken,
) -> Result<Vec<Mapping>, Cancelled> {
    try_maximal_homomorphisms_tallied(p, db, None, None, token)
}

/// [`maximal_homomorphisms`] with an optional per-node tally (used by the
/// profiled entry points in [`crate::profile`]).
pub(crate) fn maximal_homomorphisms_tallied(
    p: &Wdpt,
    db: &Database,
    tally: Option<&NodeTally>,
) -> Vec<Mapping> {
    try_maximal_homomorphisms_tallied(p, db, tally, None, CancelToken::never())
        .expect("the never token cannot cancel")
}

pub(crate) fn try_maximal_homomorphisms_tallied(
    p: &Wdpt,
    db: &Database,
    tally: Option<&NodeTally>,
    plan: Option<&ExecPlan>,
    token: &CancelToken,
) -> Result<Vec<Mapping>, Cancelled> {
    let _span = span!("wdpt.eval.sequential");
    let homs = extensions(p, db, p.root(), &Mapping::empty(), tally, plan, token)?;
    let out: BTreeSet<Mapping> = homs.into_iter().collect();
    // The recursion can produce duplicates through different local homs
    // projecting equally; BTreeSet dedups canonically.
    Ok(out.into_iter().collect())
}

/// Maximal extensions into the subtree rooted at `t`, given the bindings of
/// the ancestors. Empty result means "`t` is not extendable" (the OPT
/// branch fails and is dropped). The token is polled inside the per-node
/// backtracking search and between cartesian-product assembly rounds.
fn extensions(
    p: &Wdpt,
    db: &Database,
    t: usize,
    inherited: &Mapping,
    tally: Option<&NodeTally>,
    plan: Option<&ExecPlan>,
    token: &CancelToken,
) -> Result<Vec<Mapping>, Cancelled> {
    let local = node_extend(db, p, t, plan, inherited, token)?;
    if let Some(tally) = tally {
        tally.add_homs(t, local.len() as u64);
    }
    let mut out = Vec::new();
    for g in local {
        if token.is_cancelled() {
            return Err(Cancelled);
        }
        let ctx = inherited
            .union(&g)
            .expect("local homomorphism agrees with inherited bindings");
        // Children are independent given ctx (well-designedness).
        let mut parts: Vec<Vec<Mapping>> = Vec::new();
        for &c in p.children(t) {
            let subs = extensions(p, db, c, &ctx, tally, plan, token)?;
            if !subs.is_empty() {
                parts.push(subs);
            }
            // Not extendable: child contributes nothing — and maximality
            // w.r.t. this child holds vacuously.
        }
        // Cartesian product of the children's maximal extensions.
        let mut acc: Vec<Mapping> = vec![ctx.clone()];
        for part in parts {
            if token.is_cancelled() {
                return Err(Cancelled);
            }
            let mut next = Vec::with_capacity(acc.len() * part.len());
            for base in &acc {
                for ext in &part {
                    next.push(
                        base.union(ext)
                            .expect("sibling subtrees only share ancestor variables"),
                    );
                }
            }
            acc = next;
        }
        out.extend(acc);
    }
    Ok(out)
}

/// The evaluation `p(D)`: projections of the maximal homomorphisms onto the
/// free variables, deduplicated (Definition 2).
pub fn evaluate(p: &Wdpt, db: &Database) -> Vec<Mapping> {
    let free = p.free_set();
    let set: BTreeSet<Mapping> = maximal_homomorphisms(p, db)
        .into_iter()
        .map(|h| h.restrict(&free))
        .collect();
    set.into_iter().collect()
}

/// [`evaluate`] under a cancel token.
pub fn try_evaluate(
    p: &Wdpt,
    db: &Database,
    token: &CancelToken,
) -> Result<Vec<Mapping>, Cancelled> {
    let free = p.free_set();
    let set: BTreeSet<Mapping> = try_maximal_homomorphisms(p, db, token)?
        .into_iter()
        .map(|h| h.restrict(&free))
        .collect();
    Ok(set.into_iter().collect())
}

/// The maximal-mapping semantics `p_m(D)` (Section 3.4): the ⊑-maximal
/// elements of `p(D)`.
pub fn evaluate_max(p: &Wdpt, db: &Database) -> Vec<Mapping> {
    maximal_mappings(evaluate(p, db))
}

/// Fewest (root local homomorphism × OPT child) work items for which
/// spawning threads can pay off; below this the sequential path runs.
const MIN_PARALLEL_JOBS: usize = 2;

/// [`maximal_homomorphisms`], computed with up to `threads` worker threads
/// (`0` means [`std::thread::available_parallelism`]).
///
/// Well-designedness is what makes the split safe: sibling OPT subtrees
/// share variables only through their common ancestors, so once a root
/// local homomorphism fixes the ancestor valuation, every `(local hom,
/// child subtree)` pair is an independent work item. The items are strided
/// over scoped threads (`Database` is `Sync` — the column indexes live in
/// `OnceLock`s), each computing the child's maximal extensions, and the
/// per-context cartesian products are assembled sequentially afterwards.
/// Falls back to the sequential evaluator when there are fewer than
/// [`MIN_PARALLEL_JOBS`] items or a single thread; the result is always
/// identical to [`maximal_homomorphisms`].
pub fn maximal_homomorphisms_parallel(p: &Wdpt, db: &Database, threads: usize) -> Vec<Mapping> {
    maximal_homomorphisms_parallel_tallied(p, db, threads, None)
}

/// [`maximal_homomorphisms_parallel`] under a cancel token. The token is
/// shared by every scoped worker, so one worker hitting the deadline stops
/// the rest within one poll interval.
pub fn try_maximal_homomorphisms_parallel(
    p: &Wdpt,
    db: &Database,
    threads: usize,
    token: &CancelToken,
) -> Result<Vec<Mapping>, Cancelled> {
    try_maximal_homomorphisms_parallel_tallied(p, db, threads, None, None, token)
}

/// [`maximal_homomorphisms_parallel`] with an optional per-node tally. The
/// tally is shared by reference across the scoped workers; its atomics make
/// the counts exact once the scope joins.
pub(crate) fn maximal_homomorphisms_parallel_tallied(
    p: &Wdpt,
    db: &Database,
    threads: usize,
    tally: Option<&NodeTally>,
) -> Vec<Mapping> {
    try_maximal_homomorphisms_parallel_tallied(p, db, threads, tally, None, CancelToken::never())
        .expect("the never token cannot cancel")
}

pub(crate) fn try_maximal_homomorphisms_parallel_tallied(
    p: &Wdpt,
    db: &Database,
    threads: usize,
    tally: Option<&NodeTally>,
    plan: Option<&ExecPlan>,
    token: &CancelToken,
) -> Result<Vec<Mapping>, Cancelled> {
    let _span = span!("wdpt.eval.parallel");
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    let root = p.root();
    let locals = node_extend(db, p, root, plan, &Mapping::empty(), token)?;
    let children = p.children(root);
    let jobs: Vec<(usize, usize)> = (0..locals.len())
        .flat_map(|ci| children.iter().map(move |&c| (ci, c)))
        .collect();
    if threads <= 1 || jobs.len() < MIN_PARALLEL_JOBS {
        // The root locals just computed would be double-counted by the
        // sequential fallback, which recomputes them.
        return try_maximal_homomorphisms_tallied(p, db, tally, plan, token);
    }
    if let Some(tally) = tally {
        tally.add_homs(root, locals.len() as u64);
    }
    // Child extensions for every (context, child) pair, computed in
    // parallel. The workers only read `p`, `db`, `locals`, and `jobs`.
    // A cancelled worker leaves a hole; the scope still joins everything
    // before the error propagates.
    let mut results: Vec<Vec<Mapping>> = vec![Vec::new(); jobs.len()];
    let workers = threads.min(jobs.len());
    let mut cancelled = false;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (jobs, locals) = (&jobs, &locals);
                s.spawn(move || {
                    let _span = span!("wdpt.parallel.worker");
                    let mut out = Vec::new();
                    let mut idx = w;
                    while idx < jobs.len() {
                        let (ci, child) = jobs[idx];
                        wdpt_model::stats::record_parallel_task();
                        out.push((
                            idx,
                            extensions(p, db, child, &locals[ci], tally, plan, token),
                        ));
                        idx += workers;
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for (idx, exts) in handle.join().expect("worker thread panicked") {
                match exts {
                    Ok(exts) => results[idx] = exts,
                    Err(Cancelled) => cancelled = true,
                }
            }
        }
    });
    if cancelled {
        return Err(Cancelled);
    }
    // Sequential assembly, mirroring `extensions` at the root: for each
    // local homomorphism, the cartesian product over its extendable
    // children, then canonical dedup.
    let _assemble_span = span!("wdpt.eval.assemble");
    let mut out: BTreeSet<Mapping> = BTreeSet::new();
    for (ci, ctx) in locals.iter().enumerate() {
        if token.is_cancelled() {
            return Err(Cancelled);
        }
        let mut acc: Vec<Mapping> = vec![ctx.clone()];
        for (j, _) in children.iter().enumerate() {
            let part = &results[ci * children.len() + j];
            if part.is_empty() {
                continue; // not extendable: maximality holds vacuously
            }
            let mut next = Vec::with_capacity(acc.len() * part.len());
            for base in &acc {
                for ext in part {
                    next.push(
                        base.union(ext)
                            .expect("sibling subtrees only share ancestor variables"),
                    );
                }
            }
            acc = next;
        }
        out.extend(acc);
    }
    Ok(out.into_iter().collect())
}

/// [`evaluate`] via the thread-parallel evaluator; agrees with the
/// sequential result exactly (same answers, same canonical order).
pub fn evaluate_parallel(p: &Wdpt, db: &Database, threads: usize) -> Vec<Mapping> {
    let free = p.free_set();
    let set: BTreeSet<Mapping> = maximal_homomorphisms_parallel(p, db, threads)
        .into_iter()
        .map(|h| h.restrict(&free))
        .collect();
    set.into_iter().collect()
}

/// [`evaluate_parallel`] under a cancel token — the entry point the query
/// service uses to enforce per-request deadlines.
pub fn try_evaluate_parallel(
    p: &Wdpt,
    db: &Database,
    threads: usize,
    token: &CancelToken,
) -> Result<Vec<Mapping>, Cancelled> {
    let free = p.free_set();
    let set: BTreeSet<Mapping> = try_maximal_homomorphisms_parallel(p, db, threads, token)?
        .into_iter()
        .map(|h| h.restrict(&free))
        .collect();
    Ok(set.into_iter().collect())
}

/// [`try_evaluate_parallel`] executing an optional cost-based
/// [`ExecPlan`]; see
/// [`try_evaluate_parallel_captured_planned`](crate::profile::try_evaluate_parallel_captured_planned)
/// for the plan contract. Answers are identical with or without a plan.
pub fn try_evaluate_parallel_planned(
    p: &Wdpt,
    db: &Database,
    threads: usize,
    token: &CancelToken,
    plan: Option<&ExecPlan>,
) -> Result<Vec<Mapping>, Cancelled> {
    let free = p.free_set();
    let set: BTreeSet<Mapping> =
        try_maximal_homomorphisms_parallel_tallied(p, db, threads, None, plan, token)?
            .into_iter()
            .map(|h| h.restrict(&free))
            .collect();
    Ok(set.into_iter().collect())
}

/// [`evaluate_max`] via the thread-parallel evaluator.
pub fn evaluate_max_parallel(p: &Wdpt, db: &Database, threads: usize) -> Vec<Mapping> {
    maximal_mappings(evaluate_parallel(p, db, threads))
}

/// All homomorphisms from `p` to `db` (not only maximal ones): full
/// homomorphisms of `q_{T'}` over every rooted subtree `T'`. Exponential;
/// used by tests and as the reference implementation for the decision
/// procedures.
pub fn all_homomorphisms(p: &Wdpt, db: &Database) -> Vec<Mapping> {
    let mut out: BTreeSet<Mapping> = BTreeSet::new();
    p.for_each_rooted_subtree(&mut |subtree| {
        let q = p.cq_of_subtree(subtree);
        for h in extend_all(db, q.body(), &Mapping::empty()) {
            out.insert(h);
        }
    });
    out.into_iter().collect()
}

/// Reference check that a mapping is a homomorphism from `p` to `db`
/// witnessed by some rooted subtree whose variables are exactly `dom(h)`.
pub fn is_homomorphism(p: &Wdpt, db: &Database, h: &Mapping) -> bool {
    let dom = h.domain();
    let mut found = false;
    p.for_each_rooted_subtree(&mut |subtree| {
        if found {
            return;
        }
        if p.subtree_vars(subtree) != dom {
            return;
        }
        let q = p.cq_of_subtree(subtree);
        if q.body().iter().all(|a| db.contains_atom(&a.apply(h))) {
            found = true;
        }
    });
    found
}

/// Reference maximality check: `h` is a homomorphism and no proper
/// extension is one. Exponential; testing only.
pub fn is_maximal_homomorphism(p: &Wdpt, db: &Database, h: &Mapping) -> bool {
    if !is_homomorphism(p, db, h) {
        return false;
    }
    all_homomorphisms(p, db)
        .iter()
        .all(|other| !h.strictly_subsumed_by(other))
}

/// Convenience used by tests: is the tree satisfiable at all (i.e. is
/// `p(D)` non-empty)? Equivalent to the root label having a homomorphism.
pub fn satisfiable(p: &Wdpt, db: &Database) -> bool {
    extend_exists(db, p.atoms(p.root()), &Mapping::empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::WdptBuilder;
    use wdpt_model::parse::{parse_atoms, parse_database, parse_mapping};
    use wdpt_model::Interner;

    /// Figure 1 WDPT over the Example 2 database.
    fn example2(i: &mut Interner) -> (Wdpt, Database) {
        let root = parse_atoms(i, r#"rec_by(?x,?y) publ(?x,"after_2010")"#).unwrap();
        let left = parse_atoms(i, "nme_rating(?x,?z)").unwrap();
        let right = parse_atoms(i, "formed_in(?y,?z2)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, left);
        b.child(0, right);
        let free = ["x", "y", "z", "z2"].iter().map(|n| i.var(n)).collect();
        let p = b.build(free).unwrap();
        let db = parse_database(
            i,
            r#"rec_by("Our_love","Caribou") publ("Our_love","after_2010")
               rec_by("Swim","Caribou") publ("Swim","after_2010")
               nme_rating("Swim","2")"#,
        )
        .unwrap();
        (p, db)
    }

    #[test]
    fn example2_answers() {
        // Example 2 of the paper: μ1 = {x ↦ Our_love, y ↦ Caribou} and
        // μ2 = {x ↦ Swim, y ↦ Caribou, z ↦ 2}.
        let mut i = Interner::new();
        let (p, db) = example2(&mut i);
        let mut answers = evaluate(&p, &db);
        answers.sort();
        let mu1 = parse_mapping(&mut i, r#"?x -> "Our_love", ?y -> "Caribou""#).unwrap();
        let mu2 = parse_mapping(&mut i, r#"?x -> "Swim", ?y -> "Caribou", ?z -> "2""#).unwrap();
        let mut expected = vec![mu1, mu2];
        expected.sort();
        assert_eq!(answers, expected);
    }

    #[test]
    fn example3_projection() {
        // Example 3: projecting out x yields μ'1 = {y ↦ Caribou} and
        // μ'2 = {y ↦ Caribou, z ↦ 2}.
        let mut i = Interner::new();
        let (p0, db) = example2(&mut i);
        let free = ["y", "z", "z2"]
            .iter()
            .map(|n| i.var(n))
            .collect::<Vec<_>>();
        let p = rebuild_with_free(&p0, free);
        let mut answers = evaluate(&p, &db);
        answers.sort();
        let m1 = parse_mapping(&mut i, r#"?y -> "Caribou""#).unwrap();
        let m2 = parse_mapping(&mut i, r#"?y -> "Caribou", ?z -> "2""#).unwrap();
        let mut expected = vec![m1, m2];
        expected.sort();
        assert_eq!(answers, expected);
    }

    #[test]
    fn example7_max_semantics() {
        // Example 7: with x̄ = {y, z}, p(D) = {μ1, μ2} but p_m(D) = {μ2}.
        let mut i = Interner::new();
        let (p0, db) = example2(&mut i);
        let free = ["y", "z"].iter().map(|n| i.var(n)).collect::<Vec<_>>();
        let p = rebuild_with_free(&p0, free);
        let answers = evaluate(&p, &db);
        assert_eq!(answers.len(), 2);
        let max = evaluate_max(&p, &db);
        assert_eq!(max.len(), 1);
        let m2 = parse_mapping(&mut i, r#"?y -> "Caribou", ?z -> "2""#).unwrap();
        assert_eq!(max[0], m2);
    }

    /// Rebuilds a WDPT with a different free-variable tuple.
    fn rebuild_with_free(p: &Wdpt, free: Vec<wdpt_model::Var>) -> Wdpt {
        let mut b = WdptBuilder::new(p.atoms(0).to_vec());
        let mut map = vec![0usize; p.node_count()];
        for t in 1..p.node_count() {
            let parent = map[p.parent(t).unwrap()];
            map[t] = b.child(parent, p.atoms(t).to_vec());
        }
        b.build(free).unwrap()
    }

    #[test]
    fn optional_branch_failure_does_not_kill_answer() {
        let mut i = Interner::new();
        let root = parse_atoms(&mut i, "a(?x)").unwrap();
        let child = parse_atoms(&mut i, "b(?x,?y)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, child);
        let p = b.build(vec![i.var("x"), i.var("y")]).unwrap();
        let db = parse_database(&mut i, "a(1)").unwrap();
        let ans = evaluate(&p, &db);
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].len(), 1); // only x bound
    }

    #[test]
    fn mandatory_root_failure_yields_empty() {
        let mut i = Interner::new();
        let root = parse_atoms(&mut i, "a(?x)").unwrap();
        let p = WdptBuilder::new(root).build(vec![i.var("x")]).unwrap();
        let db = parse_database(&mut i, "b(1)").unwrap();
        assert!(evaluate(&p, &db).is_empty());
        assert!(!satisfiable(&p, &db));
    }

    #[test]
    fn extension_is_forced_when_available() {
        let mut i = Interner::new();
        let root = parse_atoms(&mut i, "a(?x)").unwrap();
        let child = parse_atoms(&mut i, "b(?x,?y)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, child);
        let p = b.build(vec![i.var("x"), i.var("y")]).unwrap();
        let db = parse_database(&mut i, "a(1) b(1,2)").unwrap();
        let ans = evaluate(&p, &db);
        // {x↦1} alone is NOT maximal because it extends to {x↦1, y↦2}.
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].len(), 2);
    }

    #[test]
    fn nested_optional_chain() {
        let mut i = Interner::new();
        let mut b = WdptBuilder::new(parse_atoms(&mut i, "a(?x)").unwrap());
        let c1 = b.child(0, parse_atoms(&mut i, "b(?x,?y)").unwrap());
        b.child(c1, parse_atoms(&mut i, "c(?y,?z)").unwrap());
        let free = ["x", "y", "z"].iter().map(|n| i.var(n)).collect();
        let p = b.build(free).unwrap();
        let db = parse_database(&mut i, "a(1) a(2) b(2,5) b(2,6) c(6,9)").unwrap();
        let mut ans = evaluate(&p, &db);
        ans.sort();
        // x=1: no b — answer {x↦1}. x=2,y=5: no c — {x↦2,y↦5}.
        // x=2,y=6: c(6,9) — {x↦2,y↦6,z↦9}.
        assert_eq!(ans.len(), 3);
        assert_eq!(
            ans.iter().map(Mapping::len).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn maximal_homs_agree_with_reference() {
        let mut i = Interner::new();
        let (p, db) = example2(&mut i);
        for h in maximal_homomorphisms(&p, &db) {
            assert!(is_maximal_homomorphism(&p, &db, &h));
        }
        // And every reference-maximal hom is produced.
        for h in all_homomorphisms(&p, &db) {
            if is_maximal_homomorphism(&p, &db, &h) {
                assert!(maximal_homomorphisms(&p, &db).contains(&h));
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_paper_examples() {
        let mut i = Interner::new();
        let (p, db) = example2(&mut i);
        for threads in [0, 1, 2, 4, 16] {
            assert_eq!(evaluate_parallel(&p, &db, threads), evaluate(&p, &db));
            assert_eq!(
                maximal_homomorphisms_parallel(&p, &db, threads),
                maximal_homomorphisms(&p, &db)
            );
            assert_eq!(
                evaluate_max_parallel(&p, &db, threads),
                evaluate_max(&p, &db)
            );
        }
    }

    #[test]
    fn parallel_falls_back_on_single_node_trees() {
        let mut i = Interner::new();
        let root = parse_atoms(&mut i, "a(?x)").unwrap();
        let p = WdptBuilder::new(root).build(vec![i.var("x")]).unwrap();
        let db = parse_database(&mut i, "a(1) a(2)").unwrap();
        let before = wdpt_model::stats::snapshot();
        let ans = evaluate_parallel(&p, &db, 8);
        let delta = wdpt_model::stats::snapshot().since(&before);
        assert_eq!(ans, evaluate(&p, &db));
        // No children means no work items, so nothing is fanned out.
        assert_eq!(delta.parallel_tasks, 0);
    }

    #[test]
    fn parallel_fans_out_one_task_per_context_child_pair() {
        let mut i = Interner::new();
        // 3 root homomorphisms × 2 children = 6 work items.
        let root = parse_atoms(&mut i, "a(?x)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(&mut i, "b(?x,?y)").unwrap());
        b.child(0, parse_atoms(&mut i, "c(?x,?z)").unwrap());
        let free = ["x", "y", "z"].iter().map(|n| i.var(n)).collect();
        let p = b.build(free).unwrap();
        let db = parse_database(&mut i, "a(1) a(2) a(3) b(1,10) b(2,20) c(2,30) c(3,31)").unwrap();
        let before = wdpt_model::stats::snapshot();
        let ans = evaluate_parallel(&p, &db, 4);
        let delta = wdpt_model::stats::snapshot().since(&before);
        assert_eq!(ans, evaluate(&p, &db));
        assert_eq!(ans.len(), 3);
        assert!(delta.parallel_tasks >= 6);
    }

    #[test]
    fn parallel_agrees_with_sequential_on_random_trees() {
        // Deterministic LCG in place of an external RNG (same pattern as
        // `eval::tests::agrees_with_enumeration_on_random_trees`).
        let mut state = 0x5eed_cafe_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _case in 0..30 {
            let mut i = Interner::new();
            let e = i.pred("e");
            let f = i.pred("f");
            let g = i.pred("g");
            let mut db = Database::new();
            for _ in 0..(4 + next() % 10) {
                let a = i.constant(&format!("c{}", next() % 4));
                let b = i.constant(&format!("c{}", next() % 4));
                db.insert(e, vec![a, b]);
                if next() % 2 == 0 {
                    db.insert(f, vec![b, a]);
                }
                if next() % 3 == 0 {
                    db.insert(g, vec![a, a]);
                }
            }
            let x = i.var("x");
            let y = i.var("y");
            let z = i.var("z");
            let w = i.var("w");
            let mut b = WdptBuilder::new(vec![wdpt_model::Atom::new(e, vec![x.into(), y.into()])]);
            let c1 = b.child(
                0,
                vec![wdpt_model::Atom::new(
                    if next() % 2 == 0 { e } else { f },
                    vec![y.into(), z.into()],
                )],
            );
            b.child(0, vec![wdpt_model::Atom::new(g, vec![x.into(), w.into()])]);
            if next() % 2 == 0 {
                // ?v is existential; reusing ?x here would break
                // well-designedness (x occurs at the root but not at c1).
                let v = i.var("v");
                b.child(c1, vec![wdpt_model::Atom::new(f, vec![z.into(), v.into()])]);
            }
            let p = b.build(vec![x, y, z, w]).unwrap();
            let threads = 1 + next() % 5;
            assert_eq!(
                evaluate_parallel(&p, &db, threads),
                evaluate(&p, &db),
                "threads={threads}"
            );
            assert_eq!(
                evaluate_max_parallel(&p, &db, threads),
                evaluate_max(&p, &db),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn cancelled_evaluation_returns_typed_error() {
        let mut i = Interner::new();
        let (p, db) = example2(&mut i);
        let token = wdpt_model::CancelToken::new();
        token.cancel();
        assert_eq!(try_evaluate(&p, &db, &token), Err(wdpt_model::Cancelled));
        for threads in [1, 4] {
            assert_eq!(
                try_evaluate_parallel(&p, &db, threads, &token),
                Err(wdpt_model::Cancelled)
            );
        }
        // A live token changes nothing about the answers.
        let live = wdpt_model::CancelToken::new();
        assert_eq!(try_evaluate(&p, &db, &live).unwrap(), evaluate(&p, &db));
        assert_eq!(
            try_evaluate_parallel(&p, &db, 4, &live).unwrap(),
            evaluate_parallel(&p, &db, 4)
        );
    }

    #[test]
    fn shared_existential_variable_constrains_branches() {
        let mut i = Interner::new();
        // Root binds ?u existentially; both children use ?u.
        let root = parse_atoms(&mut i, "a(?x,?u)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(&mut i, "b(?u,?y)").unwrap());
        b.child(0, parse_atoms(&mut i, "c(?u,?z)").unwrap());
        let free = ["x", "y", "z"].iter().map(|n| i.var(n)).collect();
        let p = b.build(free).unwrap();
        let db = parse_database(&mut i, "a(1,7) a(1,8) b(7,10) c(8,20)").unwrap();
        let mut ans = evaluate(&p, &db);
        ans.sort();
        // u=7: b extends (y=10), c fails → {x↦1, y↦10}.
        // u=8: b fails, c extends (z=20) → {x↦1, z↦20}.
        assert_eq!(ans.len(), 2);
    }
}
