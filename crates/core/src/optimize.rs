//! Answer-preserving WDPT normalization (the size-reduction steps of
//! Lemma 1, Section 5 of the paper).
//!
//! Lemma 1's proof bounds the node count of subsumption witnesses by two
//! transformations that never change `p(D)`:
//!
//! 1. **Branch pruning.** A node none of whose descendants (itself
//!    included) introduces a free variable only constrains existential
//!    bindings; including or excluding its subtree never changes the
//!    projection of a maximal homomorphism. Delete every node that is not
//!    on a path from the root to a free-variable-introducing node.
//! 2. **Chain merging.** A node introducing no free variable whose only
//!    child carries the rest of the branch can be merged with that child.
//!
//! Branch pruning preserves `p(D)` exactly. Chain merging preserves only
//! **subsumption-equivalence** (`normalize(p) ≡ₛ p`, hence equal partial
//! answers and equal `p_m(D)`): an answer that stopped *between* the two
//! merged nodes can lose its non-maximal projection — precisely why
//! Section 5 of the paper works modulo `≡ₛ` rather than `≡`. See the
//! `merging_may_shrink_p_of_d` test for the counterexample.
//!
//! The result has at most `2·|x̄| + 1` nodes — the linear bound the lemma
//! needs — and is useful on its own as a query optimizer: fewer nodes mean
//! fewer subtrees for subsumption tests and fewer OPT levels at evaluation
//! time.

use crate::tree::{NodeId, Wdpt, WdptBuilder};
use wdpt_model::Var;

/// Applies both Lemma 1 normalization steps. The result is
/// subsumption-equivalent to `p` (`normalize(p) ≡ₛ p`): partial answers
/// and the maximal-mapping semantics `p_m(D)` are preserved over every
/// database, though non-maximal members of `p(D)` may be dropped by the
/// chain-merging step (see module docs).
pub fn normalize(p: &Wdpt) -> Wdpt {
    merge_chains(&prune_branches(p))
}

/// Step 1: keeps only nodes on a root-path to a node introducing a free
/// variable (the root is always kept).
pub fn prune_branches(p: &Wdpt) -> Wdpt {
    let free = p.free_set();
    // introduces[t] ⇔ some free variable has its top occurrence at t.
    let introduces: Vec<bool> = (0..p.node_count())
        .map(|t| {
            p.node_vars(t)
                .iter()
                .any(|v| free.contains(v) && p.top_node_of(*v) == Some(t))
        })
        .collect();
    // keep[t] ⇔ t or some descendant introduces a free variable.
    let mut keep = vec![false; p.node_count()];
    fn mark(p: &Wdpt, t: NodeId, introduces: &[bool], keep: &mut [bool]) -> bool {
        let mut any = introduces[t];
        for &c in p.children(t) {
            any |= mark(p, c, introduces, keep);
        }
        keep[t] = any;
        any
    }
    mark(p, p.root(), &introduces, &mut keep);
    keep[p.root()] = true;
    rebuild(p, &keep)
}

/// Step 2: merges every node that introduces no free variable (all its
/// free variables already occur in ancestors) with its only child,
/// repeatedly.
pub fn merge_chains(p: &Wdpt) -> Wdpt {
    let free = p.free_set();
    let mut current = p.clone();
    loop {
        let merge_at = (0..current.node_count()).find(|&t| {
            current.children(t).len() == 1
                && t != current.root()
                && current
                    .node_vars(t)
                    .iter()
                    .all(|v: &Var| !free.contains(v) || current.top_node_of(*v) != Some(t))
        });
        let Some(t) = merge_at else {
            return current;
        };
        let child = current.children(t)[0];
        // Rebuild with t's atoms folded into the child and t removed.
        let mut b: Option<WdptBuilder> = None;
        let mut new_id = vec![usize::MAX; current.node_count()];
        // Process nodes root-first (ids are parent-before-child).
        for n in 0..current.node_count() {
            if n == t {
                continue;
            }
            let mut atoms = current.atoms(n).to_vec();
            if n == child {
                atoms.extend(current.atoms(t).iter().cloned());
            }
            match current.parent(n) {
                None => b = Some(WdptBuilder::new(atoms)),
                Some(par) => {
                    // t's child is re-attached to t's parent.
                    let par = if par == t {
                        current.parent(t).expect("t is not the root")
                    } else {
                        par
                    };
                    let builder = b.as_mut().expect("root processed first");
                    new_id[n] = builder.child(new_id[par], atoms);
                }
            }
            if current.parent(n).is_none() {
                new_id[n] = 0;
            }
        }
        current = b
            .expect("tree has a root")
            .build(current.free_vars().to_vec())
            .expect("merging preserves well-designedness");
    }
}

/// Rebuilds `p` restricted to the kept nodes (which must be parent-closed).
fn rebuild(p: &Wdpt, keep: &[bool]) -> Wdpt {
    let mut b: Option<WdptBuilder> = None;
    let mut new_id = vec![usize::MAX; p.node_count()];
    for t in 0..p.node_count() {
        if !keep[t] {
            continue;
        }
        let atoms = p.atoms(t).to_vec();
        match p.parent(t) {
            None => {
                b = Some(WdptBuilder::new(atoms));
                new_id[t] = 0;
            }
            Some(par) => {
                debug_assert!(keep[par], "kept set must be parent-closed");
                let builder = b.as_mut().expect("root processed first");
                new_id[t] = builder.child(new_id[par], atoms);
            }
        }
    }
    // Free variables of p that still occur (pruning only removes nodes
    // without free variables, so the free tuple is unchanged).
    b.expect("root is always kept")
        .build(p.free_vars().to_vec())
        .expect("pruning preserves well-designedness")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::evaluate;
    use crate::tree::WdptBuilder;
    use wdpt_model::parse::{parse_atoms, parse_database};
    use wdpt_model::Interner;

    #[test]
    fn prunes_free_var_less_branch() {
        let mut i = Interner::new();
        let mut b = WdptBuilder::new(parse_atoms(&mut i, "a(?x)").unwrap());
        b.child(0, parse_atoms(&mut i, "b(?x,?u)").unwrap()); // no free vars
        b.child(0, parse_atoms(&mut i, "c(?x,?y)").unwrap()); // introduces y
        let p = b.build(vec![i.var("x"), i.var("y")]).unwrap();
        let n = normalize(&p);
        assert_eq!(n.node_count(), 2);
    }

    #[test]
    fn merges_free_var_less_chain() {
        let mut i = Interner::new();
        let mut b = WdptBuilder::new(parse_atoms(&mut i, "a(?x)").unwrap());
        let c1 = b.child(0, parse_atoms(&mut i, "b(?x,?u)").unwrap()); // no free vars
        b.child(c1, parse_atoms(&mut i, "c(?u,?y)").unwrap()); // introduces y
        let p = b.build(vec![i.var("x"), i.var("y")]).unwrap();
        let n = normalize(&p);
        assert_eq!(n.node_count(), 2);
        assert_eq!(n.atoms(1).len(), 2); // b and c merged
    }

    #[test]
    fn normalization_preserves_answers() {
        let mut state = 0x0fed_cba9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for case in 0..30 {
            let mut i = Interner::new();
            let e = i.pred("e");
            let f = i.pred("f");
            let mut db = wdpt_model::Database::new();
            for _ in 0..(4 + next() % 8) {
                let a = i.constant(&format!("c{}", next() % 3));
                let b2 = i.constant(&format!("c{}", next() % 3));
                db.insert(e, vec![a, b2]);
                if next() % 2 == 0 {
                    db.insert(f, vec![b2, a]);
                }
            }
            // Tree with a mix of free and purely-existential branches.
            let x = i.var("x");
            let u = i.var("u");
            let v = i.var("v");
            let y = i.var("y");
            let mut b = WdptBuilder::new(vec![wdpt_model::Atom::new(e, vec![x.into(), u.into()])]);
            let c1 = b.child(
                0,
                vec![wdpt_model::Atom::new(
                    if next() % 2 == 0 { e } else { f },
                    vec![u.into(), v.into()],
                )],
            );
            b.child(
                c1,
                vec![wdpt_model::Atom::new(
                    if next() % 2 == 0 { e } else { f },
                    vec![v.into(), y.into()],
                )],
            );
            b.child(0, vec![wdpt_model::Atom::new(f, vec![u.into(), v.into()])]);
            let p = match b.build(vec![x, y]) {
                Ok(p) => p,
                Err(_) => continue, // v occurrences may disconnect
            };
            let n = normalize(&p);
            // ≡ₛ invariants: equal maximal-mapping semantics, and every
            // answer of either tree extended by an answer of the other.
            let mut m1 = crate::semantics::evaluate_max(&p, &db);
            let mut m2 = crate::semantics::evaluate_max(&n, &db);
            m1.sort();
            m2.sort();
            assert_eq!(m1, m2, "case {case}: normalization changed p_m(D)");
            let a1 = evaluate(&p, &db);
            let a2 = evaluate(&n, &db);
            for h in &a1 {
                assert!(
                    a2.iter().any(|h2| h.subsumed_by(h2)),
                    "case {case}: answer of p not covered"
                );
            }
            for h in &a2 {
                assert!(
                    a1.iter().any(|h2| h.subsumed_by(h2)),
                    "case {case}: answer of normalize(p) not covered"
                );
            }
            assert!(n.node_count() <= p.node_count());
        }
    }

    #[test]
    fn node_count_is_linear_in_free_vars() {
        // A deep chain introducing one free variable at the bottom
        // collapses to at most 2 nodes... the root plus one merged node.
        let mut i = Interner::new();
        let mut b = WdptBuilder::new(parse_atoms(&mut i, "a(?x)").unwrap());
        let mut prev = 0;
        for j in 0..6 {
            prev = b.child(
                prev,
                parse_atoms(
                    &mut i,
                    &format!(
                        "e(?{}, ?u{})",
                        if j == 0 {
                            "x".into()
                        } else {
                            format!("u{}", j - 1)
                        },
                        j
                    ),
                )
                .unwrap(),
            );
        }
        b.child(prev, parse_atoms(&mut i, "e(?u5, ?y)").unwrap());
        let p = b.build(vec![i.var("x"), i.var("y")]).unwrap();
        let n = normalize(&p);
        assert_eq!(n.node_count(), 2);
        let free: std::collections::BTreeSet<Var> = n.free_set();
        assert_eq!(free.len(), 2);
    }

    #[test]
    fn already_normal_trees_are_unchanged() {
        let mut i = Interner::new();
        let mut b = WdptBuilder::new(parse_atoms(&mut i, "a(?x)").unwrap());
        b.child(0, parse_atoms(&mut i, "b(?x,?y)").unwrap());
        let p = b.build(vec![i.var("x"), i.var("y")]).unwrap();
        let n = normalize(&p);
        assert_eq!(n, p);
    }

    #[test]
    fn merging_may_shrink_p_of_d() {
        // The counterexample showing chain merging is only ≡ₛ-preserving:
        // root a(?x); t = b(?x,?u) (no new free vars); child c(?u,?y).
        // With b(1,5), b(1,6), c(6,9): the original has the non-maximal
        // answer {x↦1} via u = 5 (child blocked); the merged tree forces
        // u = 6 and loses it.
        let mut i = Interner::new();
        let mut b = WdptBuilder::new(parse_atoms(&mut i, "a(?x)").unwrap());
        let c1 = b.child(0, parse_atoms(&mut i, "b(?x,?u)").unwrap());
        b.child(c1, parse_atoms(&mut i, "c(?u,?y)").unwrap());
        let p = b.build(vec![i.var("x"), i.var("y")]).unwrap();
        let n = normalize(&p);
        let db = parse_database(&mut i, "a(1) b(1,5) b(1,6) c(6,9)").unwrap();
        let a_orig = evaluate(&p, &db);
        let a_norm = evaluate(&n, &db);
        assert_eq!(a_orig.len(), 2); // {x↦1} and {x↦1, y↦9}
        assert_eq!(a_norm.len(), 1); // only {x↦1, y↦9}
                                     // …but the ≡ₛ-level semantics agree.
        assert_eq!(
            crate::semantics::evaluate_max(&p, &db),
            crate::semantics::evaluate_max(&n, &db)
        );
        assert!(crate::subsumption::subsumption_equivalent(
            &p,
            &n,
            crate::Engine::Backtrack,
            crate::Engine::Backtrack,
            &mut i
        ));
    }

    #[test]
    fn database_check() {
        // Concrete end-to-end: pruned optional branch must not change the
        // forced-extension behavior of the kept branch.
        let mut i = Interner::new();
        let mut b = WdptBuilder::new(parse_atoms(&mut i, "a(?x)").unwrap());
        b.child(0, parse_atoms(&mut i, "blocked(?x,?u)").unwrap());
        b.child(0, parse_atoms(&mut i, "c(?x,?y)").unwrap());
        let p = b.build(vec![i.var("x"), i.var("y")]).unwrap();
        let n = normalize(&p);
        let db = parse_database(&mut i, "a(1) c(1,7) blocked(1,9)").unwrap();
        let mut a1 = evaluate(&p, &db);
        let mut a2 = evaluate(&n, &db);
        a1.sort();
        a2.sort();
        assert_eq!(a1, a2);
    }
}
