//! Tractable exact evaluation under local tractability + bounded interface
//! (Theorem 6 / Theorem 7 of the paper).
//!
//! Implements the algorithm sketched in Appendix A.1: given `p ∈ ℓ-C ∩
//! BI(c)`, a database `D`, and a candidate answer `h`,
//!
//! 1. let `T'` be the minimal rooted subtree covering `dom(h)` and `T''`
//!    the maximal rooted subtree introducing no free variable outside
//!    `dom(h)`;
//! 2. for every node `t ∈ T''`, compute the *interface relation* `R_t`: all
//!    assignments of `t`'s interface variables (existential variables shared
//!    with the parent or with a child) extendable to a homomorphism of
//!    `λ(t)` consistent with `h` — by local CQ evaluation, polynomial under
//!    local tractability, with at most `|adom|^{2c}` assignments under
//!    `BI(c)`;
//! 3. filter `R_t` bottom-up: an interface assignment survives iff every
//!    child outside `T''` is non-extendable (otherwise maximality would
//!    force a new free variable) and every extendable child inside `T''`
//!    admits a compatible surviving assignment;
//! 4. answer the tree-shaped (acyclic) Boolean join of the surviving
//!    relations over `T'` — the paper's CQ `q` over database `D'`.
//!
//! All CQ work happens on single node labels, so the procedure is
//! polynomial for fixed `k` and `c` (and in LogCFL with the structured
//! engines, Theorem 7).

use crate::engine::Engine;
use crate::tree::{NodeId, Wdpt};
use std::collections::{BTreeMap, BTreeSet};
use wdpt_model::{Database, Mapping, Var};

/// Decides `h ∈ p(D)` with the Theorem 6 algorithm. Correct for every
/// WDPT; polynomial when `p` is locally tractable w.r.t. `engine`'s class
/// and has bounded interface.
pub fn eval_bounded_interface(p: &Wdpt, db: &Database, h: &Mapping, engine: Engine) -> bool {
    let _span = wdpt_obs::span!("wdpt.eval.bounded_interface");
    let free = p.free_set();
    let dom = h.domain();
    if !dom.is_subset(&free) {
        return false;
    }
    let Some(tprime) = p.minimal_subtree_covering(&dom) else {
        return false;
    };
    // Any homomorphism covering dom(h) also defines the free variables of
    // T'; projection-exactness forces them to be exactly dom(h).
    if p.subtree_free_vars(&tprime) != dom {
        return false;
    }
    let tsecond = p.maximal_subtree_with_free_vars_in(&dom);
    debug_assert!(tprime.is_subset(&tsecond));

    // Interface variables per node of T''.
    let iface: BTreeMap<NodeId, BTreeSet<Var>> = tsecond
        .iter()
        .map(|&t| (t, interface_vars(p, t, &free)))
        .collect();

    // Interface relations R_t (step 2).
    let mut relations: BTreeMap<NodeId, Vec<Mapping>> = BTreeMap::new();
    for &t in &tsecond {
        let r = engine.project(&p.node_cq(t), db, &iface[&t], h);
        relations.insert(t, r);
    }

    // Bottom-up filtering (step 3), fused with the acyclic join over T'
    // (step 4): process deepest nodes first.
    let mut order: Vec<NodeId> = tsecond.iter().copied().collect();
    order.sort_by_key(|&t| std::cmp::Reverse(p.depth(t)));
    let mut surviving: BTreeMap<NodeId, Vec<Mapping>> = BTreeMap::new();
    for &t in &order {
        let vars_t = p.node_vars(t);
        let h_t = h.restrict(&vars_t);
        let mut kept = Vec::new();
        'tuples: for g in &relations[&t] {
            let anchored = h_t
                .union(g)
                .expect("interface variables are existential, disjoint from h");
            for &c in p.children(t) {
                if tprime.contains(&c) {
                    // Handled by the acyclic join below.
                    continue;
                }
                // Raw extendability: an extension with arbitrary values
                // forces inclusion of c by maximality.
                let raw = engine.hom_exists(&p.node_cq(c), db, &anchored);
                if !raw {
                    continue;
                }
                if !tsecond.contains(&c) {
                    // Forced into a node introducing a new free variable:
                    // the projection could not be exactly h.
                    continue 'tuples;
                }
                // Must enter c consistently with a surviving assignment.
                let ok = surviving[&c].iter().any(|gc| gc.compatible(&anchored));
                if !ok {
                    continue 'tuples;
                }
            }
            if tprime.contains(&t) {
                // The acyclic join: all T'-children must offer a compatible
                // surviving tuple.
                for &c in p.children(t) {
                    if !tprime.contains(&c) {
                        continue;
                    }
                    let ok = surviving[&c].iter().any(|gc| gc.compatible(&anchored));
                    if !ok {
                        continue 'tuples;
                    }
                }
            }
            kept.push(g.clone());
        }
        surviving.insert(t, kept);
    }
    !surviving[&p.root()].is_empty()
}

/// The interface variables of node `t`: existential variables shared with
/// the parent or with any child (in the full tree). Under `BI(c)` there are
/// at most `2c` of them.
fn interface_vars(p: &Wdpt, t: NodeId, free: &BTreeSet<Var>) -> BTreeSet<Var> {
    let vars_t = p.node_vars(t);
    let mut shared = BTreeSet::new();
    if let Some(parent) = p.parent(t) {
        let pv = p.node_vars(parent);
        shared.extend(vars_t.intersection(&pv).copied());
    }
    for &c in p.children(t) {
        let cv = p.node_vars(c);
        shared.extend(vars_t.intersection(&cv).copied());
    }
    shared.into_iter().filter(|v| !free.contains(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_decide;
    use crate::semantics::evaluate;
    use crate::tree::WdptBuilder;
    use wdpt_model::parse::{parse_atoms, parse_database, parse_mapping};
    use wdpt_model::Interner;

    fn figure1(i: &mut Interner) -> (Wdpt, Database) {
        let root = parse_atoms(i, r#"rec_by(?x,?y) publ(?x,"after_2010")"#).unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(i, "nme_rating(?x,?z)").unwrap());
        b.child(0, parse_atoms(i, "formed_in(?y,?z2)").unwrap());
        let free = ["x", "y", "z", "z2"].iter().map(|n| i.var(n)).collect();
        let p = b.build(free).unwrap();
        let db = parse_database(
            i,
            r#"rec_by("Our_love","Caribou") publ("Our_love","after_2010")
               rec_by("Swim","Caribou") publ("Swim","after_2010")
               nme_rating("Swim","2")"#,
        )
        .unwrap();
        (p, db)
    }

    #[test]
    fn matches_general_eval_on_figure1() {
        let mut i = Interner::new();
        let (p, db) = figure1(&mut i);
        let mu1 = parse_mapping(&mut i, r#"?x -> "Our_love", ?y -> "Caribou""#).unwrap();
        let mu2 = parse_mapping(&mut i, r#"?x -> "Swim", ?y -> "Caribou", ?z -> "2""#).unwrap();
        let bad = parse_mapping(&mut i, r#"?x -> "Swim", ?y -> "Caribou""#).unwrap();
        for engine in [Engine::Backtrack, Engine::Tw(1), Engine::Hw(1)] {
            assert!(eval_bounded_interface(&p, &db, &mu1, engine));
            assert!(eval_bounded_interface(&p, &db, &mu2, engine));
            assert!(!eval_bounded_interface(&p, &db, &bad, engine));
        }
    }

    /// Build a random small WDPT with projection and compare against the
    /// general decision procedure on every candidate answer and probes.
    #[test]
    fn agrees_with_general_eval_on_random_instances() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for case in 0..40 {
            let mut i = Interner::new();
            let e = i.pred("e");
            let f = i.pred("f");
            let mut db = wdpt_model::Database::new();
            for _ in 0..(4 + next() % 8) {
                let a = i.constant(&format!("c{}", next() % 4));
                let b = i.constant(&format!("c{}", next() % 4));
                db.insert(e, vec![a, b]);
                if next() % 2 == 0 {
                    db.insert(f, vec![a, b]);
                }
            }
            // Tree: root e(x,u); children use u (existential interface) and
            // introduce free vars y (child 1) and z (grandchild).
            let x = i.var("x");
            let u = i.var("u");
            let y = i.var("y");
            let z = i.var("z");
            let w = i.var("w");
            let root = vec![wdpt_model::Atom::new(e, vec![x.into(), u.into()])];
            let mut b = WdptBuilder::new(root);
            let c1 = b.child(
                0,
                vec![wdpt_model::Atom::new(
                    if next() % 2 == 0 { e } else { f },
                    vec![u.into(), y.into()],
                )],
            );
            b.child(
                c1,
                vec![wdpt_model::Atom::new(
                    if next() % 2 == 0 { e } else { f },
                    vec![y.into(), z.into()],
                )],
            );
            b.child(
                0,
                vec![wdpt_model::Atom::new(
                    if next() % 2 == 0 { e } else { f },
                    vec![u.into(), w.into()],
                )],
            );
            // w stays existential: answers project onto x, y, z.
            let p = b.build(vec![x, y, z]).unwrap();
            let answers = evaluate(&p, &db);
            for h in &answers {
                for engine in [Engine::Backtrack, Engine::Tw(1)] {
                    assert!(
                        eval_bounded_interface(&p, &db, h, engine),
                        "case {case}: true answer {h} rejected"
                    );
                }
            }
            // Random probes.
            for _ in 0..6 {
                let mut probe = Mapping::empty();
                probe.insert(x, i.constant(&format!("c{}", next() % 4)));
                if next() % 2 == 0 {
                    probe.insert(y, i.constant(&format!("c{}", next() % 4)));
                }
                if next() % 3 == 0 {
                    probe.insert(z, i.constant(&format!("c{}", next() % 4)));
                }
                let expected = eval_decide(&p, &db, &probe);
                assert_eq!(
                    eval_bounded_interface(&p, &db, &probe, Engine::Backtrack),
                    expected,
                    "case {case}: probe {probe} disagreed"
                );
                assert_eq!(
                    eval_bounded_interface(&p, &db, &probe, Engine::Tw(1)),
                    expected,
                    "case {case}: probe {probe} disagreed under TW engine"
                );
            }
        }
    }

    #[test]
    fn empty_candidate_mapping() {
        let mut i = Interner::new();
        // Root has no free variables; h = ∅ is the answer iff the root
        // matches but no optional branch extends.
        let root = parse_atoms(&mut i, "a(?u)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(&mut i, "b(?u,?y)").unwrap());
        let p = b.build(vec![i.var("y")]).unwrap();
        let db1 = parse_database(&mut i, "a(1)").unwrap();
        let db2 = parse_database(&mut i, "a(1) b(1,2)").unwrap();
        let empty = Mapping::empty();
        assert!(eval_bounded_interface(&p, &db1, &empty, Engine::Backtrack));
        // In db2 the branch extends, so ∅ is not maximal... but u=1 is the
        // only choice and it extends; hence ∅ ∉ p(D).
        assert!(!eval_bounded_interface(&p, &db2, &empty, Engine::Backtrack));
        assert!(eval_decide(&p, &db1, &empty));
        assert!(!eval_decide(&p, &db2, &empty));
    }

    #[test]
    fn existential_choice_can_block_extension() {
        let mut i = Interner::new();
        // Root a(u): u ∈ {1, 2}. Child b(u, y): only b(1, 5) exists. The
        // answer ∅ IS in p(D) via u = 2 (not extendable); {y↦5} via u = 1.
        let root = parse_atoms(&mut i, "a(?u)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(&mut i, "b(?u,?y)").unwrap());
        let p = b.build(vec![i.var("y")]).unwrap();
        let db = parse_database(&mut i, "a(1) a(2) b(1,5)").unwrap();
        let empty = Mapping::empty();
        let y5 = parse_mapping(&mut i, "?y -> 5").unwrap();
        for engine in [Engine::Backtrack, Engine::Tw(1), Engine::Hw(1)] {
            assert!(eval_bounded_interface(&p, &db, &empty, engine));
            assert!(eval_bounded_interface(&p, &db, &y5, engine));
        }
    }
}
