//! A line-oriented text format for pattern trees.
//!
//! The paper draws WDPTs as labeled trees (Figure 1); this module gives
//! that drawing a parseable syntax so queries over **arbitrary relational
//! schemas** (not just RDF triples) can be stored in files and fed to the
//! CLI:
//!
//! ```text
//! FREE ?x ?y ?z ?z2
//! NODE root { rec_by(?x, ?y), publ(?x, "after_2010") }
//! NODE rating PARENT root { nme_rating(?x, ?z) }
//! NODE formed PARENT root { formed_in(?y, ?z2) }
//! ```
//!
//! * The `FREE` line lists the free variables (omit it for a
//!   projection-free tree).
//! * The first `NODE` is the root; every other node names its parent.
//! * Node labels use the atom syntax of [`wdpt_model::parse`].
//! * Lines starting with `#` are comments.
//!
//! [`parse_wdpt`] and [`to_text`] round-trip.

use crate::tree::{Wdpt, WdptBuilder};
use std::collections::HashMap;
use wdpt_model::parse::{parse_atoms, ParseError};
use wdpt_model::{Interner, Var};

/// Errors of the tree text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeTextError {
    /// Atom-level syntax error inside a node label (with the line number).
    Atoms(usize, ParseError),
    /// Structural error (bad keyword, unknown parent, …).
    Structure(usize, String),
    /// The assembled tree violates Definition 1.
    Invalid(crate::tree::WdptError),
}

impl std::fmt::Display for TreeTextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeTextError::Atoms(line, e) => write!(f, "line {line}: {e}"),
            TreeTextError::Structure(line, m) => write!(f, "line {line}: {m}"),
            TreeTextError::Invalid(e) => write!(f, "invalid pattern tree: {e}"),
        }
    }
}

impl std::error::Error for TreeTextError {}

/// Parses the tree text format into a WDPT.
pub fn parse_wdpt(interner: &mut Interner, src: &str) -> Result<Wdpt, TreeTextError> {
    let mut free: Vec<Var> = Vec::new();
    let mut builder: Option<WdptBuilder> = None;
    let mut ids: HashMap<String, usize> = HashMap::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("FREE") {
            for tok in rest.split_whitespace() {
                let name = tok.strip_prefix('?').ok_or_else(|| {
                    TreeTextError::Structure(lineno, format!("expected ?var, got '{tok}'"))
                })?;
                free.push(interner.var(name));
            }
            continue;
        }
        let Some(rest) = line.strip_prefix("NODE") else {
            return Err(TreeTextError::Structure(
                lineno,
                format!("expected FREE or NODE, got '{line}'"),
            ));
        };
        // NODE <name> [PARENT <name>] { atoms }
        let brace = rest.find('{').ok_or_else(|| {
            TreeTextError::Structure(lineno, "missing '{' in NODE line".to_owned())
        })?;
        let header: Vec<&str> = rest[..brace].split_whitespace().collect();
        let close = rest.rfind('}').ok_or_else(|| {
            TreeTextError::Structure(lineno, "missing '}' in NODE line".to_owned())
        })?;
        let atoms = parse_atoms(interner, &rest[brace + 1..close])
            .map_err(|e| TreeTextError::Atoms(lineno, e))?;
        match header.as_slice() {
            [name] => {
                if builder.is_some() {
                    return Err(TreeTextError::Structure(
                        lineno,
                        "non-root NODE needs 'PARENT <name>'".to_owned(),
                    ));
                }
                ids.insert((*name).to_owned(), 0);
                builder = Some(WdptBuilder::new(atoms));
            }
            [name, kw, parent] if kw.eq_ignore_ascii_case("PARENT") => {
                let b = builder.as_mut().ok_or_else(|| {
                    TreeTextError::Structure(lineno, "root NODE must come first".to_owned())
                })?;
                let &pid = ids.get(*parent).ok_or_else(|| {
                    TreeTextError::Structure(lineno, format!("unknown parent '{parent}'"))
                })?;
                let id = b.child(pid, atoms);
                if ids.insert((*name).to_owned(), id).is_some() {
                    return Err(TreeTextError::Structure(
                        lineno,
                        format!("duplicate node name '{name}'"),
                    ));
                }
            }
            _ => {
                return Err(TreeTextError::Structure(
                    lineno,
                    "expected 'NODE <name> [PARENT <name>] { atoms }'".to_owned(),
                ))
            }
        }
    }
    let builder =
        builder.ok_or_else(|| TreeTextError::Structure(0, "no NODE lines found".to_owned()))?;
    let free = if free.is_empty() {
        // No FREE line: projection-free.
        let tmp = builder
            .clone()
            .build(Vec::new())
            .map_err(TreeTextError::Invalid)?;
        tmp.all_variables().into_iter().collect()
    } else {
        free
    };
    builder.build(free).map_err(TreeTextError::Invalid)
}

/// Renders a WDPT in the tree text format (round-trips with
/// [`parse_wdpt`]).
pub fn to_text(p: &Wdpt, interner: &Interner) -> String {
    let mut out = String::new();
    out.push_str("FREE");
    for v in p.free_vars() {
        out.push_str(&format!(" ?{}", interner.var_name(*v)));
    }
    out.push('\n');
    for t in 0..p.node_count() {
        let atoms = p
            .atoms(t)
            .iter()
            .map(|a| a.display(interner))
            .collect::<Vec<_>>()
            .join(", ");
        match p.parent(t) {
            None => out.push_str(&format!("NODE n{t} {{ {atoms} }}\n")),
            Some(par) => out.push_str(&format!("NODE n{t} PARENT n{par} {{ {atoms} }}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = r#"
# Figure 1 of the paper
FREE ?x ?y ?z ?z2
NODE root { rec_by(?x, ?y), publ(?x, "after_2010") }
NODE rating PARENT root { nme_rating(?x, ?z) }
NODE formed PARENT root { formed_in(?y, ?z2) }
"#;

    #[test]
    fn parses_figure1() {
        let mut i = Interner::new();
        let p = parse_wdpt(&mut i, FIGURE1).unwrap();
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.free_vars().len(), 4);
        assert_eq!(p.children(0).len(), 2);
    }

    #[test]
    fn roundtrips() {
        let mut i = Interner::new();
        let p = parse_wdpt(&mut i, FIGURE1).unwrap();
        let text = to_text(&p, &i);
        let p2 = parse_wdpt(&mut i, &text).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn missing_free_line_means_projection_free() {
        let mut i = Interner::new();
        let p = parse_wdpt(&mut i, "NODE r { e(?a, ?b) }").unwrap();
        assert!(p.is_projection_free());
    }

    #[test]
    fn rejects_unknown_parent() {
        let mut i = Interner::new();
        let err =
            parse_wdpt(&mut i, "NODE r { e(?a,?b) }\nNODE c PARENT nope { f(?b) }").unwrap_err();
        assert!(matches!(err, TreeTextError::Structure(2, _)));
    }

    #[test]
    fn rejects_duplicate_names_and_double_roots() {
        let mut i = Interner::new();
        assert!(parse_wdpt(&mut i, "NODE r { e(?a,?b) }\nNODE r2 { f(?b) }").is_err());
        assert!(parse_wdpt(
            &mut i,
            "NODE r { e(?a,?b) }\nNODE c PARENT r { f(?b) }\nNODE c PARENT r { g(?b) }"
        )
        .is_err());
    }

    #[test]
    fn rejects_ill_designed_trees() {
        let mut i = Interner::new();
        let src = "NODE r { a(?x) }\nNODE c1 PARENT r { b(?x,?z) }\nNODE c2 PARENT r { c(?x,?z) }";
        assert!(matches!(
            parse_wdpt(&mut i, src),
            Err(TreeTextError::Invalid(_))
        ));
    }

    #[test]
    fn reports_atom_errors_with_line_numbers() {
        let mut i = Interner::new();
        let err = parse_wdpt(&mut i, "NODE r { e(?a, }").unwrap_err();
        assert!(matches!(err, TreeTextError::Atoms(1, _)));
    }
}
