//! The (exact) evaluation problem EVAL: is `h ∈ p(D)`?
//!
//! This is the general decision procedure for arbitrary WDPTs — the
//! Σ₂ᵖ-complete problem of Theorem 1. The search is seeded by `h`: a
//! candidate maximal homomorphism must (i) assign every free variable it
//! defines according to `h`, (ii) be *forced* into every child that is
//! extendable at all (maximality), and (iii) end up covering exactly
//! `dom(h)` among the free variables. The recursion tracks, per subtree, the
//! set of achievable "coverage" sets of `dom(h)`; `h ∈ p(D)` iff some
//! root-level derivation covers all of `dom(h)`.
//!
//! Tractable special cases live in [`crate::eval_bi`] (Theorem 6: local
//! tractability + bounded interface).

use crate::tree::Wdpt;
use std::collections::BTreeSet;
use wdpt_cq::backtrack::{extend_all, extend_exists};
use wdpt_model::{Database, Mapping, Var};

/// Decides `h ∈ p(D)` for an arbitrary WDPT (general, worst-case
/// exponential — the paper's Σ₂ᵖ upper bound).
pub fn eval_decide(p: &Wdpt, db: &Database, h: &Mapping) -> bool {
    let _span = wdpt_obs::span!("wdpt.eval.decide");
    let free = p.free_set();
    let dom = h.domain();
    if !dom.is_subset(&free) {
        return false;
    }
    match coverages(p, db, h, &dom, p.root(), &Mapping::empty()) {
        None => false,
        Some(list) => list.into_iter().any(|cov| cov == dom),
    }
}

/// Coverage sets achievable by consistent maximal extensions into the
/// subtree rooted at `t`. `None` means `t` cannot be included consistently
/// (it introduces a free variable outside `dom(h)`).
fn coverages(
    p: &Wdpt,
    db: &Database,
    h: &Mapping,
    dom: &BTreeSet<Var>,
    t: usize,
    inherited: &Mapping,
) -> Option<Vec<BTreeSet<Var>>> {
    let free = p.free_set();
    let node_free: BTreeSet<Var> = p.node_vars(t).intersection(&free).copied().collect();
    if !node_free.is_subset(dom) {
        return None;
    }
    let seed = inherited
        .union(&h.restrict(&node_free))
        .expect("free-variable bindings always come from h");
    let locals = extend_all(db, p.atoms(t), &seed);
    let mut result: BTreeSet<BTreeSet<Var>> = BTreeSet::new();
    'locals: for g in locals {
        let ctx = seed
            .union(&g)
            .expect("local homomorphism extends its own seed");
        // Combine children choices; start with this node's coverage.
        let mut combos: BTreeSet<BTreeSet<Var>> = [node_free.clone()].into_iter().collect();
        for &c in p.children(t) {
            // Raw extendability: ANY extension (free variables of c are
            // unconstrained here) forces inclusion of c by maximality.
            let raw = extend_exists(db, p.atoms(c), &ctx);
            if !raw {
                continue; // child excluded; coverage unchanged
            }
            let sub = match coverages(p, db, h, dom, c, &ctx) {
                // Forced into a child that defines a free var outside
                // dom(h), or no consistent way to enter: this local
                // valuation cannot yield projection h.
                None => continue 'locals,
                Some(list) if list.is_empty() => continue 'locals,
                Some(list) => list,
            };
            let mut next: BTreeSet<BTreeSet<Var>> = BTreeSet::new();
            for base in &combos {
                for choice in &sub {
                    next.insert(base.union(choice).copied().collect());
                }
            }
            combos = next;
        }
        result.extend(combos);
    }
    Some(result.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::evaluate;
    use crate::tree::WdptBuilder;
    use wdpt_model::parse::{parse_atoms, parse_database, parse_mapping};
    use wdpt_model::Interner;

    fn figure1(i: &mut Interner) -> (Wdpt, Database) {
        let root = parse_atoms(i, r#"rec_by(?x,?y) publ(?x,"after_2010")"#).unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(i, "nme_rating(?x,?z)").unwrap());
        b.child(0, parse_atoms(i, "formed_in(?y,?z2)").unwrap());
        let free = ["x", "y", "z", "z2"].iter().map(|n| i.var(n)).collect();
        let p = b.build(free).unwrap();
        let db = parse_database(
            i,
            r#"rec_by("Our_love","Caribou") publ("Our_love","after_2010")
               rec_by("Swim","Caribou") publ("Swim","after_2010")
               nme_rating("Swim","2")"#,
        )
        .unwrap();
        (p, db)
    }

    #[test]
    fn accepts_the_example2_answers() {
        let mut i = Interner::new();
        let (p, db) = figure1(&mut i);
        let mu1 = parse_mapping(&mut i, r#"?x -> "Our_love", ?y -> "Caribou""#).unwrap();
        let mu2 = parse_mapping(&mut i, r#"?x -> "Swim", ?y -> "Caribou", ?z -> "2""#).unwrap();
        assert!(eval_decide(&p, &db, &mu1));
        assert!(eval_decide(&p, &db, &mu2));
    }

    #[test]
    fn rejects_non_maximal_projection() {
        let mut i = Interner::new();
        let (p, db) = figure1(&mut i);
        // {x ↦ Swim, y ↦ Caribou} without z is NOT an answer: the rating
        // branch is extendable, so maximality forces z.
        let bad = parse_mapping(&mut i, r#"?x -> "Swim", ?y -> "Caribou""#).unwrap();
        assert!(!eval_decide(&p, &db, &bad));
    }

    #[test]
    fn rejects_wrong_values_and_domains() {
        let mut i = Interner::new();
        let (p, db) = figure1(&mut i);
        let wrong = parse_mapping(&mut i, r#"?x -> "Swim", ?y -> "Nobody""#).unwrap();
        assert!(!eval_decide(&p, &db, &wrong));
        let non_free = parse_mapping(&mut i, r#"?w -> "Swim""#).unwrap();
        assert!(!eval_decide(&p, &db, &non_free));
    }

    #[test]
    fn agrees_with_enumeration_on_random_trees() {
        let mut state = 0xabcdef12u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _case in 0..25 {
            let mut i = Interner::new();
            let e = i.pred("e");
            let f = i.pred("f");
            let mut db = wdpt_model::Database::new();
            for _ in 0..(3 + next() % 6) {
                let a = i.constant(&format!("c{}", next() % 3));
                let b = i.constant(&format!("c{}", next() % 3));
                db.insert(e, vec![a, b]);
                if next() % 2 == 0 {
                    db.insert(f, vec![b, a]);
                }
            }
            // Random small 3-node tree: root with two children, variables
            // chained through the root.
            let x = i.var("x");
            let y = i.var("y");
            let z = i.var("z");
            let root = vec![wdpt_model::Atom::new(e, vec![x.into(), y.into()])];
            let c1 = vec![wdpt_model::Atom::new(
                if next() % 2 == 0 { e } else { f },
                vec![y.into(), z.into()],
            )];
            let mut b = WdptBuilder::new(root);
            b.child(0, c1);
            let p = b.build(vec![x, y, z]).unwrap();
            let answers = evaluate(&p, &db);
            for h in &answers {
                assert!(eval_decide(&p, &db, h), "answer rejected");
            }
            // Negative probes: random mappings not in the answer set.
            for _ in 0..5 {
                let probe = Mapping::from_pairs(vec![
                    (x, i.constant(&format!("c{}", next() % 3))),
                    (y, i.constant(&format!("c{}", next() % 3))),
                ]);
                let expected = answers.contains(&probe);
                assert_eq!(eval_decide(&p, &db, &probe), expected);
            }
        }
    }

    #[test]
    fn proposition3_three_colorability_reduction() {
        // The Prop. 3 construction: G is 3-colorable iff h ∈ p(D) for the
        // WDPT built from G. Triangle = colorable; triangle+loop forcing
        // conflict (complete graph K4) = not 3-colorable... use K4 vs path.
        let mut i = Interner::new();
        let db = parse_database(&mut i, "c(1,1) c(2,2) c(3,3)").unwrap();
        // Build for K3 (3-colorable) and K4 (not).
        for (n, edges, colorable) in [
            (3usize, vec![(0, 1), (1, 2), (0, 2)], true),
            (
                4,
                vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
                false,
            ),
        ] {
            let c = i.pred("c");
            let x = i.var("x");
            let us: Vec<wdpt_model::Var> = (0..n).map(|j| i.var(&format!("u{j}"))).collect();
            let mut root: Vec<wdpt_model::Atom> = us
                .iter()
                .map(|&u| wdpt_model::Atom::new(c, vec![u.into(), u.into()]))
                .collect();
            root.push(wdpt_model::Atom::new(c, vec![x.into(), x.into()]));
            let mut b = WdptBuilder::new(root);
            let mut free = vec![x];
            for (j, &(v1, v2)) in edges.iter().enumerate() {
                for k in 1..=3usize {
                    let xk = i.var(&format!("x_{j}_{k}"));
                    let kc = i.constant(&k.to_string());
                    let atoms = vec![
                        wdpt_model::Atom::new(c, vec![us[v1].into(), kc.into()]),
                        wdpt_model::Atom::new(c, vec![us[v2].into(), kc.into()]),
                        wdpt_model::Atom::new(c, vec![xk.into(), xk.into()]),
                    ];
                    b.child(0, atoms);
                    free.push(xk);
                }
            }
            let p = b.build(free).unwrap();
            let h = Mapping::from_pairs(vec![(x, i.constant("1"))]);
            assert_eq!(
                eval_decide(&p, &db, &h),
                colorable,
                "3-colorability reduction mismatch for n={n}"
            );
        }
    }
}
