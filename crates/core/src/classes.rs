//! The syntactic WDPT classes of the paper: local tractability `ℓ-C`,
//! bounded interface `BI(c)`, and global tractability `g-C` (Section 3),
//! plus the well-behaved classes `WB(k) = g-TW(k)` / `g-HW'(k)`
//! (Section 5).

use crate::tree::Wdpt;
use std::collections::BTreeSet;
use wdpt_cq::widths;
use wdpt_model::Var;

/// Which width measure defines the tractable CQ class `C(k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WidthKind {
    /// Treewidth: `C(k) = TW(k)`.
    Tw,
    /// (Generalized) hypertreewidth: `C(k) = HW(k)`.
    Hw,
    /// β-hypertreewidth: `C(k) = HW'(k)` (closed under subqueries,
    /// Section 5).
    HwPrime,
}

impl WidthKind {
    fn check(self, q: &wdpt_cq::ConjunctiveQuery, k: usize) -> bool {
        match self {
            WidthKind::Tw => widths::in_tw(q, k),
            WidthKind::Hw => widths::in_hw(q, k),
            WidthKind::HwPrime => widths::in_hw_prime(q, k),
        }
    }
}

/// Local tractability `p ∈ ℓ-C(k)`: every node label, read as a Boolean CQ,
/// belongs to `C(k)` (Section 3.2).
pub fn is_locally_in(p: &Wdpt, kind: WidthKind, k: usize) -> bool {
    (0..p.node_count()).all(|t| kind.check(&p.node_cq(t), k))
}

/// The interface width of `p`: the maximum, over nodes `t`, of the number
/// of variables shared between `λ(t)` and the labels of `t`'s children.
/// `p ∈ BI(c)` iff this is ≤ c (Section 3.2).
pub fn interface_width(p: &Wdpt) -> usize {
    (0..p.node_count())
        .map(|t| {
            let vt = p.node_vars(t);
            let child_vars: BTreeSet<Var> =
                p.children(t).iter().flat_map(|&c| p.node_vars(c)).collect();
            vt.intersection(&child_vars).count()
        })
        .max()
        .unwrap_or(0)
}

/// `p ∈ BI(c)`: c-bounded interface.
pub fn has_bounded_interface(p: &Wdpt, c: usize) -> bool {
    interface_width(p) <= c
}

/// Guard for the exponential rooted-subtree enumeration of the global
/// checks.
pub const GLOBAL_CHECK_SUBTREE_LIMIT: u128 = 1 << 20;

/// Global tractability `p ∈ g-C(k)`: the CQ `q_{T'}` of **every** rooted
/// subtree `T'` belongs to `C(k)` (Section 3.3). The enumeration is
/// exponential in the number of tree nodes.
///
/// # Panics
/// Panics if `p` has more than [`GLOBAL_CHECK_SUBTREE_LIMIT`] rooted
/// subtrees.
pub fn is_globally_in(p: &Wdpt, kind: WidthKind, k: usize) -> bool {
    let count = p.rooted_subtree_count();
    assert!(
        count <= GLOBAL_CHECK_SUBTREE_LIMIT,
        "global tractability check over {count} rooted subtrees exceeds the limit"
    );
    let mut ok = true;
    p.for_each_rooted_subtree(&mut |t| {
        if ok {
            let q = p.cq_of_subtree(t);
            if !kind.check(&ConjBool::strip(&q), k) {
                ok = false;
            }
        }
    });
    ok
}

/// Width checks only look at the hypergraph, which ignores the head; this
/// tiny helper documents that intent.
struct ConjBool;
impl ConjBool {
    fn strip(q: &wdpt_cq::ConjunctiveQuery) -> wdpt_cq::ConjunctiveQuery {
        wdpt_cq::ConjunctiveQuery::boolean(q.body().to_vec())
    }
}

/// `p ∈ WB(k)`: the well-behaved classes of Section 5 — `g-TW(k)` or
/// `g-HW'(k)` (the hypertree variant must be closed under subqueries).
pub fn in_wb(p: &Wdpt, kind: WidthKind, k: usize) -> bool {
    match kind {
        WidthKind::Tw => is_globally_in(p, WidthKind::Tw, k),
        WidthKind::Hw | WidthKind::HwPrime => is_globally_in(p, WidthKind::HwPrime, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::WdptBuilder;
    use wdpt_model::parse::parse_atoms;
    use wdpt_model::Interner;

    fn figure1(i: &mut Interner) -> Wdpt {
        let root = parse_atoms(i, r#"rec_by(?x,?y) publ(?x,"after_2010")"#).unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(i, "nme_rating(?x,?z)").unwrap());
        b.child(0, parse_atoms(i, "formed_in(?y,?z2)").unwrap());
        let free = ["x", "y", "z", "z2"].iter().map(|n| i.var(n)).collect();
        b.build(free).unwrap()
    }

    #[test]
    fn example6_classification() {
        // Example 6: the Figure 1 WDPT is in ℓ-TW(1) and BI(2).
        let mut i = Interner::new();
        let p = figure1(&mut i);
        assert!(is_locally_in(&p, WidthKind::Tw, 1));
        assert_eq!(interface_width(&p), 2); // x with child 1, y with child 2
        assert!(has_bounded_interface(&p, 2));
        assert!(!has_bounded_interface(&p, 1));
    }

    #[test]
    fn figure1_is_globally_tractable() {
        let mut i = Interner::new();
        let p = figure1(&mut i);
        assert!(is_globally_in(&p, WidthKind::Tw, 1));
        assert!(is_globally_in(&p, WidthKind::Hw, 1));
        assert!(in_wb(&p, WidthKind::Tw, 1));
    }

    #[test]
    fn local_but_not_global() {
        // Each node is a single edge (TW(1) locally) but together the three
        // nodes close a triangle: the full subtree has treewidth 2.
        let mut i = Interner::new();
        let root = parse_atoms(&mut i, "e(?x,?y)").unwrap();
        let mut b = WdptBuilder::new(root);
        let c1 = b.child(0, parse_atoms(&mut i, "e(?y,?z) e(?x,?w)").unwrap());
        b.child(c1, parse_atoms(&mut i, "e(?z,?x)").unwrap());
        let free = vec![i.var("x")];
        let p = b.build(free).unwrap();
        assert!(is_locally_in(&p, WidthKind::Tw, 1));
        assert!(!is_globally_in(&p, WidthKind::Tw, 1));
        assert!(is_globally_in(&p, WidthKind::Tw, 2));
    }

    #[test]
    fn proposition2_inclusion_on_samples() {
        // Prop. 2(1): ℓ-TW(k) ∩ BI(c) ⊆ g-TW(k + 2c) — check on the
        // Figure 1 tree and the triangle tree above.
        let mut i = Interner::new();
        let p = figure1(&mut i);
        let k = 1;
        let c = interface_width(&p);
        assert!(is_locally_in(&p, WidthKind::Tw, k));
        assert!(is_globally_in(&p, WidthKind::Tw, k + 2 * c));
    }

    #[test]
    fn proposition2_witness_family() {
        // Prop. 2(2): a family in g-TW(1) with unbounded interface — a root
        // sharing many variables with one child, all in one path-shaped
        // hypergraph. Root: path on u1..un; child: same variables extended.
        let mut i = Interner::new();
        let n = 6;
        let mut root_atoms = Vec::new();
        for j in 0..n - 1 {
            root_atoms
                .push(parse_atoms(&mut i, &format!("e(?u{j},?u{})", j + 1)).unwrap()[0].clone());
        }
        let mut child_atoms = Vec::new();
        for j in 0..n - 1 {
            child_atoms
                .push(parse_atoms(&mut i, &format!("e(?u{j},?u{})", j + 1)).unwrap()[0].clone());
        }
        let mut b = WdptBuilder::new(root_atoms);
        b.child(0, child_atoms);
        let p = b.build(vec![i.var("u0")]).unwrap();
        assert!(is_globally_in(&p, WidthKind::Tw, 1));
        assert_eq!(interface_width(&p), n); // unbounded as n grows
    }

    #[test]
    fn single_node_interface_is_zero() {
        let mut i = Interner::new();
        let p = WdptBuilder::new(parse_atoms(&mut i, "e(?x,?y)").unwrap())
            .build(vec![i.var("x")])
            .unwrap();
        assert_eq!(interface_width(&p), 0);
        assert!(has_bounded_interface(&p, 0));
    }

    #[test]
    fn hw_prime_distinguishes_from_hw() {
        // Node label = clique + covering atom: in HW(1) but not HW'(1).
        let mut i = Interner::new();
        let mut body = String::new();
        for a in 1..=4 {
            for b in a + 1..=4 {
                body.push_str(&format!("e(?x{a},?x{b}) "));
            }
        }
        body.push_str("t(?x1,?x2,?x3,?x4)");
        let atoms = parse_atoms(&mut i, &body).unwrap();
        let p = WdptBuilder::new(atoms).build(vec![]).unwrap();
        assert!(is_locally_in(&p, WidthKind::Hw, 1));
        assert!(!is_locally_in(&p, WidthKind::HwPrime, 1));
        assert!(is_globally_in(&p, WidthKind::Hw, 1));
        assert!(!in_wb(&p, WidthKind::Hw, 1));
    }
}
