//! Subsumption and subsumption-equivalence (Section 4 of the paper).
//!
//! `p ⊑ p'` iff over every database, every answer of `p` is extended by an
//! answer of `p'`. The canonical-database characterization (from Letelier
//! et al. [17], used by Theorem 11): `p ⊑ p'` iff for **every** rooted
//! subtree `T₁` of `p`, the identity mapping on the frozen free variables of
//! `T₁` is a *partial answer* of `p'` over the canonical database of
//! `q_{T₁}`.
//!
//! The outer loop over rooted subtrees of `p` is the co-nondeterminism of
//! the Π₂ᵖ/coNP upper bounds — exponential only in `|p|`. The inner check is
//! PARTIAL-EVAL, so it is polynomial whenever `p'` is globally tractable
//! (Theorem 11's asymmetry: only the *right-hand* tree needs restricting).

use crate::engine::Engine;
use crate::tree::Wdpt;
use crate::variants::partial_eval_decide;
use wdpt_cq::containment::freeze;
use wdpt_model::{Interner, Mapping};

/// Decides `p1 ⊑ p2`. `engine` drives the PARTIAL-EVAL checks against
/// `p2` — use `Engine::Tw(k)`/`Engine::Hw(k)` when `p2 ∈ g-TW(k)/g-HW(k)`
/// for the coNP procedure of Theorem 11, or `Engine::Backtrack` for
/// arbitrary `p2`.
pub fn subsumed(p1: &Wdpt, p2: &Wdpt, engine: Engine, interner: &mut Interner) -> bool {
    let _span = wdpt_obs::span!("wdpt.subsumption.subsumed");
    // Stream the (exponentially many) rooted subtrees instead of
    // materializing them: memory stays linear and the first refuting
    // subtree short-circuits the remaining checks.
    let mut holds = true;
    let mut cell = Some(interner);
    p1.for_each_rooted_subtree(&mut |t1| {
        if !holds {
            return;
        }
        let interner = cell.as_mut().expect("interner is threaded through");
        let q = p1.cq_of_subtree(t1);
        let (db, table) = freeze(&q, interner);
        let free_vars = p1.subtree_free_vars(t1);
        let h = Mapping::from_pairs(free_vars.iter().map(|&x| (x, table[&x])));
        if !partial_eval_decide(p2, &db, &h, engine) {
            holds = false;
        }
    });
    holds
}

/// Subsumption-equivalence `p1 ≡ₛ p2`: both `p1 ⊑ p2` and `p2 ⊑ p1`.
/// `engine1` is used when checking against `p1` (i.e. for `p2 ⊑ p1`) and
/// `engine2` when checking against `p2`.
pub fn subsumption_equivalent(
    p1: &Wdpt,
    p2: &Wdpt,
    engine1: Engine,
    engine2: Engine,
    interner: &mut Interner,
) -> bool {
    subsumed(p1, p2, engine2, interner) && subsumed(p2, p1, engine1, interner)
}

/// MAXEQUIVALENCE: `p ≡_max p'` — equal maximal-mapping semantics over every
/// database. By Proposition 5 this coincides with subsumption-equivalence,
/// so this is an alias for [`subsumption_equivalent`].
pub fn max_equivalent(
    p1: &Wdpt,
    p2: &Wdpt,
    engine1: Engine,
    engine2: Engine,
    interner: &mut Interner,
) -> bool {
    subsumption_equivalent(p1, p2, engine1, engine2, interner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{evaluate, evaluate_max};
    use crate::tree::WdptBuilder;
    use wdpt_model::parse::{parse_atoms, parse_database};
    use wdpt_model::Interner;

    fn single(i: &mut Interner, head: &[&str], body: &str) -> Wdpt {
        let atoms = parse_atoms(i, body).unwrap();
        let free = head.iter().map(|n| i.var(n)).collect();
        WdptBuilder::new(atoms).build(free).unwrap()
    }

    #[test]
    fn cq_subsumption_reduces_to_containment() {
        let mut i = Interner::new();
        // Single-node WDPTs behave like CQs: longer path ⊑ shorter path.
        let p3 = single(&mut i, &["x"], "e(?x,?y) e(?y,?z) e(?z,?w)");
        let p1 = single(&mut i, &["x"], "e(?x,?y)");
        assert!(subsumed(&p3, &p1, Engine::Backtrack, &mut i));
        assert!(!subsumed(&p1, &p3, Engine::Backtrack, &mut i));
    }

    #[test]
    fn dropping_an_optional_branch_subsumes() {
        let mut i = Interner::new();
        // p1: just the root. p2: root plus an optional branch. Then
        // p1 ⊑ p2 (answers of p1 get extended) and also p2 ⊑ p1? No:
        // an answer of p2 defining y cannot be extended by p1 answers...
        // subsumption only requires h ⊑ h' — h' must define MORE. p2's
        // answers define y sometimes; p1's never do. So p2 ⋢ p1.
        let p1 = single(&mut i, &["x"], "a(?x)");
        let root = parse_atoms(&mut i, "a(?x)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(&mut i, "b(?x,?y)").unwrap());
        let p2 = b.build(vec![i.var("x"), i.var("y")]).unwrap();
        assert!(subsumed(&p1, &p2, Engine::Backtrack, &mut i));
        assert!(!subsumed(&p2, &p1, Engine::Backtrack, &mut i));
    }

    #[test]
    fn identical_trees_are_subsumption_equivalent() {
        let mut i = Interner::new();
        let root = parse_atoms(&mut i, "a(?x)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(&mut i, "b(?x,?y)").unwrap());
        let p = b.build(vec![i.var("x"), i.var("y")]).unwrap();
        assert!(subsumption_equivalent(
            &p.clone(),
            &p,
            Engine::Backtrack,
            Engine::Backtrack,
            &mut i
        ));
    }

    #[test]
    fn redundant_branch_is_subsumption_equivalent() {
        let mut i = Interner::new();
        // p2 has an extra optional branch that can never bind anything new
        // (same atom as the root), so p1 ≡ₛ p2.
        let p1 = single(&mut i, &["x"], "a(?x)");
        let root = parse_atoms(&mut i, "a(?x)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(&mut i, "a(?x)").unwrap());
        let p2 = b.build(vec![i.var("x")]).unwrap();
        assert!(subsumption_equivalent(
            &p1,
            &p2,
            Engine::Backtrack,
            Engine::Backtrack,
            &mut i
        ));
    }

    #[test]
    fn subsumption_is_sound_on_concrete_databases() {
        // Whenever subsumed() accepts, verify the defining property on a
        // concrete database: every answer of p1 is extended by one of p2.
        let mut i = Interner::new();
        let p1 = single(&mut i, &["x"], "e(?x,?y) e(?y,?z)");
        let p2 = single(&mut i, &["x"], "e(?x,?y)");
        assert!(subsumed(&p1, &p2, Engine::Backtrack, &mut i));
        let db = parse_database(&mut i, "e(a,b) e(b,c) e(c,c)").unwrap();
        let a1 = evaluate(&p1, &db);
        let a2 = evaluate(&p2, &db);
        for h in &a1 {
            assert!(
                a2.iter().any(|h2| h.subsumed_by(h2)),
                "answer {h} not extended"
            );
        }
    }

    #[test]
    fn structured_engine_agrees_with_backtracking() {
        let mut i = Interner::new();
        let p1 = single(&mut i, &["x"], "e(?x,?y) e(?y,?z)");
        let p2 = single(&mut i, &["x"], "e(?x,?y)");
        assert_eq!(
            subsumed(&p1, &p2, Engine::Backtrack, &mut i),
            subsumed(&p1, &p2, Engine::Tw(1), &mut i),
        );
        assert_eq!(
            subsumed(&p2, &p1, Engine::Backtrack, &mut i),
            subsumed(&p2, &p1, Engine::Tw(1), &mut i),
        );
    }

    #[test]
    fn max_equivalence_alias_matches_semantics() {
        // Prop. 5 sanity: ≡ₛ trees have equal p_m(D) on a concrete database.
        let mut i = Interner::new();
        let p1 = single(&mut i, &["x"], "a(?x)");
        let root = parse_atoms(&mut i, "a(?x)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(&mut i, "a(?x)").unwrap());
        let p2 = b.build(vec![i.var("x")]).unwrap();
        assert!(max_equivalent(
            &p1,
            &p2,
            Engine::Backtrack,
            Engine::Backtrack,
            &mut i
        ));
        let db = parse_database(&mut i, "a(1) a(2)").unwrap();
        assert_eq!(evaluate_max(&p1, &db), evaluate_max(&p2, &db));
    }

    #[test]
    fn free_variable_mismatch_blocks_subsumption() {
        let mut i = Interner::new();
        let p1 = single(&mut i, &["x"], "e(?x,?y)");
        let p2 = single(&mut i, &["y"], "e(?x,?y)");
        assert!(!subsumed(&p1, &p2, Engine::Backtrack, &mut i));
    }
}
