//! Tractable evaluation of projection-free WDPTs (Theorem 4 of the paper).
//!
//! For projection-free trees every variable is free, so a candidate answer
//! `h` determines the whole homomorphism. Evaluation reduces to local
//! checks ([17]):
//!
//! 1. grow the unique maximal rooted subtree `T*` of nodes whose variables
//!    lie in `dom(h)` and whose (now ground) atoms are all in `D`;
//! 2. `h ∈ p(D)` iff `T*` exists (the root qualifies), its variables are
//!    exactly `dom(h)`, and no child of `T*` admits a homomorphism
//!    extension — a per-node CQ check that is polynomial under local
//!    tractability.
//!
//! This realizes the `EVAL(C') ∈ PTIME` claim of Theorem 4 for any class
//! `C` of CQs with tractable evaluation, via the pluggable [`Engine`].

use crate::engine::Engine;
use crate::tree::Wdpt;
use wdpt_model::{Database, Mapping};

/// Decides `h ∈ p(D)` for a **projection-free** WDPT in polynomial time
/// (given local tractability w.r.t. `engine`'s class).
///
/// # Panics
/// Panics if `p` is not projection-free — use [`crate::eval_decide`] or
/// [`crate::eval_bounded_interface`] for trees with projection.
pub fn eval_projection_free(p: &Wdpt, db: &Database, h: &Mapping, engine: Engine) -> bool {
    assert!(
        p.is_projection_free(),
        "eval_projection_free requires a projection-free WDPT"
    );
    let dom = h.domain();
    if !dom.is_subset(&p.free_set()) {
        return false;
    }
    // Step 1: grow T*.
    let satisfied = |t: usize| -> bool {
        p.node_vars(t).is_subset(&dom) && p.atoms(t).iter().all(|a| db.contains_atom(&a.apply(h)))
    };
    if !satisfied(p.root()) {
        return false;
    }
    let mut in_star = vec![false; p.node_count()];
    in_star[p.root()] = true;
    let mut stack = vec![p.root()];
    let mut covered = p.node_vars(p.root());
    while let Some(t) = stack.pop() {
        for &c in p.children(t) {
            if satisfied(c) {
                in_star[c] = true;
                covered.extend(p.node_vars(c));
                stack.push(c);
            }
        }
    }
    // Step 2a: exact domain.
    if covered != dom {
        return false;
    }
    // Step 2b: maximality — no excluded child of T* extends.
    for t in 0..p.node_count() {
        if !in_star[t] {
            continue;
        }
        for &c in p.children(t) {
            if in_star[c] {
                continue;
            }
            if engine.hom_exists(&p.node_cq(c), db, h) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_decide;
    use crate::semantics::evaluate;
    use crate::tree::WdptBuilder;
    use wdpt_model::parse::{parse_atoms, parse_database, parse_mapping};
    use wdpt_model::Interner;

    fn figure1(i: &mut Interner) -> (Wdpt, Database) {
        let root = parse_atoms(i, r#"rec_by(?x,?y) publ(?x,"after_2010")"#).unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(i, "nme_rating(?x,?z)").unwrap());
        b.child(0, parse_atoms(i, "formed_in(?y,?z2)").unwrap());
        let free = ["x", "y", "z", "z2"].iter().map(|n| i.var(n)).collect();
        let p = b.build(free).unwrap();
        let db = parse_database(
            i,
            r#"rec_by("Our_love","Caribou") publ("Our_love","after_2010")
               rec_by("Swim","Caribou") publ("Swim","after_2010")
               nme_rating("Swim","2")"#,
        )
        .unwrap();
        (p, db)
    }

    #[test]
    fn matches_example2_answers() {
        let mut i = Interner::new();
        let (p, db) = figure1(&mut i);
        let mu1 = parse_mapping(&mut i, r#"?x -> "Our_love", ?y -> "Caribou""#).unwrap();
        let mu2 = parse_mapping(&mut i, r#"?x -> "Swim", ?y -> "Caribou", ?z -> "2""#).unwrap();
        let not_max = parse_mapping(&mut i, r#"?x -> "Swim", ?y -> "Caribou""#).unwrap();
        for engine in [Engine::Backtrack, Engine::Tw(1), Engine::Hw(1)] {
            assert!(eval_projection_free(&p, &db, &mu1, engine));
            assert!(eval_projection_free(&p, &db, &mu2, engine));
            assert!(!eval_projection_free(&p, &db, &not_max, engine));
        }
    }

    #[test]
    fn rejects_wrong_values() {
        let mut i = Interner::new();
        let (p, db) = figure1(&mut i);
        let wrong = parse_mapping(&mut i, r#"?x -> "Swim", ?y -> "Nobody""#).unwrap();
        assert!(!eval_projection_free(&p, &db, &wrong, Engine::Backtrack));
    }

    #[test]
    #[should_panic(expected = "projection-free")]
    fn rejects_trees_with_projection() {
        let mut i = Interner::new();
        let atoms = parse_atoms(&mut i, "e(?x,?y)").unwrap();
        let p = WdptBuilder::new(atoms).build(vec![i.var("x")]).unwrap();
        let db = parse_database(&mut i, "e(1,2)").unwrap();
        let h = parse_mapping(&mut i, "?x -> 1").unwrap();
        eval_projection_free(&p, &db, &h, Engine::Backtrack);
    }

    #[test]
    fn agrees_with_general_eval_on_random_instances() {
        let mut state = 0x77aa_11bbu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for case in 0..40 {
            let mut i = Interner::new();
            let e = i.pred("e");
            let f = i.pred("f");
            let mut db = Database::new();
            for _ in 0..(4 + next() % 8) {
                let a = i.constant(&format!("c{}", next() % 4));
                let b = i.constant(&format!("c{}", next() % 4));
                db.insert(e, vec![a, b]);
                if next() % 2 == 0 {
                    db.insert(f, vec![b, a]);
                }
            }
            let x = i.var("x");
            let y = i.var("y");
            let z = i.var("z");
            let w = i.var("w");
            let mut b = WdptBuilder::new(vec![wdpt_model::Atom::new(e, vec![x.into(), y.into()])]);
            let c1 = b.child(
                0,
                vec![wdpt_model::Atom::new(
                    if next() % 2 == 0 { e } else { f },
                    vec![y.into(), z.into()],
                )],
            );
            b.child(
                c1,
                vec![wdpt_model::Atom::new(
                    if next() % 2 == 0 { e } else { f },
                    vec![z.into(), w.into()],
                )],
            );
            let p = b.build(vec![x, y, z, w]).unwrap();
            // Every true answer accepted; general decision agrees on probes.
            for h in evaluate(&p, &db) {
                assert!(
                    eval_projection_free(&p, &db, &h, Engine::Tw(1)),
                    "case {case}: answer rejected"
                );
            }
            for _ in 0..6 {
                let mut probe = Mapping::empty();
                probe.insert(x, i.constant(&format!("c{}", next() % 4)));
                probe.insert(y, i.constant(&format!("c{}", next() % 4)));
                if next() % 2 == 0 {
                    probe.insert(z, i.constant(&format!("c{}", next() % 4)));
                }
                let expected = eval_decide(&p, &db, &probe);
                assert_eq!(
                    eval_projection_free(&p, &db, &probe, Engine::Backtrack),
                    expected,
                    "case {case}: probe disagreed"
                );
            }
        }
    }

    #[test]
    fn empty_mapping_only_when_root_is_variable_free() {
        let mut i = Interner::new();
        let atoms = parse_atoms(&mut i, "marker(on)").unwrap();
        let p = WdptBuilder::new(atoms).build(vec![]).unwrap();
        let db = parse_database(&mut i, "marker(on)").unwrap();
        assert!(eval_projection_free(
            &p,
            &db,
            &Mapping::empty(),
            Engine::Backtrack
        ));
        let db2 = parse_database(&mut i, "marker(off)").unwrap();
        assert!(!eval_projection_free(
            &p,
            &db2,
            &Mapping::empty(),
            Engine::Backtrack
        ));
    }
}
