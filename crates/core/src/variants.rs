//! PARTIAL-EVAL and MAX-EVAL (Sections 3.3 and 3.4 of the paper).
//!
//! * **PARTIAL-EVAL** (Theorem 8): `h` extends to some answer iff the CQ of
//!   the minimal rooted subtree covering `dom(h)`, with `h` frozen, has a
//!   homomorphism. Under global tractability that CQ is in `TW(k)`/`HW(k)`,
//!   so the structured engines make this polynomial (LogCFL).
//! * **MAX-EVAL** (Theorem 9): with `A = {ĥ_x̄ : ĥ a homomorphism}` and
//!   `B = p(D)`, every homomorphism extends to a maximal one, so
//!   `max(A) = max(B) = p_m(D)`. Hence `h ∈ p_m(D)` iff (i) some
//!   homomorphism projects *exactly* to `h` — the minimal covering subtree
//!   has free variables exactly `dom(h)` and admits an `h`-consistent
//!   homomorphism — and (ii) no free variable outside `dom(h)` can be
//!   additionally bound. Both are hom-existence checks on subtree CQs.

use crate::engine::Engine;
use crate::tree::Wdpt;
use wdpt_model::{Database, Mapping};

/// PARTIAL-EVAL: is there `h' ∈ p(D)` with `h ⊑ h'`?
pub fn partial_eval_decide(p: &Wdpt, db: &Database, h: &Mapping, engine: Engine) -> bool {
    let dom = h.domain();
    if !dom.is_subset(&p.free_set()) {
        return false;
    }
    let Some(t1) = p.minimal_subtree_covering(&dom) else {
        return false;
    };
    engine.hom_exists(&p.cq_of_subtree(&t1), db, h)
}

/// MAX-EVAL: is `h ∈ p_m(D)` (an answer maximal under ⊑)?
pub fn max_eval_decide(p: &Wdpt, db: &Database, h: &Mapping, engine: Engine) -> bool {
    let free = p.free_set();
    let dom = h.domain();
    if !dom.is_subset(&free) {
        return false;
    }
    let Some(t1) = p.minimal_subtree_covering(&dom) else {
        return false;
    };
    // (i) some homomorphism projects exactly to h.
    if p.subtree_free_vars(&t1) != dom {
        return false;
    }
    if !engine.hom_exists(&p.cq_of_subtree(&t1), db, h) {
        return false;
    }
    // (ii) no extension to a further free variable.
    !has_proper_extension(p, db, h, engine)
}

/// Is there a homomorphism consistent with `h` that additionally binds some
/// free variable outside `dom(h)`? Equivalently: does some answer of `p`
/// over `db` *strictly* extend `h`? Used by MAX-EVAL (here and for unions
/// of WDPTs in `wdpt-approx`). Requires `dom(h) ⊆ x̄`; returns `false`
/// otherwise (no answer of `p` even covers `h`).
pub fn has_proper_extension(p: &Wdpt, db: &Database, h: &Mapping, engine: Engine) -> bool {
    let free = p.free_set();
    let dom = h.domain();
    if !dom.is_subset(&free) {
        return false;
    }
    for &x in free.difference(&dom) {
        let mut extended = dom.clone();
        extended.insert(x);
        let Some(t1x) = p.minimal_subtree_covering(&extended) else {
            continue;
        };
        if engine.hom_exists(&p.cq_of_subtree(&t1x), db, h) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{evaluate, evaluate_max};
    use crate::tree::WdptBuilder;
    use wdpt_model::parse::{parse_atoms, parse_database, parse_mapping};
    use wdpt_model::Interner;

    fn figure1_projected(i: &mut Interner) -> (Wdpt, Database) {
        let root = parse_atoms(i, r#"rec_by(?x,?y) publ(?x,"after_2010")"#).unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(i, "nme_rating(?x,?z)").unwrap());
        b.child(0, parse_atoms(i, "formed_in(?y,?z2)").unwrap());
        // Example 7 projection: free = {y, z}.
        let free = ["y", "z"].iter().map(|n| i.var(n)).collect();
        let p = b.build(free).unwrap();
        let db = parse_database(
            i,
            r#"rec_by("Our_love","Caribou") publ("Our_love","after_2010")
               rec_by("Swim","Caribou") publ("Swim","after_2010")
               nme_rating("Swim","2")"#,
        )
        .unwrap();
        (p, db)
    }

    #[test]
    fn partial_eval_accepts_prefixes_of_answers() {
        let mut i = Interner::new();
        let (p, db) = figure1_projected(&mut i);
        let y_only = parse_mapping(&mut i, r#"?y -> "Caribou""#).unwrap();
        let yz = parse_mapping(&mut i, r#"?y -> "Caribou", ?z -> "2""#).unwrap();
        let wrong = parse_mapping(&mut i, r#"?y -> "Nobody""#).unwrap();
        for engine in [Engine::Backtrack, Engine::Tw(1), Engine::Hw(1)] {
            assert!(partial_eval_decide(&p, &db, &y_only, engine));
            assert!(partial_eval_decide(&p, &db, &yz, engine));
            assert!(!partial_eval_decide(&p, &db, &wrong, engine));
            assert!(partial_eval_decide(&p, &db, &Mapping::empty(), engine));
        }
    }

    #[test]
    fn max_eval_matches_example7() {
        let mut i = Interner::new();
        let (p, db) = figure1_projected(&mut i);
        let mu1 = parse_mapping(&mut i, r#"?y -> "Caribou""#).unwrap();
        let mu2 = parse_mapping(&mut i, r#"?y -> "Caribou", ?z -> "2""#).unwrap();
        // p(D) = {μ1, μ2}, p_m(D) = {μ2} (Example 7).
        assert_eq!(evaluate(&p, &db).len(), 2);
        assert_eq!(evaluate_max(&p, &db), vec![mu2.clone()]);
        for engine in [Engine::Backtrack, Engine::Tw(1), Engine::Hw(1)] {
            assert!(!max_eval_decide(&p, &db, &mu1, engine));
            assert!(max_eval_decide(&p, &db, &mu2, engine));
        }
    }

    #[test]
    fn partial_and_max_agree_with_semantics_on_random_instances() {
        let mut state = 0x5eed_cafe_1234u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for case in 0..30 {
            let mut i = Interner::new();
            let e = i.pred("e");
            let f = i.pred("f");
            let mut db = wdpt_model::Database::new();
            for _ in 0..(4 + next() % 8) {
                let a = i.constant(&format!("c{}", next() % 4));
                let b = i.constant(&format!("c{}", next() % 4));
                db.insert(e, vec![a, b]);
                if next() % 2 == 0 {
                    db.insert(f, vec![b, a]);
                }
            }
            let x = i.var("x");
            let y = i.var("y");
            let z = i.var("z");
            let mut b = WdptBuilder::new(vec![wdpt_model::Atom::new(e, vec![x.into(), y.into()])]);
            b.child(
                0,
                vec![wdpt_model::Atom::new(
                    if next() % 2 == 0 { e } else { f },
                    vec![y.into(), z.into()],
                )],
            );
            let p = b.build(vec![x, y, z]).unwrap();
            let answers = evaluate(&p, &db);
            let max_answers = evaluate_max(&p, &db);
            // Probe every answer plus random prefixes.
            for h in &answers {
                assert!(partial_eval_decide(&p, &db, h, Engine::Backtrack));
                assert!(partial_eval_decide(&p, &db, h, Engine::Tw(1)));
                let expect_max = max_answers.contains(h);
                assert_eq!(
                    max_eval_decide(&p, &db, h, Engine::Backtrack),
                    expect_max,
                    "case {case}: max-eval mismatch for {h}"
                );
                assert_eq!(
                    max_eval_decide(&p, &db, h, Engine::Tw(1)),
                    expect_max,
                    "case {case}: structured max-eval mismatch for {h}"
                );
            }
            for _ in 0..6 {
                let mut probe = Mapping::empty();
                if next() % 2 == 0 {
                    probe.insert(x, i.constant(&format!("c{}", next() % 4)));
                }
                if next() % 2 == 0 {
                    probe.insert(y, i.constant(&format!("c{}", next() % 4)));
                }
                let expect_partial = answers.iter().any(|a| probe.subsumed_by(a));
                assert_eq!(
                    partial_eval_decide(&p, &db, &probe, Engine::Backtrack),
                    expect_partial,
                    "case {case}: partial-eval mismatch for {probe}"
                );
                assert_eq!(
                    partial_eval_decide(&p, &db, &probe, Engine::Tw(1)),
                    expect_partial,
                    "case {case}: structured partial-eval mismatch for {probe}"
                );
            }
        }
    }

    #[test]
    fn max_eval_rejects_non_exact_domains() {
        let mut i = Interner::new();
        let (p, db) = figure1_projected(&mut i);
        // z alone cannot be the exact projection: covering z requires the
        // rating node whose subtree also mentions free y... actually the
        // minimal subtree covering {z} includes the root, which mentions y.
        let z_only = parse_mapping(&mut i, r#"?z -> "2""#).unwrap();
        assert!(!max_eval_decide(&p, &db, &z_only, Engine::Backtrack));
        // But z alone IS a partial answer (μ2 extends it).
        assert!(partial_eval_decide(&p, &db, &z_only, Engine::Backtrack));
    }

    #[test]
    fn domain_outside_free_vars_is_rejected() {
        let mut i = Interner::new();
        let (p, db) = figure1_projected(&mut i);
        let x_bound = parse_mapping(&mut i, r#"?x -> "Swim""#).unwrap();
        assert!(!partial_eval_decide(&p, &db, &x_bound, Engine::Backtrack));
        assert!(!max_eval_decide(&p, &db, &x_bound, Engine::Backtrack));
    }
}
