//! Building a cost-based [`ExecPlan`] for a whole wdPT.
//!
//! `wdpt-plan` deliberately plans one atom set at a time; this module
//! supplies the tree walk. Each node is planned with its *ancestor-bound
//! variable set* — the union of the variables appearing in strictly
//! ancestral nodes — because by the time the evaluator reaches a node,
//! every inherited variable carries a value, which changes which atom is
//! cheapest to match first. Well-designedness guarantees those are the
//! only cross-node variables a node can see.

use crate::tree::Wdpt;
use std::collections::BTreeSet;
use wdpt_model::{CancelToken, Cancelled, Var};
use wdpt_plan::{plan_node, ExecPlan, StatsCatalog, Strategy};

/// Plans every node of `p` against `stats` under `strategy`, producing one
/// [`NodeOrder`](wdpt_plan::NodeOrder) per preorder node id. Deadline-aware
/// through `token` — the exponential enumerators poll it between subsets.
pub fn plan_wdpt(
    p: &Wdpt,
    stats: &StatsCatalog,
    strategy: Strategy,
    token: &CancelToken,
) -> Result<ExecPlan, Cancelled> {
    let _span = wdpt_obs::span!("plan.build");
    let n = p.node_count();
    // Preorder ids satisfy parent(t) < t, so a single forward pass can
    // carry each node's inherited-variable set down the tree.
    let mut bound: Vec<BTreeSet<Var>> = Vec::with_capacity(n);
    let mut nodes = Vec::with_capacity(n);
    for t in 0..n {
        let b0 = match p.parent(t) {
            None => BTreeSet::new(),
            Some(parent) => {
                let mut b = bound[parent].clone();
                b.extend(p.node_vars(parent));
                b
            }
        };
        nodes.push(plan_node(stats, p.atoms(t), &b0, strategy, token)?);
        bound.push(b0);
    }
    Ok(ExecPlan {
        strategy,
        nodes,
        stats_epoch: stats.epoch(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::WdptBuilder;
    use wdpt_model::parse::{parse_atoms, parse_database};
    use wdpt_model::Interner;

    #[test]
    fn plans_every_node_with_inherited_bounds() {
        let mut i = Interner::new();
        // Root binds ?x; the child joins fan(?x,?y) with filter(?y).
        let root = parse_atoms(&mut i, "small(?x)").unwrap();
        let child = parse_atoms(&mut i, "fan(?x,?y), filter(?y)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, child);
        let free = ["x", "y"].iter().map(|n| i.var(n)).collect();
        let p = b.build(free).unwrap();
        let mut spec = String::from("small(a) small(b) filter(y0) ");
        for s in ["a", "b"] {
            for j in 0..50 {
                spec.push_str(&format!("fan({s},y{j}) "));
            }
        }
        let db = parse_database(&mut i, &spec).unwrap();
        let stats = StatsCatalog::build(&db);
        let token = CancelToken::new();
        let plan = plan_wdpt(&p, &stats, Strategy::Dp, &token).unwrap();
        assert_eq!(plan.nodes.len(), 2);
        assert_eq!(plan.stats_epoch, stats.epoch());
        // At the child, ?x is inherited: fan is bound (≈50 matches) while
        // filter has 1 row — filter still goes first.
        assert_eq!(plan.nodes[1].order, vec![1, 0]);
        assert!(plan.est_nodes() >= 1.0);
    }

    #[test]
    fn planned_evaluation_matches_dynamic() {
        let mut i = Interner::new();
        let root = parse_atoms(&mut i, "a(?x)").unwrap();
        let mut b = WdptBuilder::new(root);
        let c1 = b.child(0, parse_atoms(&mut i, "b(?x,?y), d(?y)").unwrap());
        b.child(0, parse_atoms(&mut i, "c(?x,?z)").unwrap());
        b.child(c1, parse_atoms(&mut i, "e(?y,?w)").unwrap());
        let free = ["x", "y", "z", "w"].iter().map(|n| i.var(n)).collect();
        let p = b.build(free).unwrap();
        let db = parse_database(
            &mut i,
            "a(1) a(2) b(1,10) b(2,20) d(10) d(20) c(2,30) e(20,40) e(20,41)",
        )
        .unwrap();
        let stats = StatsCatalog::build(&db);
        let token = CancelToken::new();
        for strategy in [
            Strategy::Auto,
            Strategy::Greedy,
            Strategy::Dp,
            Strategy::Bushy,
        ] {
            let plan = plan_wdpt(&p, &stats, strategy, &token).unwrap();
            let (planned, _) = crate::profile::try_evaluate_parallel_captured_planned(
                &p,
                &db,
                2,
                &token,
                "planned",
                Some(&plan),
            );
            assert_eq!(
                planned.unwrap(),
                crate::semantics::evaluate_parallel(&p, &db, 2),
                "{strategy}"
            );
        }
    }

    #[test]
    fn cancelled_token_aborts_tree_planning() {
        let mut i = Interner::new();
        let root = parse_atoms(&mut i, "a(?x,?y), a(?y,?z), a(?z,?w)").unwrap();
        let p = WdptBuilder::new(root).build(vec![i.var("x")]).unwrap();
        let db = parse_database(&mut i, "a(1,2) a(2,3)").unwrap();
        let stats = StatsCatalog::build(&db);
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(plan_wdpt(&p, &stats, Strategy::Dp, &token), Err(Cancelled));
    }
}
