//! Profiled WDPT evaluation: the `EXPLAIN ANALYZE` entry points.
//!
//! [`evaluate_profiled`] / [`evaluate_parallel_profiled`] run the same
//! evaluators as [`crate::semantics`] but bracket them with a
//! [`wdpt_obs::ProfileRecorder`] (enabling span tracing for the duration)
//! and collect exact per-tree-node homomorphism tallies via a query-local
//! [`NodeTally`](crate::semantics). Because the tally is query-local — not
//! a process-wide counter — the per-node numbers are deterministic: the
//! parallel profile's node data equals the sequential one's exactly, which
//! the observability-parity test relies on.

use crate::semantics::{
    maximal_homomorphisms_parallel_tallied, maximal_homomorphisms_tallied,
    try_maximal_homomorphisms_parallel_tallied, NodeTally,
};
use crate::tree::Wdpt;
use std::collections::BTreeSet;
use wdpt_model::{mapping::maximal_mappings, CancelToken, Cancelled, Database, Mapping};
use wdpt_obs::{NodeEntry, ProfileRecorder, QueryProfile};

/// Builds the per-node profile entries from a finished tally: preorder ids,
/// parent/depth for indentation, a label summarizing the node's pattern,
/// and the homomorphism count.
fn node_entries(p: &Wdpt, tally: &NodeTally) -> Vec<NodeEntry> {
    let counts = tally.hom_counts();
    (0..p.node_count())
        .map(|t| NodeEntry {
            id: t,
            parent: p.parent(t),
            depth: p.depth(t),
            label: format!(
                "{} atom(s), {} var(s)",
                p.atoms(t).len(),
                p.node_vars(t).len()
            ),
            metrics: vec![("homomorphisms", counts[t])],
        })
        .collect()
}

fn project_free(p: &Wdpt, homs: Vec<Mapping>) -> Vec<Mapping> {
    let free = p.free_set();
    let set: BTreeSet<Mapping> = homs.into_iter().map(|h| h.restrict(&free)).collect();
    set.into_iter().collect()
}

/// [`crate::evaluate`] plus a [`QueryProfile`] of the run.
pub fn evaluate_profiled(p: &Wdpt, db: &Database, label: &str) -> (Vec<Mapping>, QueryProfile) {
    let mut rec = ProfileRecorder::start(label);
    let tally = NodeTally::new(p.node_count());
    let answers = project_free(p, maximal_homomorphisms_tallied(p, db, Some(&tally)));
    rec.set_nodes(node_entries(p, &tally));
    let profile = rec.finish(answers.len() as u64);
    (answers, profile)
}

/// [`crate::evaluate_parallel`] plus a [`QueryProfile`] of the run. The
/// profile's per-node homomorphism counts equal the sequential profile's
/// exactly; its span and counter sections additionally show the fan-out
/// (`wdpt.parallel.worker` spans, `wdpt.parallel_tasks` counter).
pub fn evaluate_parallel_profiled(
    p: &Wdpt,
    db: &Database,
    threads: usize,
    label: &str,
) -> (Vec<Mapping>, QueryProfile) {
    let mut rec = ProfileRecorder::start(label);
    let tally = NodeTally::new(p.node_count());
    let answers = project_free(
        p,
        maximal_homomorphisms_parallel_tallied(p, db, threads, Some(&tally)),
    );
    rec.set_nodes(node_entries(p, &tally));
    let profile = rec.finish(answers.len() as u64);
    (answers, profile)
}

/// [`evaluate_parallel_profiled`] under a cancel token. On cancellation the
/// partially-recorded profile is discarded (the recorder still runs to
/// completion so the global tracing state is restored).
pub fn try_evaluate_parallel_profiled(
    p: &Wdpt,
    db: &Database,
    threads: usize,
    token: &CancelToken,
    label: &str,
) -> Result<(Vec<Mapping>, QueryProfile), Cancelled> {
    let mut rec = ProfileRecorder::start(label);
    let tally = NodeTally::new(p.node_count());
    match try_maximal_homomorphisms_parallel_tallied(p, db, threads, Some(&tally), None, token) {
        Ok(homs) => {
            let answers = project_free(p, homs);
            rec.set_nodes(node_entries(p, &tally));
            let profile = rec.finish(answers.len() as u64);
            Ok((answers, profile))
        }
        Err(Cancelled) => {
            rec.finish(0);
            Err(Cancelled)
        }
    }
}

/// [`try_evaluate_parallel_profiled`], except the profile *survives*
/// cancellation: whatever phases, counters, and per-node tallies accumulated
/// up to the deadline come back alongside the `Err`. This is what a serving
/// layer's slow-query log needs — the queries most worth explaining are
/// exactly the ones that blew their deadline, and a discarded profile would
/// leave their EXPLAIN empty.
pub fn try_evaluate_parallel_captured(
    p: &Wdpt,
    db: &Database,
    threads: usize,
    token: &CancelToken,
    label: &str,
) -> (Result<Vec<Mapping>, Cancelled>, QueryProfile) {
    try_evaluate_parallel_captured_planned(p, db, threads, token, label, None)
}

/// [`try_evaluate_parallel_captured`] executing an optional cost-based
/// [`ExecPlan`]: nodes with a planned atom order run it statically; a
/// `None` plan (or a plan built for a different tree shape) falls back to
/// the dynamic most-constrained heuristic per node. Answers are identical
/// either way — a plan only changes the order work is discovered in.
pub fn try_evaluate_parallel_captured_planned(
    p: &Wdpt,
    db: &Database,
    threads: usize,
    token: &CancelToken,
    label: &str,
    plan: Option<&wdpt_plan::ExecPlan>,
) -> (Result<Vec<Mapping>, Cancelled>, QueryProfile) {
    let mut rec = ProfileRecorder::start(label);
    let tally = NodeTally::new(p.node_count());
    match try_maximal_homomorphisms_parallel_tallied(p, db, threads, Some(&tally), plan, token) {
        Ok(homs) => {
            let answers = project_free(p, homs);
            rec.set_nodes(node_entries(p, &tally));
            let profile = rec.finish(answers.len() as u64);
            (Ok(answers), profile)
        }
        Err(Cancelled) => {
            rec.set_nodes(node_entries(p, &tally));
            let profile = rec.finish(0);
            (Err(Cancelled), profile)
        }
    }
}

/// [`crate::evaluate_max`] plus a [`QueryProfile`] of the run.
pub fn evaluate_max_profiled(p: &Wdpt, db: &Database, label: &str) -> (Vec<Mapping>, QueryProfile) {
    let mut rec = ProfileRecorder::start(label);
    let tally = NodeTally::new(p.node_count());
    let answers = maximal_mappings(project_free(
        p,
        maximal_homomorphisms_tallied(p, db, Some(&tally)),
    ));
    rec.set_nodes(node_entries(p, &tally));
    let profile = rec.finish(answers.len() as u64);
    (answers, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{evaluate, evaluate_parallel};
    use crate::tree::WdptBuilder;
    use wdpt_model::parse::{parse_atoms, parse_database};
    use wdpt_model::Interner;

    fn fixture() -> (Interner, Wdpt, Database) {
        let mut i = Interner::new();
        let root = parse_atoms(&mut i, "a(?x)").unwrap();
        let mut b = WdptBuilder::new(root);
        let c1 = b.child(0, parse_atoms(&mut i, "b(?x,?y)").unwrap());
        b.child(0, parse_atoms(&mut i, "c(?x,?z)").unwrap());
        b.child(c1, parse_atoms(&mut i, "d(?y,?w)").unwrap());
        let free = ["x", "y", "z", "w"].iter().map(|n| i.var(n)).collect();
        let p = b.build(free).unwrap();
        let db = parse_database(
            &mut i,
            "a(1) a(2) a(3) b(1,10) b(2,20) b(2,21) c(2,30) c(3,31) d(20,40)",
        )
        .unwrap();
        (i, p, db)
    }

    #[test]
    fn profiled_answers_match_unprofiled() {
        let (_i, p, db) = fixture();
        let (answers, profile) = evaluate_profiled(&p, &db, "test seq");
        assert_eq!(answers, evaluate(&p, &db));
        assert_eq!(profile.answers, answers.len() as u64);
        assert_eq!(profile.nodes.len(), p.node_count());
        // The root saw its 3 local homomorphisms.
        assert_eq!(profile.nodes[0].metrics[0], ("homomorphisms", 3));
        // Spans fired: the sequential evaluator and the backtrack engine.
        assert!(profile.phase("wdpt.eval.sequential").is_some());
        assert!(profile.phase("cq.backtrack.extend_all").is_some());
    }

    #[test]
    fn parallel_profile_has_exact_node_parity_with_sequential() {
        let (_i, p, db) = fixture();
        let (seq_answers, seq_profile) = evaluate_profiled(&p, &db, "seq");
        for threads in [2, 4, 8] {
            let (par_answers, par_profile) = evaluate_parallel_profiled(&p, &db, threads, "par");
            assert_eq!(par_answers, seq_answers);
            assert_eq!(par_answers, evaluate_parallel(&p, &db, threads));
            // Observability parity: identical per-node homomorphism tallies,
            // merged across the scoped workers.
            assert_eq!(par_profile.nodes, seq_profile.nodes);
            // And the parallel run is visibly parallel.
            assert!(par_profile.counter("wdpt.parallel_tasks") >= 6);
            let worker = par_profile.phase("wdpt.parallel.worker").unwrap();
            assert!(worker.calls >= 2, "expected ≥2 worker spans");
        }
    }

    #[test]
    fn profile_serializes_and_renders() {
        let (_i, p, db) = fixture();
        let (_, profile) = evaluate_parallel_profiled(&p, &db, 4, "render");
        let text = profile.render();
        assert!(text.contains("wdpt.eval.parallel"));
        assert!(text.contains("homomorphisms="));
        let json = profile.to_json().to_string();
        let parsed = wdpt_obs::Json::parse(&json).expect("valid JSON");
        assert_eq!(
            parsed.get("nodes").unwrap().as_arr().unwrap().len(),
            p.node_count()
        );
    }

    #[test]
    fn max_profiled_matches_evaluate_max() {
        let (_i, p, db) = fixture();
        let (answers, profile) = evaluate_max_profiled(&p, &db, "max");
        assert_eq!(answers, crate::semantics::evaluate_max(&p, &db));
        assert_eq!(profile.answers, answers.len() as u64);
    }
}
