//! β-acyclicity and β-hypertreewidth (`HW'(k)`, Section 5 of the paper).
//!
//! `HW(k)` is not closed under taking subqueries — Example 5 of the paper
//! shows an acyclic CQ with a non-acyclic subquery. Section 5 therefore
//! restricts to `HW'(k)`: every subquery has hypertreewidth ≤ k
//! (β-hypertreewidth, after Fagin's β-acyclicity). We provide:
//!
//! * [`is_beta_acyclic`] — the polynomial nest-point-elimination test
//!   (`HW'(1)`).
//! * [`beta_hypertreewidth_at_most`] — exact bounded check by enumerating
//!   edge subsets; exponential in the number of atoms, which mirrors the
//!   paper's observation that no efficient recognition procedure is known
//!   for β-hypertreewidth ≤ k (the NP-oracle in Theorem 13).

use crate::hypergraph::Hypergraph;
use crate::hypertree::hypertree_width_at_most;
use std::collections::BTreeSet;

/// β-acyclicity via nest-point elimination: a vertex is a *nest point* if
/// the edges containing it are linearly ordered by inclusion; a hypergraph
/// is β-acyclic iff repeated nest-point removal empties it.
pub fn is_beta_acyclic(h: &Hypergraph) -> bool {
    let mut edges: Vec<BTreeSet<usize>> = h
        .edges()
        .iter()
        .map(|e| e.iter().copied().collect())
        .filter(|e: &BTreeSet<usize>| !e.is_empty())
        .collect();
    loop {
        let vertices: BTreeSet<usize> = edges.iter().flatten().copied().collect();
        if vertices.is_empty() {
            return true;
        }
        let nest = vertices.iter().copied().find(|&v| {
            let holders: Vec<&BTreeSet<usize>> = edges.iter().filter(|e| e.contains(&v)).collect();
            holders
                .iter()
                .all(|a| holders.iter().all(|b| a.is_subset(b) || b.is_subset(a)))
        });
        match nest {
            Some(v) => {
                for e in &mut edges {
                    e.remove(&v);
                }
                edges.retain(|e| !e.is_empty());
            }
            None => return false,
        }
    }
}

/// Maximum number of hyperedges for the exhaustive `HW'(k)` check.
pub const BETA_EDGE_LIMIT: usize = 20;

/// Decides β-hypertreewidth ≤ k: every edge-subset subhypergraph must have
/// (generalized) hypertreewidth ≤ k. For `k = 1` this delegates to the
/// polynomial [`is_beta_acyclic`]. For `k ≥ 2` it enumerates subsets, which
/// is exact but exponential — see module docs.
///
/// # Panics
/// Panics when `k ≥ 2` and the hypergraph has more than [`BETA_EDGE_LIMIT`]
/// edges.
pub fn beta_hypertreewidth_at_most(h: &Hypergraph, k: usize) -> bool {
    assert!(k >= 1, "width bound must be positive");
    if k == 1 {
        return is_beta_acyclic(h);
    }
    let m = h.num_edges();
    assert!(
        m <= BETA_EDGE_LIMIT,
        "β-hypertreewidth check limited to {BETA_EDGE_LIMIT} edges (got {m})"
    );
    for mask in 1u32..(1u32 << m) {
        let subset: Vec<usize> = (0..m).filter(|&i| mask & (1 << i) != 0).collect();
        let sub = h.edge_subgraph(&subset);
        if hypertree_width_at_most(&sub, k).is_none() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_is_beta_acyclic() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        assert!(is_beta_acyclic(&h));
    }

    #[test]
    fn triangle_is_not_beta_acyclic() {
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
        assert!(!is_beta_acyclic(&h));
    }

    #[test]
    fn alpha_but_not_beta() {
        // Triangle plus the covering edge is α-acyclic but NOT β-acyclic:
        // dropping the big edge leaves a cyclic subquery.
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![0, 1, 2]]);
        assert!(crate::gyo::is_alpha_acyclic(&h));
        assert!(!is_beta_acyclic(&h));
    }

    #[test]
    fn nested_edges_are_beta_acyclic() {
        let h = Hypergraph::new(3, vec![vec![0], vec![0, 1], vec![0, 1, 2]]);
        assert!(is_beta_acyclic(&h));
    }

    #[test]
    fn beta_width_of_triangle_plus_cover_is_two() {
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![0, 1, 2]]);
        assert!(!beta_hypertreewidth_at_most(&h, 1));
        assert!(beta_hypertreewidth_at_most(&h, 2));
    }

    #[test]
    fn beta_width_one_equals_beta_acyclic() {
        let acyclic = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
        assert!(beta_hypertreewidth_at_most(&acyclic, 1));
    }

    #[test]
    fn clique5_beta_width_three() {
        let mut es = Vec::new();
        for i in 0..5 {
            for j in i + 1..5 {
                es.push(vec![i, j]);
            }
        }
        let h = Hypergraph::new(5, es);
        assert!(!beta_hypertreewidth_at_most(&h, 2));
        assert!(beta_hypertreewidth_at_most(&h, 3));
    }

    #[test]
    fn empty_hypergraph_is_beta_acyclic() {
        let h = Hypergraph::new(0, Vec::<Vec<usize>>::new());
        assert!(is_beta_acyclic(&h));
    }
}
