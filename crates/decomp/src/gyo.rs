//! GYO ear-removal: α-acyclicity and join trees.
//!
//! A CQ is α-acyclic iff its hypergraph reduces to nothing under the
//! Graham–Yu–Özsoyoğlu rules: (1) delete a vertex that occurs in exactly one
//! hyperedge; (2) delete a hyperedge contained in another hyperedge. The
//! class `HW(1)` of the paper equals the α-acyclic CQs, and the join tree
//! recorded during the reduction is the skeleton Yannakakis' algorithm runs
//! on (Theorem 3 / [21]).

use crate::hypergraph::Hypergraph;
use std::collections::BTreeSet;

/// A join forest over the original hyperedges: `parent[i]` is the edge that
/// absorbed edge `i` during GYO reduction, or `None` for roots. For a
/// connected α-acyclic hypergraph this is a tree.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// Parent pointer per original hyperedge.
    pub parent: Vec<Option<usize>>,
}

impl JoinTree {
    /// Root-first topological order of the forest.
    pub fn topological_order(&self) -> Vec<usize> {
        let n = self.parent.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for (i, p) in self.parent.iter().enumerate() {
            match p {
                Some(q) => children[*q].push(i),
                None => roots.push(i),
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut stack = roots;
        while let Some(v) = stack.pop() {
            order.push(v);
            stack.extend(children[v].iter().copied());
        }
        order
    }
}

/// Runs GYO reduction. Returns the join tree if the hypergraph is α-acyclic,
/// `None` otherwise.
pub fn join_tree(h: &Hypergraph) -> Option<JoinTree> {
    let m = h.num_edges();
    let mut edges: Vec<BTreeSet<usize>> = h
        .edges()
        .iter()
        .map(|e| e.iter().copied().collect())
        .collect();
    let mut alive: Vec<bool> = vec![true; m];
    let mut parent: Vec<Option<usize>> = vec![None; m];
    let mut alive_count = m;
    loop {
        let mut changed = false;
        // Rule 1: drop vertices occurring in exactly one alive edge.
        let mut occurrence: std::collections::HashMap<usize, (usize, usize)> =
            std::collections::HashMap::new();
        for (i, e) in edges.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            for &v in e {
                occurrence
                    .entry(v)
                    .and_modify(|(cnt, _)| *cnt += 1)
                    .or_insert((1, i));
            }
        }
        for (&v, &(cnt, owner)) in &occurrence {
            if cnt == 1 {
                edges[owner].remove(&v);
                changed = true;
            }
        }
        // Rule 2: drop edges contained in another alive edge.
        for i in 0..m {
            if !alive[i] {
                continue;
            }
            let absorber = (0..m).find(|&j| j != i && alive[j] && edges[i].is_subset(&edges[j]));
            if let Some(j) = absorber {
                alive[i] = false;
                alive_count -= 1;
                parent[i] = Some(j);
                changed = true;
            } else if edges[i].is_empty() && alive_count > 1 {
                // Isolated empty edge with no absorber: it is its own
                // component's root; detach it.
                alive[i] = false;
                alive_count -= 1;
                changed = true;
            }
        }
        if alive_count <= 1 {
            return Some(JoinTree { parent });
        }
        if !changed {
            return None;
        }
    }
}

/// True iff the hypergraph is α-acyclic.
pub fn is_alpha_acyclic(h: &Hypergraph) -> bool {
    join_tree(h).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_is_acyclic() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        let jt = join_tree(&h).expect("acyclic");
        assert_eq!(jt.topological_order().len(), 3);
    }

    #[test]
    fn triangle_of_binary_edges_is_cyclic() {
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
        assert!(!is_alpha_acyclic(&h));
    }

    #[test]
    fn triangle_covered_by_ternary_edge_is_acyclic() {
        // α-acyclicity is not closed under subqueries: adding the big edge
        // makes the triangle acyclic (this is the classic example behind the
        // paper's Example 5 and the need for HW'(k)).
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![0, 1, 2]]);
        assert!(is_alpha_acyclic(&h));
    }

    #[test]
    fn example5_clique_plus_big_edge_is_acyclic() {
        // Example 5 of the paper: E(x_i, x_j) for all i<j plus T_n(x_1..x_n).
        let n = 5;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                edges.push(vec![i, j]);
            }
        }
        edges.push((0..n).collect());
        let h = Hypergraph::new(n, edges);
        assert!(is_alpha_acyclic(&h));
    }

    #[test]
    fn single_edge_is_acyclic() {
        let h = Hypergraph::new(3, vec![vec![0, 1, 2]]);
        assert!(is_alpha_acyclic(&h));
    }

    #[test]
    fn no_edges_is_acyclic() {
        let h = Hypergraph::new(0, Vec::<Vec<usize>>::new());
        assert!(is_alpha_acyclic(&h));
    }

    #[test]
    fn disconnected_acyclic_components() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![2, 3]]);
        let jt = join_tree(&h).expect("acyclic forest");
        assert_eq!(jt.parent.len(), 2);
    }

    #[test]
    fn cycle_of_length_four_is_cyclic() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]]);
        assert!(!is_alpha_acyclic(&h));
    }

    #[test]
    fn join_tree_parents_point_to_absorbers() {
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
        let jt = join_tree(&h).unwrap();
        // Exactly one root.
        assert_eq!(jt.parent.iter().filter(|p| p.is_none()).count(), 1);
    }
}
