//! Treewidth: exact computation, heuristics, and decomposition extraction.
//!
//! * Exact treewidth uses the `O(2ⁿ·poly)` dynamic program over vertex
//!   subsets of Bodlaender–Fomin–Koster–Kratsch–Thilikos ("On exact
//!   algorithms for treewidth"): `TW(S) = min_{v∈S} max(TW(S∖v), |Q(S∖v,v)|)`
//!   where `Q(S,v)` is the set of vertices outside `S∪{v}` reachable from `v`
//!   through `S`. The minimizing choices encode an elimination ordering from
//!   which a witness [`TreeDecomposition`] is built.
//! * The min-fill heuristic gives a fast upper bound (and decomposition).
//! * Degeneracy gives a fast lower bound.
//!
//! [`treewidth_at_most`] combines all three so the common cases (the `TW(k)`
//! membership tests of the paper, with small `k`) short-circuit cheaply.

use crate::hypergraph::Hypergraph;
use crate::treedecomp::TreeDecomposition;
use std::collections::BTreeSet;
use wdpt_model::{CancelToken, Cancelled};
use wdpt_obs::{counter, histogram, span};

/// Maximum vertex count supported by the exact subset DP.
pub const EXACT_TW_VERTEX_LIMIT: usize = 26;

fn primal_neighbor_masks(h: &Hypergraph) -> Vec<u64> {
    let adj = h.primal_adjacency();
    adj.iter()
        .map(|ns| ns.iter().fold(0u64, |m, &v| m | (1 << v)))
        .collect()
}

/// `|Q(S, v)|`: vertices outside `S ∪ {v}` reachable from `v` through `S`.
fn q_size(nbr: &[u64], n: usize, s: u64, v: usize) -> usize {
    // BFS from v where internal vertices must lie in S.
    let mut outside = nbr[v] & !s & !(1 << v);
    let mut frontier = nbr[v] & s;
    let mut visited = frontier | (1 << v);
    while frontier != 0 {
        let u = frontier.trailing_zeros() as usize;
        frontier &= frontier - 1;
        let new = nbr[u] & !visited;
        outside |= new & !s;
        let through = new & s;
        visited |= new;
        frontier |= through;
    }
    let _ = n;
    outside.count_ones() as usize
}

/// Exact treewidth together with a witness elimination ordering.
///
/// # Panics
/// Panics if the hypergraph has more than [`EXACT_TW_VERTEX_LIMIT`] vertices
/// occurring in edges — callers should consult [`treewidth_upper_bound`]
/// first for larger inputs.
pub fn treewidth_exact_with_order(h: &Hypergraph) -> (usize, Vec<usize>) {
    try_treewidth_exact_with_order(h, CancelToken::never()).expect("the never token cannot cancel")
}

/// [`treewidth_exact_with_order`] with cooperative cancellation. The subset
/// dynamic program visits `2ⁿ` states, so a resident service planning
/// untrusted queries under a deadline threads its token through here; the
/// token is polled once per DP state (a relaxed load, with the clock
/// consulted every ~1k states, like the backtracker's loop).
pub fn try_treewidth_exact_with_order(
    h: &Hypergraph,
    token: &CancelToken,
) -> Result<(usize, Vec<usize>), Cancelled> {
    let _span = span!("decomp.treewidth.exact");
    let n = h.num_vertices();
    assert!(
        n <= EXACT_TW_VERTEX_LIMIT,
        "exact treewidth DP limited to {EXACT_TW_VERTEX_LIMIT} vertices (got {n})"
    );
    if n == 0 {
        return Ok((0, Vec::new()));
    }
    let nbr = primal_neighbor_masks(h);
    let full: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
    // dp[s] = minimal width over orderings whose first |s| vertices are s.
    let mut dp = vec![u8::MAX; 1usize << n];
    let mut choice = vec![u8::MAX; 1usize << n];
    dp[0] = 0;
    let mut steps = 0u32;
    for s in 1..=(full as usize) {
        if token.should_stop(&mut steps) {
            counter!("decomp.tw_search_nodes").add(s as u64);
            return Err(Cancelled);
        }
        let s64 = s as u64;
        let mut best = u8::MAX;
        let mut best_v = u8::MAX;
        let mut iter = s64;
        while iter != 0 {
            let v = iter.trailing_zeros() as usize;
            iter &= iter - 1;
            let prev = s & !(1usize << v);
            let sub = dp[prev];
            if sub == u8::MAX {
                continue;
            }
            let q = q_size(&nbr, n, prev as u64, v) as u8;
            let w = sub.max(q);
            if w < best {
                best = w;
                best_v = v as u8;
            }
        }
        dp[s] = best;
        choice[s] = best_v;
    }
    // Every DP state is one search node of the exact algorithm.
    counter!("decomp.tw_search_nodes").add(full);
    // Recover the elimination ordering by backtracking.
    let mut order = vec![0usize; n];
    let mut s = full as usize;
    for i in (0..n).rev() {
        let v = choice[s] as usize;
        order[i] = v;
        s &= !(1usize << v);
    }
    Ok((dp[full as usize] as usize, order))
}

/// Exact treewidth (see [`treewidth_exact_with_order`]).
pub fn treewidth_exact(h: &Hypergraph) -> usize {
    treewidth_exact_with_order(h).0
}

/// Builds a tree decomposition from an elimination ordering by simulating
/// fill-in: the bag of `v` is `{v} ∪ N(v)` at elimination time; `v`'s bag is
/// attached to the bag of the next-eliminated neighbor.
pub fn decomposition_from_order(h: &Hypergraph, order: &[usize]) -> TreeDecomposition {
    let n = h.num_vertices();
    debug_assert_eq!(order.len(), n);
    let mut adj = h.primal_adjacency();
    let mut position = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        position[v] = i;
    }
    let mut bags: Vec<BTreeSet<usize>> = Vec::with_capacity(n);
    let mut tree_edges: Vec<(usize, usize)> = Vec::new();
    let mut bag_of_vertex = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        let neighbors: Vec<usize> = adj[v].iter().copied().collect();
        let mut bag: BTreeSet<usize> = neighbors.iter().copied().collect();
        bag.insert(v);
        let bag_idx = bags.len();
        bags.push(bag);
        bag_of_vertex[v] = bag_idx;
        // Attach to next-eliminated neighbor's bag (added later): record a
        // pending edge keyed by that neighbor.
        if let Some(&next) = neighbors.iter().min_by_key(|&&u| position[u]) {
            debug_assert!(position[next] > i);
            // We connect once the neighbor's bag exists; stash for later.
            tree_edges.push((bag_idx, usize::MAX - next)); // placeholder
        }
        // Fill-in: make neighbors a clique, then remove v.
        for (j, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[j + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        for &u in &neighbors {
            adj[u].remove(&v);
        }
        adj[v].clear();
    }
    // Resolve placeholder edges now that every bag exists.
    let tree_edges = tree_edges
        .into_iter()
        .map(|(a, ph)| (a, bag_of_vertex[usize::MAX - ph]))
        .collect::<Vec<_>>();
    // Components with no neighbors yield forests; connect roots arbitrarily
    // to bag 0 to form a single tree.
    let mut td = TreeDecomposition { bags, tree_edges };
    connect_forest(&mut td);
    td
}

/// Adds edges so the decomposition's node graph is one tree (valid because
/// joining two components through any pair of bags never breaks vertex
/// connectedness when the components share no vertices).
fn connect_forest(td: &mut TreeDecomposition) {
    if td.bags.is_empty() {
        return;
    }
    let adj = td.adjacency();
    let mut comp = vec![usize::MAX; td.bags.len()];
    let mut ncomp = 0;
    for start in 0..td.bags.len() {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            if comp[v] != usize::MAX {
                continue;
            }
            comp[v] = ncomp;
            stack.extend(adj[v].iter().copied().filter(|&w| comp[w] == usize::MAX));
        }
        ncomp += 1;
    }
    if ncomp > 1 {
        let mut rep = vec![usize::MAX; ncomp];
        for (i, &c) in comp.iter().enumerate() {
            if rep[c] == usize::MAX {
                rep[c] = i;
            }
        }
        for c in 1..ncomp {
            td.tree_edges.push((rep[0], rep[c]));
        }
    }
}

/// Min-fill heuristic: returns `(width, decomposition)`. Fast and never
/// underestimates the true treewidth.
pub fn treewidth_upper_bound(h: &Hypergraph) -> (usize, TreeDecomposition) {
    let _span = span!("decomp.treewidth.minfill");
    let n = h.num_vertices();
    let mut adj = h.primal_adjacency();
    let mut remaining: BTreeSet<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        // Pick the vertex whose elimination adds the fewest fill edges,
        // breaking ties by degree.
        let &v = remaining
            .iter()
            .min_by_key(|&&v| {
                let ns: Vec<usize> = adj[v].iter().copied().collect();
                let mut fill = 0usize;
                for (i, &a) in ns.iter().enumerate() {
                    for &b in &ns[i + 1..] {
                        if !adj[a].contains(&b) {
                            fill += 1;
                        }
                    }
                }
                (fill, ns.len())
            })
            .expect("non-empty");
        order.push(v);
        let ns: Vec<usize> = adj[v].iter().copied().collect();
        for (i, &a) in ns.iter().enumerate() {
            for &b in &ns[i + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        for &u in &ns {
            adj[u].remove(&v);
        }
        adj[v].clear();
        remaining.remove(&v);
    }
    let td = decomposition_from_order(h, &order);
    (td.width(), td)
}

/// Degeneracy of the primal graph — a lower bound on treewidth.
pub fn degeneracy_lower_bound(h: &Hypergraph) -> usize {
    let mut adj = h.primal_adjacency();
    let mut remaining: BTreeSet<usize> = (0..h.num_vertices()).collect();
    let mut degeneracy = 0;
    while !remaining.is_empty() {
        let &v = remaining
            .iter()
            .min_by_key(|&&v| adj[v].len())
            .expect("non-empty");
        degeneracy = degeneracy.max(adj[v].len());
        let ns: Vec<usize> = adj[v].iter().copied().collect();
        for u in ns {
            adj[u].remove(&v);
        }
        adj[v].clear();
        remaining.remove(&v);
    }
    degeneracy
}

/// Decides `treewidth(h) ≤ k`, returning a witness decomposition of width
/// ≤ k on success. Tries the min-fill upper bound and the degeneracy lower
/// bound before falling back to the exact DP.
pub fn treewidth_at_most(h: &Hypergraph, k: usize) -> Option<TreeDecomposition> {
    try_treewidth_at_most(h, k, CancelToken::never()).expect("the never token cannot cancel")
}

/// [`treewidth_at_most`] with cooperative cancellation of the exact-DP
/// fallback (the heuristic bounds are polynomial and run uninterrupted).
pub fn try_treewidth_at_most(
    h: &Hypergraph,
    k: usize,
    token: &CancelToken,
) -> Result<Option<TreeDecomposition>, Cancelled> {
    let _span = span!("decomp.treewidth.at_most");
    let (ub, td) = treewidth_upper_bound(h);
    if ub <= k {
        histogram!("decomp.tw_width").record(ub as u64);
        return Ok(Some(td));
    }
    if degeneracy_lower_bound(h) > k {
        return Ok(None);
    }
    let (tw, order) = try_treewidth_exact_with_order(h, token)?;
    Ok(if tw <= k {
        histogram!("decomp.tw_width").record(tw as u64);
        Some(decomposition_from_order(h, &order))
    } else {
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Hypergraph {
        Hypergraph::new(n, (0..n - 1).map(|i| vec![i, i + 1]).collect::<Vec<_>>())
    }

    fn cycle(n: usize) -> Hypergraph {
        let mut es: Vec<Vec<usize>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
        es.push(vec![n - 1, 0]);
        Hypergraph::new(n, es)
    }

    fn clique(n: usize) -> Hypergraph {
        let mut es = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                es.push(vec![i, j]);
            }
        }
        Hypergraph::new(n, es)
    }

    #[test]
    fn path_has_treewidth_one() {
        assert_eq!(treewidth_exact(&path(6)), 1);
    }

    #[test]
    fn cycle_has_treewidth_two() {
        // Example 4 of the paper: adding E(x1, xn) to a path raises the
        // treewidth to two.
        assert_eq!(treewidth_exact(&cycle(6)), 2);
    }

    #[test]
    fn clique_has_treewidth_n_minus_one() {
        // Example 4: the n-clique has treewidth n − 1.
        assert_eq!(treewidth_exact(&clique(5)), 4);
    }

    #[test]
    fn empty_graph_has_treewidth_zero() {
        let h = Hypergraph::new(4, Vec::<Vec<usize>>::new());
        assert_eq!(treewidth_exact(&h), 0);
    }

    #[test]
    fn single_hyperedge_width_is_size_minus_one() {
        let h = Hypergraph::new(4, vec![vec![0, 1, 2, 3]]);
        assert_eq!(treewidth_exact(&h), 3);
    }

    #[test]
    fn exact_order_builds_valid_decomposition() {
        for h in [path(5), cycle(5), clique(4)] {
            let (tw, order) = treewidth_exact_with_order(&h);
            let td = decomposition_from_order(&h, &order);
            assert!(td.is_valid_for(&h));
            assert_eq!(td.width(), tw);
        }
    }

    #[test]
    fn min_fill_upper_bound_is_valid_and_tight_on_easy_graphs() {
        for (h, expect) in [(path(8), 1), (cycle(8), 2)] {
            let (w, td) = treewidth_upper_bound(&h);
            assert!(td.is_valid_for(&h));
            assert_eq!(w, expect);
        }
    }

    #[test]
    fn degeneracy_bounds_from_below() {
        assert!(degeneracy_lower_bound(&clique(5)) == 4);
        assert!(degeneracy_lower_bound(&path(5)) <= 1);
    }

    #[test]
    fn at_most_accepts_and_rejects() {
        assert!(treewidth_at_most(&path(6), 1).is_some());
        assert!(treewidth_at_most(&cycle(6), 1).is_none());
        assert!(treewidth_at_most(&cycle(6), 2).is_some());
        assert!(treewidth_at_most(&clique(6), 4).is_none());
        let td = treewidth_at_most(&clique(6), 5).unwrap();
        assert!(td.is_valid_for(&clique(6)));
    }

    #[test]
    fn disconnected_graph_decomposes() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![2, 3]]);
        let td = treewidth_at_most(&h, 1).unwrap();
        assert!(td.is_valid_for(&h));
    }

    #[test]
    fn cancelled_token_aborts_the_exact_dp() {
        let t = CancelToken::new();
        t.cancel();
        assert_eq!(
            try_treewidth_exact_with_order(&cycle(8), &t),
            Err(Cancelled)
        );
        // The heuristic fast paths still answer without touching the DP.
        assert!(try_treewidth_at_most(&path(6), 1, &t).unwrap().is_some());
        assert!(try_treewidth_at_most(&clique(6), 4, &t).unwrap().is_none());
    }
}
