//! Tree decompositions `(S, ν)` and their validity conditions.

use crate::hypergraph::Hypergraph;
use std::collections::BTreeSet;

/// A tree decomposition of a hypergraph: a tree whose nodes carry *bags* of
/// vertices such that (1) every hyperedge is contained in some bag and
/// (2) for every vertex, the bags containing it form a connected subtree
/// (Section 3.1 of the paper).
#[derive(Debug, Clone)]
pub struct TreeDecomposition {
    /// `bags[i]` is the bag `ν(i)`.
    pub bags: Vec<BTreeSet<usize>>,
    /// Undirected tree edges between bag indices.
    pub tree_edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    /// A decomposition with a single bag (always valid when the bag covers
    /// all edges).
    pub fn single_bag(bag: BTreeSet<usize>) -> Self {
        TreeDecomposition {
            bags: vec![bag],
            tree_edges: Vec::new(),
        }
    }

    /// The width: `max |ν(s)| − 1`.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(BTreeSet::len)
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Neighbor lists of the decomposition tree.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.bags.len()];
        for &(a, b) in &self.tree_edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    /// Checks all tree-decomposition conditions for `h`:
    /// the node graph is a tree (connected, acyclic), every hyperedge is
    /// covered by a bag, and every vertex's bags are connected.
    pub fn is_valid_for(&self, h: &Hypergraph) -> bool {
        if self.bags.is_empty() {
            return h.num_edges() == 0;
        }
        // Tree check: n-1 edges and connected.
        if self.tree_edges.len() + 1 != self.bags.len() {
            return false;
        }
        let adj = self.adjacency();
        let mut seen = vec![false; self.bags.len()];
        let mut stack = vec![0usize];
        while let Some(v) = stack.pop() {
            if std::mem::replace(&mut seen[v], true) {
                continue;
            }
            stack.extend(adj[v].iter().copied().filter(|&w| !seen[w]));
        }
        if seen.iter().any(|&s| !s) {
            return false;
        }
        // Edge coverage.
        for e in h.edges() {
            let eset: BTreeSet<usize> = e.iter().copied().collect();
            if !self.bags.iter().any(|b| eset.is_subset(b)) {
                return false;
            }
        }
        // Vertex connectedness: for each vertex, bags containing it induce a
        // connected subtree.
        for v in 0..h.num_vertices() {
            let holders: Vec<usize> = (0..self.bags.len())
                .filter(|&i| self.bags[i].contains(&v))
                .collect();
            if holders.len() <= 1 {
                continue;
            }
            let hset: BTreeSet<usize> = holders.iter().copied().collect();
            let mut seen = BTreeSet::new();
            let mut stack = vec![holders[0]];
            while let Some(n) = stack.pop() {
                if !seen.insert(n) {
                    continue;
                }
                for &w in &adj[n] {
                    if hset.contains(&w) && !seen.contains(&w) {
                        stack.push(w);
                    }
                }
            }
            if seen.len() != holders.len() {
                return false;
            }
        }
        true
    }

    /// Returns the decomposition rooted at bag 0 as `(parent, order)` where
    /// `order` is a topological (root-first) ordering — used by Yannakakis
    /// passes.
    pub fn rooted(&self) -> (Vec<Option<usize>>, Vec<usize>) {
        let adj = self.adjacency();
        let mut parent = vec![None; self.bags.len()];
        let mut order = Vec::with_capacity(self.bags.len());
        let mut seen = vec![false; self.bags.len()];
        if self.bags.is_empty() {
            return (parent, order);
        }
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            order.push(v);
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    parent[w] = Some(v);
                    stack.push(w);
                }
            }
        }
        (parent, order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Hypergraph {
        Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]])
    }

    fn set(v: &[usize]) -> BTreeSet<usize> {
        v.iter().copied().collect()
    }

    #[test]
    fn valid_path_decomposition() {
        let td = TreeDecomposition {
            bags: vec![set(&[0, 1]), set(&[1, 2])],
            tree_edges: vec![(0, 1)],
        };
        assert!(td.is_valid_for(&path_graph()));
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn missing_edge_cover_is_invalid() {
        let td = TreeDecomposition {
            bags: vec![set(&[0, 1]), set(&[2])],
            tree_edges: vec![(0, 1)],
        };
        assert!(!td.is_valid_for(&path_graph()));
    }

    #[test]
    fn broken_connectedness_is_invalid() {
        // Vertex 1 appears in bags 0 and 2 but not in bag 1 between them.
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
        let td = TreeDecomposition {
            bags: vec![set(&[0, 1]), set(&[0, 2]), set(&[1, 2])],
            tree_edges: vec![(0, 1), (1, 2)],
        };
        assert!(!td.is_valid_for(&h));
    }

    #[test]
    fn disconnected_tree_is_invalid() {
        let td = TreeDecomposition {
            bags: vec![set(&[0, 1]), set(&[1, 2]), set(&[1])],
            tree_edges: vec![(0, 1)],
        };
        assert!(!td.is_valid_for(&path_graph()));
    }

    #[test]
    fn single_bag_is_valid() {
        let td = TreeDecomposition::single_bag(set(&[0, 1, 2]));
        assert!(td.is_valid_for(&path_graph()));
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn rooted_order_starts_at_root() {
        let td = TreeDecomposition {
            bags: vec![set(&[0, 1]), set(&[1, 2])],
            tree_edges: vec![(0, 1)],
        };
        let (parent, order) = td.rooted();
        assert_eq!(order[0], 0);
        assert_eq!(parent[1], Some(0));
        assert_eq!(parent[0], None);
    }
}
