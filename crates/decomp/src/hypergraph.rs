//! Hypergraphs with dense `usize` vertices.

use std::collections::BTreeSet;

/// A finite hypergraph `H = (V, E)` with `V = {0, …, n-1}` and hyperedges as
/// sorted, deduplicated vertex sets. The hypergraph of a CQ has one vertex
/// per variable and one hyperedge per atom (the atom's variable set), exactly
/// as in Section 3.1 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    num_vertices: usize,
    edges: Vec<Vec<usize>>,
}

impl Hypergraph {
    /// Builds a hypergraph on `num_vertices` vertices from edge vertex-lists.
    /// Edges are sorted and deduplicated internally; empty edges are kept
    /// (they arise from variable-free atoms and are harmless).
    ///
    /// # Panics
    /// Panics if an edge mentions a vertex `≥ num_vertices`.
    pub fn new(num_vertices: usize, edges: impl IntoIterator<Item = Vec<usize>>) -> Self {
        let edges: Vec<Vec<usize>> = edges
            .into_iter()
            .map(|mut e| {
                e.sort_unstable();
                e.dedup();
                assert!(
                    e.last().is_none_or(|&v| v < num_vertices),
                    "edge mentions vertex out of range"
                );
                e
            })
            .collect();
        Hypergraph {
            num_vertices,
            edges,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The hyperedges, each a sorted vertex list.
    pub fn edges(&self) -> &[Vec<usize>] {
        &self.edges
    }

    /// The edge at index `i`.
    pub fn edge(&self, i: usize) -> &[usize] {
        &self.edges[i]
    }

    /// Adjacency lists of the *primal graph* (a.k.a. Gaifman graph): two
    /// vertices are adjacent iff they co-occur in some hyperedge.
    pub fn primal_adjacency(&self) -> Vec<BTreeSet<usize>> {
        let mut adj = vec![BTreeSet::new(); self.num_vertices];
        for e in &self.edges {
            for (i, &u) in e.iter().enumerate() {
                for &v in &e[i + 1..] {
                    adj[u].insert(v);
                    adj[v].insert(u);
                }
            }
        }
        adj
    }

    /// The subhypergraph induced by a subset of the edges (vertex set is kept
    /// as-is; isolated vertices are allowed and do not affect widths).
    pub fn edge_subgraph(&self, edge_indices: &[usize]) -> Hypergraph {
        Hypergraph {
            num_vertices: self.num_vertices,
            edges: edge_indices
                .iter()
                .map(|&i| self.edges[i].clone())
                .collect(),
        }
    }

    /// Vertices that occur in at least one edge.
    pub fn covered_vertices(&self) -> BTreeSet<usize> {
        self.edges.iter().flatten().copied().collect()
    }

    /// Connected components of the set `vertices`, where connectivity is via
    /// the primal graph restricted to `vertices`.
    pub fn components_within(&self, vertices: &BTreeSet<usize>) -> Vec<BTreeSet<usize>> {
        let adj = self.primal_adjacency();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut comps = Vec::new();
        for &start in vertices {
            if seen.contains(&start) {
                continue;
            }
            let mut comp = BTreeSet::new();
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                if !comp.insert(v) {
                    continue;
                }
                seen.insert(v);
                for &w in &adj[v] {
                    if vertices.contains(&w) && !comp.contains(&w) {
                        stack.push(w);
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]])
    }

    #[test]
    fn primal_graph_of_triangle() {
        let adj = triangle().primal_adjacency();
        assert_eq!(adj[0].len(), 2);
        assert_eq!(adj[1].len(), 2);
        assert_eq!(adj[2].len(), 2);
    }

    #[test]
    fn edges_are_sorted_and_deduped() {
        let h = Hypergraph::new(3, vec![vec![2, 0, 2]]);
        assert_eq!(h.edge(0), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_vertex_panics() {
        Hypergraph::new(2, vec![vec![0, 5]]);
    }

    #[test]
    fn components_split_correctly() {
        // Two disjoint edges {0,1} and {2,3}.
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![2, 3]]);
        let all: BTreeSet<usize> = (0..4).collect();
        let comps = h.components_within(&all);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn components_respect_restriction() {
        // Path 0-1-2; removing vertex 1 disconnects 0 and 2.
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
        let sub: BTreeSet<usize> = [0, 2].into_iter().collect();
        let comps = h.components_within(&sub);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn edge_subgraph_selects_edges() {
        let h = triangle();
        let sub = h.edge_subgraph(&[0, 2]);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.edge(1), &[0, 2]);
    }

    #[test]
    fn covered_vertices_ignores_isolated() {
        let h = Hypergraph::new(5, vec![vec![0, 1]]);
        assert_eq!(h.covered_vertices().len(), 2);
    }
}
