//! # wdpt-decomp — hypergraphs and width measures
//!
//! The tractable CQ classes of the paper (Section 3.1) are defined through
//! decompositions of the query hypergraph:
//!
//! * `TW(k)` — CQs whose hypergraph has **treewidth** ≤ k
//!   (Chekuri–Rajaraman; Theorem 2).
//! * `HW(k)` — CQs whose hypergraph has **(generalized) hypertreewidth** ≤ k
//!   (Gottlob–Leone–Scarcello; Theorem 3). `HW(1)` is exactly the class of
//!   α-acyclic CQs.
//! * `HW'(k)` — the restriction of `HW(k)` closed under subqueries
//!   (β-hypertreewidth, Section 5); `HW'(1)` is β-acyclicity.
//!
//! This crate implements those width measures from scratch:
//!
//! * [`Hypergraph`] — vertices are dense `usize` ids, hyperedges are sorted
//!   vertex sets; callers (the CQ layer) map variables to vertices.
//! * [`TreeDecomposition`] — bags + tree, with a full validity checker.
//! * [`treewidth`] — exact treewidth via the Bodlaender et al. subset
//!   dynamic program, plus min-fill / min-degree heuristics and a degeneracy
//!   lower bound; decompositions are extracted from elimination orderings.
//! * [`gyo`] — the GYO ear-removal algorithm for α-acyclicity and join-tree
//!   construction (the substrate of Yannakakis evaluation).
//! * [`hypertree`] — exact width-`k` generalized hypertree decompositions by
//!   memoized component/separator search (the decomposition style of
//!   det-k-decomp / BalancedGo), returning bag + edge-cover pairs.
//! * [`beta`] — β-acyclicity by nest-point elimination and bounded
//!   β-hypertreewidth by subquery enumeration.

pub mod beta;
pub mod gyo;
pub mod hypergraph;
pub mod hypertree;
pub mod treedecomp;
pub mod treewidth;

pub use beta::{beta_hypertreewidth_at_most, is_beta_acyclic};
pub use gyo::{is_alpha_acyclic, join_tree, JoinTree};
pub use hypergraph::Hypergraph;
pub use hypertree::{hypertree_width_at_most, try_hypertree_width_at_most, HypertreeDecomposition};
pub use treedecomp::TreeDecomposition;
pub use treewidth::{
    treewidth_at_most, treewidth_exact, treewidth_upper_bound, try_treewidth_at_most,
    try_treewidth_exact_with_order, EXACT_TW_VERTEX_LIMIT,
};
