//! Generalized hypertree decompositions of bounded width.
//!
//! The paper (Section 3.1, "Remark") works with *generalized* hypertree
//! decompositions `(S, ν, κ)` — a tree decomposition `(S, ν)` plus an edge
//! cover `κ(s)` of every bag with `|κ(s)| ≤ k` — and calls their width
//! "hypertreewidth". Deciding width `≤ k` is done here by the memoized
//! component/separator search used by practical GHD solvers
//! (det-k-decomp / BalancedGo lineage): a decomposition node chooses a cover
//! `λ` of at most `k` hyperedges whose bag is `(⋃λ) ∩ (V(comp) ∪ conn)`,
//! splits the remaining component, and recurses. Width 1 short-circuits
//! through GYO (α-acyclicity).

use crate::gyo;
use crate::hypergraph::Hypergraph;
use crate::treedecomp::TreeDecomposition;
use std::collections::{BTreeSet, HashMap};
use wdpt_model::{CancelToken, Cancelled};
use wdpt_obs::{counter, histogram, span};

/// A generalized hypertree decomposition: a tree decomposition whose bags
/// each carry a cover of at most `k` hyperedges.
#[derive(Debug, Clone)]
pub struct HypertreeDecomposition {
    /// `(bag, covering edge indices)` per decomposition node.
    pub nodes: Vec<(BTreeSet<usize>, Vec<usize>)>,
    /// Undirected tree edges between node indices.
    pub tree_edges: Vec<(usize, usize)>,
}

impl HypertreeDecomposition {
    /// The width `max |κ(s)|`.
    pub fn width(&self) -> usize {
        self.nodes.iter().map(|(_, c)| c.len()).max().unwrap_or(0)
    }

    /// The underlying tree decomposition `(S, ν)`.
    pub fn tree_decomposition(&self) -> TreeDecomposition {
        TreeDecomposition {
            bags: self.nodes.iter().map(|(b, _)| b.clone()).collect(),
            tree_edges: self.tree_edges.clone(),
        }
    }

    /// Checks validity for `h`: the underlying tree decomposition conditions
    /// plus the cover condition `ν(s) ⊆ ⋃κ(s)`.
    pub fn is_valid_for(&self, h: &Hypergraph) -> bool {
        for (bag, cover) in &self.nodes {
            let union: BTreeSet<usize> = cover
                .iter()
                .flat_map(|&e| h.edge(e).iter().copied())
                .collect();
            if !bag.is_subset(&union) {
                return false;
            }
        }
        self.tree_decomposition().is_valid_for(h)
    }
}

type Memo = HashMap<(Vec<usize>, Vec<usize>), Option<Tree>>;

#[derive(Debug, Clone)]
struct Tree {
    bag: BTreeSet<usize>,
    cover: Vec<usize>,
    children: Vec<Tree>,
}

struct Search<'a> {
    h: &'a Hypergraph,
    k: usize,
    covers: Vec<Vec<usize>>, // candidate edge-index covers, |λ| ≤ k
    memo: Memo,
    token: &'a CancelToken,
    steps: u32,
}

impl<'a> Search<'a> {
    /// Connected components of `edges` where two edges touch iff they share
    /// a vertex outside `bag`.
    fn split(&self, edges: &[usize], bag: &BTreeSet<usize>) -> Vec<Vec<usize>> {
        let mut comps: Vec<Vec<usize>> = Vec::new();
        let mut assigned = vec![false; edges.len()];
        let vsets: Vec<BTreeSet<usize>> = edges
            .iter()
            .map(|&e| {
                self.h
                    .edge(e)
                    .iter()
                    .copied()
                    .filter(|v| !bag.contains(v))
                    .collect()
            })
            .collect();
        for i in 0..edges.len() {
            if assigned[i] || vsets[i].is_empty() {
                continue;
            }
            let mut comp = vec![i];
            assigned[i] = true;
            let mut frontier = vec![i];
            while let Some(a) = frontier.pop() {
                for b in 0..edges.len() {
                    if !assigned[b] && !vsets[b].is_empty() && !vsets[a].is_disjoint(&vsets[b]) {
                        assigned[b] = true;
                        comp.push(b);
                        frontier.push(b);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp.into_iter().map(|i| edges[i]).collect());
        }
        comps
    }

    fn solve(&mut self, comp: Vec<usize>, conn: Vec<usize>) -> Result<Option<Tree>, Cancelled> {
        if let Some(hit) = self.memo.get(&(comp.clone(), conn.clone())) {
            return Ok(hit.clone());
        }
        let token = self.token;
        if token.should_stop(&mut self.steps) {
            return Err(Cancelled);
        }
        counter!("decomp.hw_search_nodes").incr();
        let conn_set: BTreeSet<usize> = conn.iter().copied().collect();
        let comp_vertices: BTreeSet<usize> = comp
            .iter()
            .flat_map(|&e| self.h.edge(e).iter().copied())
            .collect();
        let scope: BTreeSet<usize> = comp_vertices.union(&conn_set).copied().collect();
        let mut result: Option<Tree> = None;
        'covers: for cover in self.covers.clone() {
            let union: BTreeSet<usize> = cover
                .iter()
                .flat_map(|&e| self.h.edge(e).iter().copied())
                .collect();
            if !conn_set.is_subset(&union) {
                continue;
            }
            let bag: BTreeSet<usize> = union.intersection(&scope).copied().collect();
            // Split the component's edges by connectivity outside the bag.
            let remaining: Vec<usize> = comp
                .iter()
                .copied()
                .filter(|&e| !self.h.edge(e).iter().all(|v| bag.contains(v)))
                .collect();
            let sub_comps = self.split(&remaining, &bag);
            // Progress requirement: every sub-component must be strictly
            // smaller than the current one (prevents infinite recursion and
            // is sound because a useless separator can be skipped).
            if sub_comps.iter().any(|c| c.len() >= comp.len()) {
                continue;
            }
            let mut children = Vec::new();
            for sub in sub_comps {
                let sub_vertices: BTreeSet<usize> = sub
                    .iter()
                    .flat_map(|&e| self.h.edge(e).iter().copied())
                    .collect();
                let child_conn: Vec<usize> = sub_vertices.intersection(&bag).copied().collect();
                match self.solve(sub, child_conn)? {
                    Some(t) => children.push(t),
                    None => continue 'covers,
                }
            }
            result = Some(Tree {
                bag,
                cover,
                children,
            });
            break;
        }
        self.memo.insert((comp, conn), result.clone());
        Ok(result)
    }
}

fn flatten(tree: &Tree, out: &mut HypertreeDecomposition) -> usize {
    let id = out.nodes.len();
    out.nodes.push((tree.bag.clone(), tree.cover.clone()));
    for child in &tree.children {
        let cid = flatten(child, out);
        out.tree_edges.push((id, cid));
    }
    id
}

/// Decides whether `h` has a generalized hypertree decomposition of width
/// ≤ `k` and returns a witness. `k = 1` short-circuits through GYO.
///
/// The search enumerates edge covers of size ≤ `k`; its cost grows as
/// `O(m^k)` candidate covers per component, matching the recognizability
/// caveat discussed in the paper's remark on hypertreewidth.
pub fn hypertree_width_at_most(h: &Hypergraph, k: usize) -> Option<HypertreeDecomposition> {
    try_hypertree_width_at_most(h, k, CancelToken::never()).expect("the never token cannot cancel")
}

/// [`hypertree_width_at_most`] with cooperative cancellation: the
/// component/separator search is polled once per search node (a relaxed
/// load, clock every ~1k nodes). The `k = 1` GYO fast path is polynomial
/// and runs uninterrupted.
pub fn try_hypertree_width_at_most(
    h: &Hypergraph,
    k: usize,
    token: &CancelToken,
) -> Result<Option<HypertreeDecomposition>, Cancelled> {
    let _span = span!("decomp.hypertree.at_most");
    assert!(k >= 1, "width bound must be positive");
    let m = h.num_edges();
    if m == 0 {
        return Ok(Some(HypertreeDecomposition {
            nodes: vec![(BTreeSet::new(), Vec::new())],
            tree_edges: Vec::new(),
        }));
    }
    // Fast path via GYO: α-acyclic ⇔ width 1.
    if let Some(jt) = gyo::join_tree(h) {
        let nodes: Vec<(BTreeSet<usize>, Vec<usize>)> = (0..m)
            .map(|i| (h.edge(i).iter().copied().collect(), vec![i]))
            .collect();
        let mut tree_edges: Vec<(usize, usize)> = Vec::new();
        let mut roots = Vec::new();
        for (i, p) in jt.parent.iter().enumerate() {
            match p {
                Some(q) => tree_edges.push((i, *q)),
                None => roots.push(i),
            }
        }
        // Join a forest into a tree (components are vertex-disjoint).
        for w in roots.windows(2) {
            tree_edges.push((w[0], w[1]));
        }
        histogram!("decomp.hw_width").record(1);
        return Ok(Some(HypertreeDecomposition { nodes, tree_edges }));
    }
    if k == 1 {
        return Ok(None);
    }
    // Candidate covers: all non-empty edge subsets of size ≤ k.
    let mut covers: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    fn gen(m: usize, k: usize, from: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if !cur.is_empty() {
            out.push(cur.clone());
        }
        if cur.len() == k {
            return;
        }
        for e in from..m {
            cur.push(e);
            gen(m, k, e + 1, cur, out);
            cur.pop();
        }
    }
    gen(m, k, 0, &mut current, &mut covers);
    // Prefer small covers so witnesses are tight.
    covers.sort_by_key(Vec::len);
    let mut search = Search {
        h,
        k,
        covers,
        memo: HashMap::new(),
        token,
        steps: 0,
    };
    let _ = search.k;
    let all: Vec<usize> = (0..m).collect();
    let tree = match search.solve(all, Vec::new())? {
        Some(t) => t,
        None => return Ok(None),
    };
    let mut out = HypertreeDecomposition {
        nodes: Vec::new(),
        tree_edges: Vec::new(),
    };
    flatten(&tree, &mut out);
    histogram!("decomp.hw_width").record(out.width() as u64);
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]])
    }

    fn cycle(n: usize) -> Hypergraph {
        let mut es: Vec<Vec<usize>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
        es.push(vec![n - 1, 0]);
        Hypergraph::new(n, es)
    }

    fn clique(n: usize) -> Hypergraph {
        let mut es = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                es.push(vec![i, j]);
            }
        }
        Hypergraph::new(n, es)
    }

    #[test]
    fn acyclic_has_width_one() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        let d = hypertree_width_at_most(&h, 1).expect("width 1");
        assert_eq!(d.width(), 1);
        assert!(d.is_valid_for(&h));
    }

    #[test]
    fn triangle_needs_width_two() {
        assert!(hypertree_width_at_most(&triangle(), 1).is_none());
        let d = hypertree_width_at_most(&triangle(), 2).expect("width 2");
        assert!(d.width() <= 2);
        assert!(d.is_valid_for(&triangle()));
    }

    #[test]
    fn cycle6_has_width_two() {
        let h = cycle(6);
        assert!(hypertree_width_at_most(&h, 1).is_none());
        let d = hypertree_width_at_most(&h, 2).expect("width 2");
        assert!(d.is_valid_for(&h));
    }

    #[test]
    fn clique4_width_two() {
        // hw(K_n) = ⌈n/2⌉ for binary-edge cliques.
        let h = clique(4);
        assert!(hypertree_width_at_most(&h, 1).is_none());
        let d = hypertree_width_at_most(&h, 2).expect("width 2");
        assert!(d.is_valid_for(&h));
    }

    #[test]
    fn clique5_needs_width_three() {
        let h = clique(5);
        assert!(hypertree_width_at_most(&h, 2).is_none());
        let d = hypertree_width_at_most(&h, 3).expect("width 3");
        assert!(d.is_valid_for(&h));
    }

    #[test]
    fn example5_family_is_width_one() {
        // Example 5: clique plus covering big edge is acyclic, so width 1.
        let n = 5;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                edges.push(vec![i, j]);
            }
        }
        edges.push((0..n).collect());
        let h = Hypergraph::new(n, edges);
        let d = hypertree_width_at_most(&h, 1).expect("acyclic");
        assert_eq!(d.width(), 1);
        assert!(d.is_valid_for(&h));
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new(0, Vec::<Vec<usize>>::new());
        assert!(hypertree_width_at_most(&h, 1).is_some());
    }

    #[test]
    fn witness_respects_k() {
        let d = hypertree_width_at_most(&clique(5), 4).expect("exists");
        assert!(d.width() <= 4);
    }

    #[test]
    fn cancelled_token_aborts_the_search() {
        let t = CancelToken::new();
        t.cancel();
        // The GYO fast path is polynomial and ignores the token…
        let acyclic = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
        assert!(try_hypertree_width_at_most(&acyclic, 1, &t)
            .unwrap()
            .is_some());
        // … but the exponential cover search stops at its first node.
        assert_eq!(
            try_hypertree_width_at_most(&clique(4), 2, &t).err(),
            Some(Cancelled)
        );
    }
}
