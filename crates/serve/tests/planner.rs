//! Cost-based planning under serve: explain exposure, stats staleness
//! across hot reload, and adaptive re-planning on sustained divergence.
//!
//! These tests read the global `wdpt-obs` metrics registry, so every test
//! takes a file-local mutex to serialize against its siblings; the file is
//! its own process, so other test binaries cannot interfere.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use wdpt_model::parse::parse_database;
use wdpt_model::{CancelToken, Database, Interner};
use wdpt_obs::{metrics_snapshot, Json};
use wdpt_plan::Strategy;
use wdpt_serve::{cache::explain_json, maybe_replan, ServeConfig, ServeState};

static LOCK: Mutex<()> = Mutex::new(());

/// Two-atom join whose cheap side depends on the data: atom 0 constrains
/// the predicate column with a constant, atom 1 the object column.
const FLIP_QUERY: &str = "SELECT ?x ?y ?q WHERE { ((?x, p0, ?y) AND (?x, ?q, o0)) }";

/// A triple catalog with `preds` distinct predicates and `objects`
/// distinct objects over `rows` subjects — the knob that decides which
/// `FLIP_QUERY` atom is selective. `p0` and `o0` always exist.
fn catalog(i: &mut Interner, rows: usize, preds: usize, objects: usize) -> Database {
    let mut spec = String::new();
    for r in 0..rows {
        spec.push_str(&format!("triple(s{r},p{},o{}) ", r % preds, r % objects));
    }
    parse_database(i, &spec).expect("catalog parses")
}

fn state_with(db: Database, i: Interner, cfg: ServeConfig) -> Arc<ServeState> {
    let mut dbs: BTreeMap<String, Database> = BTreeMap::new();
    dbs.insert("main".to_string(), db);
    ServeState::new(cfg, i, dbs, "main")
}

fn node0_order(state: &ServeState, query: &str) -> (Vec<usize>, &'static str) {
    let (plan, status) = state.plan_for(query).unwrap();
    let exec = plan.exec_plan();
    assert_eq!(exec.nodes.len(), 1, "FLIP_QUERY is a single AND node");
    (exec.nodes[0].order.clone(), status)
}

/// The `explain` object must carry the chosen plan: strategy name,
/// per-node atom order, and estimated vs last-observed cost.
#[test]
fn explain_attaches_the_chosen_plan() {
    let _guard = LOCK.lock().unwrap();
    let mut i = Interner::new();
    let db = catalog(&mut i, 200, 20, 2);
    let state = state_with(db, i, ServeConfig::default());
    let (plan, status) = state.plan_for(FLIP_QUERY).unwrap();

    let explain = explain_json(&plan, status);
    let plan_obj = explain.get("plan").expect("explain carries the plan");
    assert_eq!(
        plan_obj.get("strategy").and_then(Json::as_str),
        Some("auto"),
        "default config plans with auto"
    );
    let nodes = plan_obj
        .get("nodes")
        .and_then(Json::as_arr)
        .expect("plan lists per-node orders");
    assert_eq!(nodes.len(), 1);
    let order = nodes[0].get("order").and_then(Json::as_arr).unwrap();
    assert_eq!(order.len(), 2, "both atoms appear in the order");
    assert!(nodes[0].get("chosen").and_then(Json::as_str).is_some());
    assert!(plan_obj.get("est_nodes").and_then(Json::as_num).is_some());
    assert!(plan_obj
        .get("actual_nodes_last")
        .and_then(Json::as_num)
        .is_some());
}

/// Regression for stats staleness on hot reload: the statistics catalog
/// must swap atomically with the `Arc<Database>`, so a cached plan's next
/// hit re-plans against the *new* data shape. Here the reload flips the
/// skew — many predicates/few objects becomes few predicates/many objects
/// — and the cached entry's join order must flip with it.
#[test]
fn skew_flipping_reload_replans_the_cached_entry() {
    let _guard = LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("wdpt_planner_flip_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut i = Interner::new();
    let db = catalog(&mut i, 200, 20, 2);
    // The flipped catalog, saved as the snapshot the reload will serve.
    let snapshot = dir.join("flipped.snap");
    {
        let mut si = Interner::new();
        let flipped = catalog(&mut si, 200, 2, 20);
        wdpt_store::save_snapshot(&snapshot, &si, &flipped).unwrap();
    }
    let state = state_with(db, i, ServeConfig::default());

    // Before: predicates are selective (20 distinct vs 2 objects), so the
    // constant-predicate atom 0 leads.
    let (before, status) = node0_order(&state, FLIP_QUERY);
    assert_eq!(status, "miss");
    assert_eq!(
        before[0], 0,
        "constant-predicate atom must lead: {before:?}"
    );

    let no_deltas: &[&std::path::Path] = &[];
    state.reload("main", &snapshot, no_deltas).unwrap();

    // After: same cached entry (a hit), but the epoch check must rebuild
    // its exec plan against the flipped catalog — objects are now the
    // selective column, so the constant-object atom 1 leads.
    let metrics_before = metrics_snapshot();
    let (after, status) = node0_order(&state, FLIP_QUERY);
    let delta = metrics_snapshot().since(&metrics_before);
    assert_eq!(status, "hit", "the reload must not evict the plan cache");
    assert_eq!(after[0], 1, "constant-object atom must lead: {after:?}");
    assert_ne!(before, after);
    assert!(
        delta.counter("serve.plan.stats_refresh") >= 1,
        "the hit must refresh the stale exec plan"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Sustained estimate/observation divergence must rotate the entry to the
/// next strategy and count a re-plan; a single outlier must not.
#[test]
fn sustained_divergence_triggers_a_replan() {
    let _guard = LOCK.lock().unwrap();
    let mut i = Interner::new();
    let db = catalog(&mut i, 200, 20, 2);
    let state = state_with(db, i, ServeConfig::default());
    let (plan, _) = state.plan_for(FLIP_QUERY).unwrap();
    let (_, stats) = state.db_with_stats("main").unwrap();
    let token = CancelToken::new();
    let est = plan.exec_plan().est_nodes();
    let divergent = (est * 100.0) as u64 + 100;

    let metrics_before = metrics_snapshot();
    // One outlier: streak resets path must not fire a re-plan.
    plan.stats.record_execution(10, Some(divergent));
    assert!(!maybe_replan(&plan, &stats, 4, 3, &token).unwrap());
    plan.stats.record_execution(10, Some(0));
    assert!(!maybe_replan(&plan, &stats, 4, 3, &token).unwrap());

    // Three consecutive divergent runs: the third fires.
    for _ in 0..2 {
        plan.stats.record_execution(10, Some(divergent));
        assert!(!maybe_replan(&plan, &stats, 4, 3, &token).unwrap());
    }
    plan.stats.record_execution(10, Some(divergent));
    assert!(maybe_replan(&plan, &stats, 4, 3, &token).unwrap());
    let delta = metrics_snapshot().since(&metrics_before);
    assert_eq!(delta.counter("serve.plan.replans"), 1);

    // The rotation left a concrete strategy installed: auto rotates to dp.
    let after = plan.exec_plan();
    assert_eq!(after.strategy, Strategy::Dp);

    // replan_runs = 0 disables the machinery outright.
    plan.stats.record_execution(10, Some(divergent));
    assert!(!maybe_replan(&plan, &stats, 4, 0, &token).unwrap());
}
