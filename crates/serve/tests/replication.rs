//! Replication tests: a primary and follower wired together in-process
//! over real sockets, plus the deterministic reload-vs-shutdown drain
//! race that the two-stage reload (`load_stage` / `install_stage`) makes
//! testable.

use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use wdpt_model::{Database, Interner};
use wdpt_obs::{read_json_line, write_json_line, Json};
use wdpt_serve::{serve, FollowerApply, ServeConfig, ServeState};

const Q: &str = "SELECT ?x ?y WHERE { (?x, rec_by, ?y) }";

struct Server {
    addr: SocketAddr,
    state: Arc<ServeState>,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(state: Arc<ServeState>) -> Server {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let st = Arc::clone(&state);
    let handle = std::thread::spawn(move || serve(listener, st));
    Server {
        addr,
        state,
        handle,
    }
}

impl Server {
    fn shutdown_and_join(self) {
        self.state.begin_shutdown();
        self.handle
            .join()
            .expect("server thread must not panic")
            .expect("serve() must drain cleanly");
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: BufWriter::new(stream),
        }
    }

    fn round_trip(&mut self, req: &Json) -> (Json, Vec<Json>) {
        write_json_line(&mut self.writer, req).unwrap();
        self.writer.flush().unwrap();
        let mut rows = Vec::new();
        loop {
            let line = read_json_line(&mut self.reader)
                .expect("read response")
                .expect("connection closed mid-response");
            if line.get("kind").and_then(Json::as_str) == Some("row") {
                rows.push(line);
                continue;
            }
            return (line, rows);
        }
    }
}

fn status_of(line: &Json) -> &str {
    line.get("status").and_then(Json::as_str).unwrap_or("?")
}

fn subjects(rows: &[Json]) -> Vec<String> {
    let mut v: Vec<String> = rows
        .iter()
        .filter_map(|r| r.get("bindings")?.get("x")?.as_str().map(str::to_string))
        .collect();
    v.sort();
    v
}

/// Builds a three-link chain on disk: `base.snap` (one `rec_by` tuple)
/// plus two deltas each adding one more. Returns the dir and the delta
/// paths in chain order.
fn build_chain(tag: &str) -> (PathBuf, PathBuf, Vec<PathBuf>) {
    let dir = std::env::temp_dir().join(format!(
        "wdpt-repl-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let mut i = Interner::new();
    let mut ts = wdpt_sparql::TripleStore::new();
    ts.insert_str(&mut i, "swim", "rec_by", "caribou");
    let base_path = dir.join("base.snap");
    wdpt_store::save_snapshot(&base_path, &i, ts.database()).unwrap();

    let mut tip_bytes = std::fs::read(&base_path).unwrap();
    let mut deltas = Vec::new();
    for (n, subject) in ["our_love", "suddenly"].iter().enumerate() {
        let old_i = i.clone();
        let old_db = ts.database().clone();
        ts.insert_str(&mut i, subject, "rec_by", "caribou");
        let bytes = wdpt_store::delta_to_vec(
            wdpt_store::content_hash(&tip_bytes),
            &old_i,
            &old_db,
            &i,
            ts.database(),
        )
        .unwrap();
        let path = dir.join(format!("d{}.delta", n + 1));
        wdpt_store::save_delta(&path, &bytes).unwrap();
        tip_bytes = bytes;
        deltas.push(path);
    }
    (dir, base_path, deltas)
}

/// A primary ServeState whose default db is the chain base and whose
/// replication log lives in `log_dir`.
fn primary_state(base_path: &Path, log_dir: &Path) -> Arc<ServeState> {
    let base_bytes = std::fs::read(base_path).unwrap();
    let (interner, db) = wdpt_store::decode_snapshot(&base_bytes).unwrap();
    let mut dbs: BTreeMap<String, Database> = BTreeMap::new();
    dbs.insert("music".to_string(), db);
    let state = ServeState::new(ServeConfig::default(), interner, dbs, "music");
    let log = wdpt_store::ReplLog::open_or_init(log_dir, &base_bytes).unwrap();
    state.set_primary(wdpt_repl::Primary::new(log));
    state
}

/// A follower ServeState that starts empty and is populated entirely by
/// the replication stream.
fn follower_state() -> Arc<ServeState> {
    let mut dbs: BTreeMap<String, Database> = BTreeMap::new();
    dbs.insert("music".to_string(), Database::default());
    ServeState::new(ServeConfig::default(), Interner::new(), dbs, "music")
}

fn spawn_follower(
    state: &Arc<ServeState>,
    primary_addr: SocketAddr,
    stop: &Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let state = Arc::clone(state);
    let stop = Arc::clone(stop);
    std::thread::spawn(move || {
        let apply = FollowerApply::new(Arc::clone(&state), "music".to_string());
        let mut cfg = wdpt_repl::FollowerConfig::new(primary_addr.to_string());
        cfg.read_timeout = Duration::from_millis(100);
        cfg.backoff_base = Duration::from_millis(50);
        wdpt_repl::run_follower(&cfg, &apply, &stop);
    })
}

/// Polls until the state's chain head equals `head` (or panics after the
/// deadline) — follower applies are asynchronous.
fn await_head(state: &ServeState, head: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    assert!(
        state.repl_head().wait_contains(head, deadline),
        "{what}: follower never reached head {}",
        wdpt_store::head_hex(head)
    );
}

/// Wire-level check of the subscription stream: a raw client (no
/// follower machinery) sees the bootstrap handshake and then each
/// published delta as a broadcast frame.
#[test]
fn raw_subscription_receives_handshake_and_broadcast() {
    let (dir, base_path, deltas) = build_chain("probe");
    let log_dir = dir.join("repl");
    let primary = start(primary_state(&base_path, &log_dir));
    let base_head = primary.state.current_head().unwrap();

    let mut sub = Client::connect(primary.addr);
    write_json_line(
        &mut sub.writer,
        &Json::obj([("op", Json::str("subscribe"))]),
    )
    .unwrap();
    sub.writer.flush().unwrap();
    // Fresh subscriber (no base): bootstrap mode, snapshot frame first.
    let first = read_json_line(&mut sub.reader).unwrap().unwrap();
    assert_eq!(first.get("kind").and_then(Json::as_str), Some("subscribed"));
    assert_eq!(first.get("mode").and_then(Json::as_str), Some("bootstrap"));
    assert_eq!(
        first.get("head").and_then(Json::as_str),
        Some(wdpt_store::head_hex(base_head).as_str())
    );
    let snap = read_json_line(&mut sub.reader).unwrap().unwrap();
    assert_eq!(snap.get("status").and_then(Json::as_str), Some("snapshot"));

    let mut pc = Client::connect(primary.addr);
    let (rl, _) = pc.round_trip(&Json::obj([
        ("op", Json::str("reload")),
        ("id", Json::str("r1")),
        ("snapshot", Json::str(base_path.to_str().unwrap())),
        (
            "deltas",
            Json::Arr(vec![Json::str(deltas[0].to_str().unwrap())]),
        ),
    ]));
    assert_eq!(status_of(&rl), "ok", "got {rl}");
    let delta = read_json_line(&mut sub.reader).unwrap().unwrap();
    assert_eq!(delta.get("status").and_then(Json::as_str), Some("delta"));
    assert_eq!(
        delta.get("base").and_then(Json::as_str),
        Some(wdpt_store::head_hex(base_head).as_str()),
        "broadcast delta must chain onto the base"
    );

    primary.shutdown_and_join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn follower_bootstraps_streams_and_serves_read_your_writes() {
    let (dir, base_path, deltas) = build_chain("stream");
    let log_dir = dir.join("repl");

    let primary = start(primary_state(&base_path, &log_dir));
    let follower = start(follower_state());
    let stop = Arc::new(AtomicBool::new(false));
    let follower_thread = spawn_follower(&follower.state, primary.addr, &stop);

    // Bootstrap: the follower starts empty and must reach the primary's
    // base head without any reload being issued.
    let base_head = primary.state.current_head().expect("primary has a head");
    await_head(&follower.state, base_head, "bootstrap");
    let mut fc = Client::connect(follower.addr);
    let (ok, rows) = fc.round_trip(&Json::obj([
        ("op", Json::str("query")),
        ("id", Json::str("boot")),
        ("query", Json::str(Q)),
    ]));
    assert_eq!(status_of(&ok), "ok", "got {ok}");
    assert_eq!(subjects(&rows), ["swim"]);

    // Publish the first delta on the primary (a reload under live
    // traffic); its ack carries the new chain head.
    let mut pc = Client::connect(primary.addr);
    let (rl, _) = pc.round_trip(&Json::obj([
        ("op", Json::str("reload")),
        ("id", Json::str("r1")),
        ("snapshot", Json::str(base_path.to_str().unwrap())),
        (
            "deltas",
            Json::Arr(vec![Json::str(deltas[0].to_str().unwrap())]),
        ),
    ]));
    assert_eq!(status_of(&rl), "ok", "got {rl}");
    let head1 = rl
        .get("head")
        .and_then(Json::as_str)
        .and_then(wdpt_store::parse_head_hex)
        .expect("reload ack must carry the chain head");

    // Read-your-writes: quote the acked head on the *follower*; the
    // answer must include the delta's tuple once admitted.
    let (ok, rows) = fc.round_trip(&Json::obj([
        ("op", Json::str("query")),
        ("id", Json::str("ryw")),
        ("query", Json::str(Q)),
        ("min_head", Json::str(wdpt_store::head_hex(head1))),
        ("deadline_ms", Json::int(8_000)),
    ]));
    assert_eq!(status_of(&ok), "ok", "got {ok}");
    assert_eq!(subjects(&rows), ["our_love", "swim"]);
    assert_eq!(
        ok.get("head").and_then(Json::as_str),
        Some(wdpt_store::head_hex(head1).as_str()),
        "ok line must be stamped with the serving head"
    );

    // A head nobody will ever publish: typed stale_replica, within the
    // deadline, connection intact.
    let (stale, rows) = fc.round_trip(&Json::obj([
        ("op", Json::str("query")),
        ("id", Json::str("ghost")),
        ("query", Json::str(Q)),
        ("min_head", Json::str("deadbeefdeadbeef")),
        ("deadline_ms", Json::int(200)),
    ]));
    assert_eq!(status_of(&stale), "error", "got {stale}");
    assert_eq!(
        stale.get("kind").and_then(Json::as_str),
        Some("stale_replica")
    );
    assert!(rows.is_empty());

    // Catch-up after restart: stop the follower loop, publish the second
    // delta while it is disconnected, then restart. `spawn_follower`
    // builds a fresh `FollowerApply` (pristine=None), so like a real
    // process restart this re-bootstraps from the primary's base and
    // replays the full log — including d1, which the follower's history
    // already knows but its freshly installed chain does not.
    stop.store(true, Ordering::SeqCst);
    follower_thread.join().unwrap();
    let (rl2, _) = pc.round_trip(&Json::obj([
        ("op", Json::str("reload")),
        ("id", Json::str("r2")),
        ("snapshot", Json::str(base_path.to_str().unwrap())),
        (
            "deltas",
            Json::Arr(
                deltas
                    .iter()
                    .map(|d| Json::str(d.to_str().unwrap()))
                    .collect(),
            ),
        ),
    ]));
    assert_eq!(status_of(&rl2), "ok", "got {rl2}");
    let head2 = rl2
        .get("head")
        .and_then(Json::as_str)
        .and_then(wdpt_store::parse_head_hex)
        .unwrap();
    stop.store(false, Ordering::SeqCst);
    let follower_thread = spawn_follower(&follower.state, primary.addr, &stop);
    await_head(&follower.state, head2, "suffix catch-up");
    let (ok, rows) = fc.round_trip(&Json::obj([
        ("op", Json::str("query")),
        ("id", Json::str("caught-up")),
        ("query", Json::str(Q)),
        ("min_head", Json::str(wdpt_store::head_hex(head2))),
    ]));
    assert_eq!(status_of(&ok), "ok", "got {ok}");
    assert_eq!(subjects(&rows), ["our_love", "suddenly", "swim"]);
    // The whole chain is in the follower's history: base, d1, d2.
    assert_eq!(follower.state.repl_head().chain_len(), 3);

    stop.store(true, Ordering::SeqCst);
    follower_thread.join().unwrap();
    follower.shutdown_and_join();
    primary.shutdown_and_join();
    std::fs::remove_dir_all(&dir).ok();
}

/// The primary's replication log survives a restart: reopening the same
/// log directory replays the recorded deltas, so a new primary process
/// resumes at the old chain head.
#[test]
fn primary_log_replays_after_restart() {
    let (dir, base_path, deltas) = build_chain("replay");
    let log_dir = dir.join("repl");

    let primary = start(primary_state(&base_path, &log_dir));
    let mut pc = Client::connect(primary.addr);
    let (rl, _) = pc.round_trip(&Json::obj([
        ("op", Json::str("reload")),
        ("id", Json::str("r1")),
        ("snapshot", Json::str(base_path.to_str().unwrap())),
        (
            "deltas",
            Json::Arr(
                deltas
                    .iter()
                    .map(|d| Json::str(d.to_str().unwrap()))
                    .collect(),
            ),
        ),
    ]));
    assert_eq!(status_of(&rl), "ok", "got {rl}");
    let head = rl
        .get("head")
        .and_then(Json::as_str)
        .and_then(wdpt_store::parse_head_hex)
        .unwrap();
    primary.shutdown_and_join();

    // "Restart": a fresh state over the same log dir. The log already
    // holds both deltas, so the new primary's head matches without any
    // reload being issued.
    let base_bytes = std::fs::read(&base_path).unwrap();
    let log = wdpt_store::ReplLog::open_or_init(&log_dir, &base_bytes).unwrap();
    assert_eq!(log.head(), head, "log must resume at the published head");
    assert_eq!(log.entries().len(), 2);

    std::fs::remove_dir_all(&dir).ok();
}

/// The reload/shutdown drain race, made deterministic by the two-stage
/// reload: thread A finishes `load_stage`, *then* thread B completes
/// `begin_shutdown`, then A attempts `install_stage`. The swap must be
/// refused with a typed error before touching the interner — never a
/// half-merged symbol table.
#[test]
fn reload_racing_shutdown_fails_typed_with_interner_intact() {
    let (dir, base_path, deltas) = build_chain("race");

    let state = follower_state();
    let symbols_before = state.interner_len();

    // Interleaving A: shutdown lands strictly between load and install.
    let loaded = state
        .load_stage(&base_path, &deltas)
        .expect("load_stage is lock-free and must succeed");
    let after_load = Arc::new(Barrier::new(2));
    let after_shutdown = Arc::new(Barrier::new(2));
    let shutter = {
        let state = Arc::clone(&state);
        let after_load = Arc::clone(&after_load);
        let after_shutdown = Arc::clone(&after_shutdown);
        std::thread::spawn(move || {
            after_load.wait();
            state.begin_shutdown();
            after_shutdown.wait();
        })
    };
    after_load.wait();
    after_shutdown.wait();
    let err = state
        .install_stage("music", loaded)
        .expect_err("a swap after shutdown began must be refused");
    assert!(
        err.contains("shutting down"),
        "error must be typed as a shutdown refusal, got {err:?}"
    );
    assert_eq!(
        state.interner_len(),
        symbols_before,
        "a refused swap must leave the interner untouched"
    );
    shutter.join().unwrap();

    // Interleaving B: the install completes first; shutdown then drains a
    // fully-swapped state. The merge is all-or-nothing either way.
    let state2 = follower_state();
    let before2 = state2.interner_len();
    let loaded2 = state2.load_stage(&base_path, &deltas).unwrap();
    let (tuples, symbols) = state2
        .install_stage("music", loaded2)
        .expect("install before shutdown must succeed");
    assert_eq!(tuples, 3);
    assert!(symbols > 0);
    assert!(state2.interner_len() > before2);
    state2.begin_shutdown();
    assert_eq!(state2.repl_head().chain_len(), 3);

    std::fs::remove_dir_all(&dir).ok();
}
