//! Plan-cache behaviour: hits skip decomposition work, α-renamed queries
//! share entries, capacity bounds hold.
//!
//! These tests read the global `wdpt-obs` metrics registry, so every test
//! takes a file-local mutex to serialize against its siblings; the file is
//! its own process, so other test binaries cannot interfere.

use std::collections::BTreeMap;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;
use wdpt_gen::music::MusicParams;
use wdpt_model::{CancelToken, Database, Interner};
use wdpt_obs::metrics_snapshot;
use wdpt_serve::{canonicalize, ServeConfig, ServeState};
use wdpt_sparql::parse_query;

static LOCK: Mutex<()> = Mutex::new(());

const BASE: &str = r#"SELECT ?x ?y ?z WHERE { (((?x, rec_by, ?y) AND (?x, publ, "after_2010")) OPT (?x, nme_rating, ?z)) OPT (?y, formed_in, ?w) }"#;
const RENAMED: &str = r#"SELECT ?a ?b ?c WHERE { (((?a, rec_by, ?b) AND (?a, publ, "after_2010")) OPT (?a, nme_rating, ?c)) OPT (?b, formed_in, ?d) }"#;
const OTHER: &str = "(?x, publ, ?era)";

fn music_state(cfg: ServeConfig) -> Arc<ServeState> {
    let mut i = Interner::new();
    let ts = wdpt_gen::music_triples(
        &mut i,
        MusicParams {
            bands: 10,
            records_per_band: 2,
            ..MusicParams::default()
        },
    );
    let mut dbs: BTreeMap<String, Database> = BTreeMap::new();
    dbs.insert("music".to_string(), ts.into_database());
    ServeState::new(cfg, i, dbs, "music")
}

#[test]
fn repeated_query_skips_decomposition_entirely() {
    let _guard = LOCK.lock().unwrap();
    let state = music_state(ServeConfig::default());

    // First request: a miss that runs core/treewidth/acyclicity searches.
    let before_first = metrics_snapshot();
    let (plan1, status1) = state.plan_for(BASE).unwrap();
    let after_first = metrics_snapshot().since(&before_first);
    assert_eq!(status1, "miss");
    assert!(
        after_first.counter("decomp.tw_search_nodes") > 0,
        "plan building must run the treewidth search"
    );

    // Second request: a hit that runs none of it.
    let before_second = metrics_snapshot();
    let (plan2, status2) = state.plan_for(BASE).unwrap();
    let delta = metrics_snapshot().since(&before_second);
    assert_eq!(status2, "hit");
    assert!(Arc::ptr_eq(&plan1, &plan2), "hit must return the same plan");
    assert_eq!(delta.counter("decomp.tw_search_nodes"), 0);
    assert_eq!(delta.counter("decomp.hw_search_nodes"), 0);
    assert_eq!(delta.counter("serve.plan_cache.hit"), 1);
    assert_eq!(delta.counter("serve.plan_cache.miss"), 0);
}

#[test]
fn alpha_renamed_query_hits_the_same_entry() {
    let _guard = LOCK.lock().unwrap();
    let state = music_state(ServeConfig::default());
    let (plan1, status1) = state.plan_for(BASE).unwrap();
    assert_eq!(status1, "miss");

    let before = metrics_snapshot();
    let (plan2, status2) = state.plan_for(RENAMED).unwrap();
    let delta = metrics_snapshot().since(&before);
    assert_eq!(status2, "hit", "renaming variables must not change the key");
    assert!(Arc::ptr_eq(&plan1, &plan2));
    assert_eq!(delta.counter("decomp.tw_search_nodes"), 0);
    assert_eq!(state.cache().len(), 1);
}

#[test]
fn canonical_keys_separate_structure_not_names() {
    let _guard = LOCK.lock().unwrap();
    let mut i = Interner::new();
    let base = parse_query(&mut i, BASE).unwrap();
    let renamed = parse_query(&mut i, RENAMED).unwrap();
    let other = parse_query(&mut i, OTHER).unwrap();

    let ck_base = canonicalize(&base, &mut i);
    let ck_renamed = canonicalize(&renamed, &mut i);
    let ck_other = canonicalize(&other, &mut i);
    assert_eq!(ck_base.key, ck_renamed.key);
    assert_ne!(ck_base.key, ck_other.key);

    // request_vars maps canonical slot k back to the spelling the client
    // used, in first-occurrence order.
    assert_eq!(ck_base.request_vars, ["x", "y", "z", "w"]);
    assert_eq!(ck_renamed.request_vars, ["a", "b", "c", "d"]);

    // Swapping a variable for a constant changes the structure, and a
    // constant spelled like a key token cannot collide with a variable.
    let with_const = parse_query(&mut i, "(?x, publ, V0)").unwrap();
    let ck_const = canonicalize(&with_const, &mut i);
    assert_ne!(ck_const.key, ck_other.key);
}

#[test]
fn capacity_bounds_the_cache_with_fifo_eviction() {
    let _guard = LOCK.lock().unwrap();
    let state = music_state(ServeConfig {
        cache_capacity: 1,
        ..ServeConfig::default()
    });
    assert_eq!(state.plan_for(BASE).unwrap().1, "miss");
    assert_eq!(state.plan_for(OTHER).unwrap().1, "miss"); // evicts BASE
    assert_eq!(state.cache().len(), 1);
    assert_eq!(state.plan_for(BASE).unwrap().1, "miss"); // gone, rebuilt
    assert_eq!(state.cache().len(), 1);
}

#[test]
fn disabled_cache_rebuilds_every_time() {
    let _guard = LOCK.lock().unwrap();
    let state = music_state(ServeConfig {
        plan_cache: false,
        ..ServeConfig::default()
    });
    let (plan1, status1) = state.plan_for(BASE).unwrap();
    let (plan2, status2) = state.plan_for(BASE).unwrap();
    assert_eq!((status1, status2), ("off", "off"));
    assert!(!Arc::ptr_eq(&plan1, &plan2));
    assert!(state.cache().is_empty());
}

/// A directed `n`-cycle over *distinct* predicates. The core search is
/// trivial (with distinct predicates every atom can only map to itself),
/// so planning cost is dominated by the exact-treewidth DP, which must
/// walk all `2ⁿ` vertex subsets — a single long-running, cancellable
/// search with no heuristic short-circuit.
fn cycle_query(n: usize) -> String {
    let mut p = "(?v0, e0, ?v1)".to_string();
    for k in 1..n {
        p = format!("({p} AND (?v{k}, e{k}, ?v{}))", (k + 1) % n);
    }
    format!("SELECT ?v0 WHERE {{ {p} }}")
}

#[test]
fn expired_deadline_cancels_planning_and_caches_nothing() {
    let _guard = LOCK.lock().unwrap();
    let state = music_state(ServeConfig::default());

    // 24 variables: the DP alone would visit 2²⁴ states. An expired token
    // must abort the build instead of grinding through it.
    let expired = CancelToken::with_deadline(Duration::ZERO);
    let err = state
        .plan_for_with(&cycle_query(24), &expired)
        .expect_err("an expired token must cancel the build");
    assert!(err.contains("cancelled"), "got {err:?}");
    assert!(
        state.cache().is_empty(),
        "a cancelled build must not be cached"
    );

    // The cache is not poisoned: a later request plans normally.
    assert_eq!(state.plan_for(BASE).unwrap().1, "miss");
}

#[test]
fn concurrent_identical_misses_coalesce_onto_one_build() {
    let _guard = LOCK.lock().unwrap();
    let state = music_state(ServeConfig::default());
    // Slow enough (2¹⁸ DP states) that the second request usually arrives
    // while the first is still building; the assertions below hold either
    // way (it then sees a plain hit).
    let q = Arc::new(cycle_query(18));

    let before = metrics_snapshot();
    let barrier = Arc::new(Barrier::new(2));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let state = Arc::clone(&state);
            let q = Arc::clone(&q);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                state.plan_for(&q).unwrap()
            })
        })
        .collect();
    let plans: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let delta = metrics_snapshot().since(&before);

    assert!(
        Arc::ptr_eq(&plans[0].0, &plans[1].0),
        "both requests must share one plan"
    );
    assert_eq!(
        delta.counter("serve.plan_cache.miss"),
        1,
        "exactly one request may run the build"
    );
    assert_eq!(
        delta.counter("serve.plan_cache.hit") + delta.counter("serve.plan_cache.coalesced"),
        1,
        "the other must join the in-flight slot or hit the finished entry"
    );
    assert_eq!(state.cache().len(), 1);
}

#[test]
fn plan_metadata_matches_the_figure1_tree() {
    let _guard = LOCK.lock().unwrap();
    let state = music_state(ServeConfig::default());
    let (plan, _) = state.plan_for(BASE).unwrap();
    // Figure 1 shape: a two-atom root with two single-atom children.
    assert_eq!(plan.wdpt.node_count(), 3);
    assert_eq!(plan.nodes.len(), 3);
    assert_eq!(plan.nodes[0].atoms, 2);
    for n in &plan.nodes {
        assert_eq!(n.core_atoms, n.atoms, "triple patterns here are cores");
        assert!(n.acyclic, "Figure 1 node CQs are acyclic");
        assert_eq!(n.treewidth, 1);
    }
    assert_eq!(plan.canon_vars.len(), 4);
}
