//! End-to-end telemetry tests: the `metrics` exposition op (JSON and
//! Prometheus text), the slow-query log with EXPLAIN capture, per-plan
//! runtime stats, and the `--no-telemetry` ablation — all driven over
//! real sockets like `e2e.rs`.

use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use wdpt_gen::music::MusicParams;
use wdpt_model::{Database, Interner};
use wdpt_obs::{read_json_line, write_json_line, Json};
use wdpt_serve::{serve, ServeConfig, ServeState};

const BASE: &str = r#"SELECT ?x ?y ?z WHERE { (((?x, rec_by, ?y) AND (?x, publ, "after_2010")) OPT (?x, nme_rating, ?z)) OPT (?y, formed_in, ?w) }"#;
/// A bounded two-way cross product: reliably slower than a 1 ms slowlog
/// threshold (120 × 120 joined rows) but finishes well inside any deadline.
const CROSS2: &str = "((?a, rec_by, ?b) AND (?c, publ, ?d))";
/// The unbounded four-way cross product from `e2e.rs`: trivially planned,
/// but evaluation reliably outlives the deadlines used here.
const HEAVY: &str =
    "((((?a, rec_by, ?b) AND (?c, rec_by, ?d)) AND (?e, publ, ?f)) AND (?g, nme_rating, ?h))";

struct Server {
    addr: SocketAddr,
    state: Arc<ServeState>,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(cfg: ServeConfig) -> Server {
    let mut i = Interner::new();
    let ts = wdpt_gen::music_triples(
        &mut i,
        MusicParams {
            bands: 30,
            records_per_band: 4,
            recent_fraction: 1.0,
            ..MusicParams::default()
        },
    );
    let mut dbs: BTreeMap<String, Database> = BTreeMap::new();
    dbs.insert("music".to_string(), ts.into_database());
    let state = ServeState::new(cfg, i, dbs, "music");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let st = Arc::clone(&state);
    let handle = std::thread::spawn(move || serve(listener, st));
    Server {
        addr,
        state,
        handle,
    }
}

impl Server {
    fn shutdown_and_join(self) {
        self.state.begin_shutdown();
        self.handle
            .join()
            .expect("server thread must not panic")
            .expect("serve() must drain cleanly");
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: BufWriter::new(stream),
        }
    }

    fn send(&mut self, req: &Json) {
        write_json_line(&mut self.writer, req).unwrap();
        self.writer.flush().unwrap();
    }

    fn response(&mut self) -> (Json, Vec<Json>) {
        let mut rows = Vec::new();
        loop {
            let line = read_json_line(&mut self.reader)
                .expect("read response")
                .expect("connection closed mid-response");
            if line.get("kind").and_then(Json::as_str) == Some("row") {
                rows.push(line);
                continue;
            }
            return (line, rows);
        }
    }

    fn round_trip(&mut self, req: &Json) -> (Json, Vec<Json>) {
        self.send(req);
        self.response()
    }
}

fn query_with(id: &str, text: &str, extra: &[(&str, Json)]) -> Json {
    let mut pairs = vec![
        ("op".to_string(), Json::str("query")),
        ("id".to_string(), Json::str(id)),
        ("query".to_string(), Json::str(text)),
    ];
    for (k, v) in extra {
        pairs.push((k.to_string(), v.clone()));
    }
    Json::obj(pairs)
}

fn query(id: &str, text: &str) -> Json {
    query_with(id, text, &[])
}

fn status_of(line: &Json) -> &str {
    line.get("status").and_then(Json::as_str).unwrap_or("?")
}

fn slowlog_entries(line: &Json) -> &[Json] {
    line.get("entries").and_then(Json::as_arr).unwrap_or(&[])
}

#[test]
fn metrics_op_exposes_request_histograms_and_plan_stats() {
    let server = start(ServeConfig::default());
    let mut c = Client::connect(server.addr);

    // Three queries through one plan; the last one asks for EXPLAIN.
    let (ok1, _) = c.round_trip(&query("m1", BASE));
    assert_eq!(status_of(&ok1), "ok", "got {ok1}");
    let (ok2, _) = c.round_trip(&query("m2", BASE));
    assert_eq!(status_of(&ok2), "ok");
    let (ok3, _) = c.round_trip(&query_with("m3", BASE, &[("explain", Json::Bool(true))]));
    assert_eq!(status_of(&ok3), "ok");

    // The EXPLAIN rider: cache status, per-node plan shape, runtime stats.
    let explain = ok3.get("explain").expect("explain field on request");
    assert_eq!(explain.get("cache").and_then(Json::as_str), Some("hit"));
    let nodes = explain.get("nodes").and_then(Json::as_arr).unwrap();
    assert_eq!(nodes.len(), 3, "BASE has a root and two OPT children");
    assert!(nodes[0].get("treewidth").and_then(Json::as_num).is_some());
    let stats = explain.get("stats").expect("plan runtime stats");
    assert!(stats.get("executions").and_then(Json::as_num).unwrap() >= 3.0);
    assert!(
        stats
            .get("nodes_expanded_total")
            .and_then(Json::as_num)
            .unwrap()
            > 0.0,
        "captured evaluation must tally nodes_expanded: {stats}"
    );
    let lat = stats.get("latency_us").expect("per-plan latency histogram");
    assert!(lat.get("count").and_then(Json::as_num).unwrap() >= 3.0);
    assert!(lat.get("p50").and_then(Json::as_num).is_some());

    // JSON exposition: request-stage histograms with derived percentiles,
    // gauges, and the per-plan stats table.
    let (m, _) = c.round_trip(&Json::obj([
        ("op", Json::str("metrics")),
        ("id", Json::str("mm")),
    ]));
    assert_eq!(status_of(&m), "ok", "got {m}");
    assert_eq!(m.get("kind").and_then(Json::as_str), Some("metrics"));
    assert_eq!(m.get("format").and_then(Json::as_str), Some("json"));
    let metrics = m.get("metrics").expect("metrics body");
    let hists = metrics.get("histograms").expect("histograms section");
    for name in [
        "serve.request.read_us",
        "serve.request.admission_us",
        "serve.request.plan_us",
        "serve.request.queue_us",
        "serve.request.eval_us",
        "serve.request.respond_us",
        "serve.request.total_us",
    ] {
        let h = hists
            .get(name)
            .unwrap_or_else(|| panic!("missing histogram {name}"));
        assert!(h.get("count").and_then(Json::as_num).unwrap() >= 3.0);
        assert!(h.get("p99").and_then(Json::as_num).is_some());
        let buckets = h.get("buckets").and_then(Json::as_arr).unwrap();
        assert!(!buckets.is_empty(), "{name} has no cumulative buckets");
    }
    assert!(metrics.get("gauges").is_some());
    assert!(
        metrics
            .get("counters")
            .and_then(|cs| cs.get("serve.requests.ok"))
            .and_then(Json::as_num)
            .unwrap()
            >= 3.0
    );
    let plans = m.get("plans").and_then(Json::as_arr).expect("plans table");
    assert!(
        plans
            .iter()
            .any(|p| p.get("executions").and_then(Json::as_num).unwrap_or(0.0) >= 3.0),
        "one cached plan ran three times: {m}"
    );

    server.shutdown_and_join();
}

#[test]
fn prometheus_text_exposition_is_parseable_and_cumulative() {
    let server = start(ServeConfig::default());
    let mut c = Client::connect(server.addr);
    let (ok, _) = c.round_trip(&query("p1", BASE));
    assert_eq!(status_of(&ok), "ok");

    let (m, _) = c.round_trip(&Json::obj([
        ("op", Json::str("metrics")),
        ("format", Json::str("prometheus")),
    ]));
    assert_eq!(status_of(&m), "ok", "got {m}");
    assert_eq!(m.get("format").and_then(Json::as_str), Some("text"));
    let text = m.get("text").and_then(Json::as_str).expect("text body");

    assert!(text.contains("# TYPE serve_requests_ok counter"));
    assert!(text.contains("# TYPE serve_request_total_us histogram"));

    // The bucket series for the request-latency histogram must be
    // cumulative (non-decreasing) and end at +Inf == _count.
    let mut last = 0u64;
    let mut inf: Option<u64> = None;
    let mut count: Option<u64> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("serve_request_total_us_bucket{le=\"") {
            let (le, tail) = rest.split_once('"').unwrap();
            let v: u64 = tail.trim_start_matches('}').trim().parse().unwrap();
            assert!(
                v >= last,
                "bucket series decreased at le={le}: {v} < {last}"
            );
            last = v;
            if le == "+Inf" {
                inf = Some(v);
            }
        } else if let Some(v) = line.strip_prefix("serve_request_total_us_count ") {
            count = Some(v.trim().parse().unwrap());
        }
    }
    let inf = inf.expect("+Inf bucket present");
    let count = count.expect("_count sample present");
    assert_eq!(inf, count, "+Inf bucket must equal the sample count");
    assert!(count >= 1);

    server.shutdown_and_join();
}

#[test]
fn slowlog_captures_slow_and_deadline_exceeded_queries() {
    let server = start(ServeConfig {
        slowlog_threshold_ms: 1,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(server.addr);

    // Over-threshold but successful.
    let (ok, _) = c.round_trip(&query_with("slow1", CROSS2, &[("max_rows", Json::int(5))]));
    assert_eq!(status_of(&ok), "ok", "got {ok}");

    // Deadline-exceeded: must land in the slowlog *with* its partial
    // EXPLAIN profile — that is the log's reason to exist.
    let (cancelled, _) = c.round_trip(&query_with(
        "dead1",
        HEAVY,
        &[("deadline_ms", Json::int(200))],
    ));
    assert_eq!(status_of(&cancelled), "cancelled", "got {cancelled}");

    // Peek without draining, then drain, then verify empty.
    let (peek, _) = c.round_trip(&Json::obj([
        ("op", Json::str("slowlog")),
        ("keep", Json::Bool(true)),
    ]));
    assert_eq!(status_of(&peek), "ok", "got {peek}");
    assert_eq!(peek.get("kind").and_then(Json::as_str), Some("slowlog"));
    let n = slowlog_entries(&peek).len();
    assert!(n >= 2, "expected >=2 slowlog entries, got {peek}");

    let (drain, _) = c.round_trip(&Json::obj([("op", Json::str("slowlog"))]));
    let entries = slowlog_entries(&drain);
    assert_eq!(entries.len(), n, "keep=true must not consume entries");

    let by_id = |id: &str| {
        entries
            .iter()
            .find(|e| e.get("id").and_then(Json::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no slowlog entry for {id}: {drain}"))
    };
    let slow = by_id("slow1");
    assert_eq!(slow.get("status").and_then(Json::as_str), Some("slow"));
    assert_eq!(slow.get("db").and_then(Json::as_str), Some("music"));
    assert!(slow.get("wall_us").and_then(Json::as_num).unwrap() >= 1_000.0);
    assert!(slow.get("cache").and_then(Json::as_str).is_some());
    let trace = slow.get("trace").expect("stage trace");
    let total = trace.get("total_us").and_then(Json::as_num).unwrap();
    let eval = trace.get("eval_us").and_then(Json::as_num).unwrap();
    let queue = trace.get("queue_us").and_then(Json::as_num).unwrap();
    assert!(
        eval <= total && queue <= total,
        "stages exceed wall: {trace}"
    );
    let profile = slow.get("profile").expect("EXPLAIN profile");
    assert!(profile.get("nodes").and_then(Json::as_arr).is_some());

    let dead = by_id("dead1");
    assert_eq!(dead.get("status").and_then(Json::as_str), Some("cancelled"));
    let dead_profile = dead
        .get("profile")
        .expect("deadline-exceeded query keeps its partial profile");
    assert!(dead_profile.get("nodes").and_then(Json::as_arr).is_some());
    let text = slow.get("query").and_then(Json::as_str).unwrap();
    assert!(text.contains("rec_by"));

    // Drained: the log is empty now.
    let (empty, _) = c.round_trip(&Json::obj([("op", Json::str("slowlog"))]));
    assert!(slowlog_entries(&empty).is_empty(), "got {empty}");

    server.shutdown_and_join();
}

#[test]
fn slowlog_ring_evicts_oldest_and_counts_dropped() {
    let server = start(ServeConfig {
        slowlog_threshold_ms: 1,
        slowlog_capacity: 2,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(server.addr);

    for id in ["r1", "r2", "r3", "r4"] {
        let (ok, _) = c.round_trip(&query_with(id, CROSS2, &[("max_rows", Json::int(1))]));
        assert_eq!(status_of(&ok), "ok", "got {ok}");
    }

    let (log, _) = c.round_trip(&Json::obj([("op", Json::str("slowlog"))]));
    let entries = slowlog_entries(&log);
    assert_eq!(entries.len(), 2, "capacity bounds the ring: {log}");
    let ids: Vec<&str> = entries
        .iter()
        .filter_map(|e| e.get("id").and_then(Json::as_str))
        .collect();
    assert_eq!(ids, ["r3", "r4"], "oldest entries evicted first");
    assert_eq!(log.get("dropped").and_then(Json::as_num), Some(2.0));

    server.shutdown_and_join();
}

#[test]
fn no_telemetry_disables_slowlog_but_keeps_metrics_op() {
    let server = start(ServeConfig {
        telemetry: false,
        slowlog_threshold_ms: 1,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(server.addr);

    let (ok, _) = c.round_trip(&query_with("t1", CROSS2, &[("max_rows", Json::int(1))]));
    assert_eq!(status_of(&ok), "ok", "got {ok}");
    let (cancelled, _) = c.round_trip(&query_with("t2", HEAVY, &[("deadline_ms", Json::int(200))]));
    assert_eq!(status_of(&cancelled), "cancelled");

    // Nothing captured: the slowlog is inert.
    let (log, _) = c.round_trip(&Json::obj([("op", Json::str("slowlog"))]));
    assert_eq!(status_of(&log), "ok");
    assert!(slowlog_entries(&log).is_empty(), "got {log}");
    assert_eq!(log.get("dropped").and_then(Json::as_num), Some(0.0));

    // The metrics op itself still answers (the registry just stops
    // receiving request traces from this server).
    let (m, _) = c.round_trip(&Json::obj([("op", Json::str("metrics"))]));
    assert_eq!(status_of(&m), "ok");
    assert_eq!(m.get("kind").and_then(Json::as_str), Some("metrics"));

    server.shutdown_and_join();
}
