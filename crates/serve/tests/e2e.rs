//! End-to-end protocol tests: an in-process server on an ephemeral port,
//! driven over real sockets.

use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wdpt_gen::music::MusicParams;
use wdpt_model::{Database, Interner};
use wdpt_obs::{read_json_line, write_json_line, Json};
use wdpt_serve::{serve, ServeConfig, ServeState};

const BASE: &str = r#"SELECT ?x ?y ?z WHERE { (((?x, rec_by, ?y) AND (?x, publ, "after_2010")) OPT (?x, nme_rating, ?z)) OPT (?y, formed_in, ?w) }"#;
const RENAMED: &str = r#"SELECT ?a ?b ?c WHERE { (((?a, rec_by, ?b) AND (?a, publ, "after_2010")) OPT (?a, nme_rating, ?c)) OPT (?b, formed_in, ?d) }"#;
/// A 4-way cross product over *distinct* predicates: planning is trivial
/// (each atom only maps to itself in the frozen database, so the core
/// search is instant) while evaluation is a huge cross product that
/// reliably outlives the deadlines used here.
const HEAVY: &str =
    "((((?a, rec_by, ?b) AND (?c, rec_by, ?d)) AND (?e, publ, ?f)) AND (?g, nme_rating, ?h))";

struct Server {
    addr: SocketAddr,
    state: Arc<ServeState>,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(cfg: ServeConfig) -> Server {
    let mut i = Interner::new();
    let ts = wdpt_gen::music_triples(
        &mut i,
        MusicParams {
            bands: 30,
            records_per_band: 4,
            recent_fraction: 1.0,
            ..MusicParams::default()
        },
    );
    let mut dbs: BTreeMap<String, Database> = BTreeMap::new();
    dbs.insert("music".to_string(), ts.into_database());
    let state = ServeState::new(cfg, i, dbs, "music");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let st = Arc::clone(&state);
    let handle = std::thread::spawn(move || serve(listener, st));
    Server {
        addr,
        state,
        handle,
    }
}

impl Server {
    fn shutdown_and_join(self) {
        self.state.begin_shutdown();
        self.handle
            .join()
            .expect("server thread must not panic")
            .expect("serve() must drain cleanly");
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: BufWriter::new(stream),
        }
    }

    fn send_raw(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
    }

    fn send_bytes(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).unwrap();
        self.writer.flush().unwrap();
    }

    fn send(&mut self, req: &Json) {
        write_json_line(&mut self.writer, req).unwrap();
        self.writer.flush().unwrap();
    }

    /// Reads lines until the terminal status line; returns `(status_line,
    /// rows)`.
    fn response(&mut self) -> (Json, Vec<Json>) {
        let mut rows = Vec::new();
        loop {
            let line = read_json_line(&mut self.reader)
                .expect("read response")
                .expect("connection closed mid-response");
            if line.get("kind").and_then(Json::as_str) == Some("row") {
                rows.push(line);
                continue;
            }
            return (line, rows);
        }
    }

    fn round_trip(&mut self, req: &Json) -> (Json, Vec<Json>) {
        self.send(req);
        self.response()
    }
}

fn query(id: &str, text: &str) -> Json {
    Json::obj([
        ("op", Json::str("query")),
        ("id", Json::str(id)),
        ("query", Json::str(text)),
    ])
}

fn query_with(id: &str, text: &str, extra: &[(&str, Json)]) -> Json {
    let mut pairs = vec![
        ("op".to_string(), Json::str("query")),
        ("id".to_string(), Json::str(id)),
        ("query".to_string(), Json::str(text)),
    ];
    for (k, v) in extra {
        pairs.push((k.to_string(), v.clone()));
    }
    Json::obj(pairs)
}

fn status_of(line: &Json) -> &str {
    line.get("status").and_then(Json::as_str).unwrap_or("?")
}

#[test]
fn query_rows_and_cache_hits_over_the_wire() {
    let server = start(ServeConfig::default());
    let mut c = Client::connect(server.addr);

    // Ping first.
    let (pong, _) = c.round_trip(&Json::obj([("op", Json::str("ping"))]));
    assert_eq!(pong.get("kind").and_then(Json::as_str), Some("pong"));

    // First query: a miss with one row per record (recent_fraction = 1).
    let (ok1, rows1) = c.round_trip(&query("q1", BASE));
    assert_eq!(status_of(&ok1), "ok", "got {ok1}");
    assert_eq!(ok1.get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(ok1.get("answers").and_then(Json::as_num), Some(120.0));
    assert_eq!(rows1.len(), 120);
    // Bindings use the request's variable names.
    let b = rows1[0].get("bindings").unwrap();
    assert!(b.get("x").is_some() && b.get("y").is_some());
    assert!(b.get("a").is_none());

    // Same query again: a hit.
    let (ok2, rows2) = c.round_trip(&query("q2", BASE));
    assert_eq!(ok2.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(rows2.len(), 120);

    // α-renamed: also a hit, answered in the renamed vocabulary.
    let (ok3, rows3) = c.round_trip(&query("q3", RENAMED));
    assert_eq!(ok3.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(ok3.get("id").and_then(Json::as_str), Some("q3"));
    let b3 = rows3[0].get("bindings").unwrap();
    assert!(b3.get("a").is_some() && b3.get("x").is_none());

    // The same rows, modulo renaming.
    let xs = |rows: &[Json], var: &str| {
        let mut v: Vec<String> = rows
            .iter()
            .filter_map(|r| r.get("bindings")?.get(var)?.as_str().map(str::to_string))
            .collect();
        v.sort();
        v
    };
    assert_eq!(xs(&rows1, "x"), xs(&rows3, "a"));

    // max_rows truncates rows but reports the full answer count.
    let (ok4, rows4) = c.round_trip(&query_with("q4", BASE, &[("max_rows", Json::int(5))]));
    assert_eq!(ok4.get("answers").and_then(Json::as_num), Some(120.0));
    assert_eq!(ok4.get("rows").and_then(Json::as_num), Some(5.0));
    assert_eq!(rows4.len(), 5);

    // Profiles attach on request.
    let (ok5, _) = c.round_trip(&query_with("q5", BASE, &[("profile", Json::Bool(true))]));
    assert!(ok5.get("profile").is_some(), "got {ok5}");

    // Stats reflect the hits.
    let (stats, _) = c.round_trip(&Json::obj([("op", Json::str("stats"))]));
    let hits = stats
        .get("counters")
        .and_then(|cs| cs.get("serve.plan_cache.hit"))
        .and_then(Json::as_num)
        .unwrap_or(0.0);
    assert!(hits >= 2.0, "expected >= 2 cache hits, stats: {stats}");

    server.shutdown_and_join();
}

#[test]
fn invalid_requests_get_typed_errors() {
    let server = start(ServeConfig::default());
    let mut c = Client::connect(server.addr);

    // Parse error with a byte offset into the query text.
    let (e1, rows) = c.round_trip(&query("e1", "SELECT ?x WHERE { (?x, rec_by) }"));
    assert_eq!(status_of(&e1), "error");
    assert_eq!(e1.get("kind").and_then(Json::as_str), Some("parse_error"));
    assert!(e1.get("at").and_then(Json::as_num).is_some());
    assert!(rows.is_empty());

    // Duplicate SELECT variable (parser hardening).
    let (e2, _) = c.round_trip(&query("e2", "SELECT ?x ?x WHERE { (?x, rec_by, ?y) }"));
    assert_eq!(e2.get("kind").and_then(Json::as_str), Some("parse_error"));
    assert!(e2
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("duplicate"));

    // Unknown database.
    let (e3, _) = c.round_trip(&query_with("e3", BASE, &[("db", Json::str("nope"))]));
    assert_eq!(e3.get("kind").and_then(Json::as_str), Some("unknown_db"));

    // Non-JSON line.
    c.send_raw("this is not json");
    let (e4, _) = c.response();
    assert_eq!(e4.get("kind").and_then(Json::as_str), Some("bad_request"));

    // Unknown op.
    let (e5, _) = c.round_trip(&Json::obj([("op", Json::str("explode"))]));
    assert_eq!(e5.get("kind").and_then(Json::as_str), Some("bad_request"));

    // Non-well-designed pattern: ?z in the OPT right side and again
    // outside, but not on the left.
    let nwd = "(((?x, p, ?y) OPT (?x, q, ?z)) AND (?z, r, ?w))";
    let (e6, _) = c.round_trip(&query("e6", nwd));
    assert_eq!(
        e6.get("kind").and_then(Json::as_str),
        Some("not_well_designed"),
        "got {e6}"
    );
    // The message names the client's variable, not a canonical one.
    assert!(e6
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("?z"));

    // The connection survives all of it.
    let (ok, _) = c.round_trip(&query("ok", BASE));
    assert_eq!(status_of(&ok), "ok");

    server.shutdown_and_join();
}

#[test]
fn deadline_exceeding_query_is_cancelled_promptly() {
    let server = start(ServeConfig::default());
    let mut c = Client::connect(server.addr);

    let deadline_ms = 200u64;
    let started = Instant::now();
    let (line, rows) = c.round_trip(&query_with(
        "slow",
        HEAVY,
        &[("deadline_ms", Json::int(deadline_ms))],
    ));
    let elapsed = started.elapsed();
    assert_eq!(status_of(&line), "cancelled", "got {line}");
    assert_eq!(line.get("deadline_ms").and_then(Json::as_num), Some(200.0));
    assert!(rows.is_empty());
    // Cooperative cancellation must fire within ~2x the deadline (plus
    // scheduling slack); an uncancelled run would take effectively forever.
    assert!(
        elapsed < Duration::from_millis(2 * deadline_ms) + Duration::from_secs(1),
        "cancelled response took {elapsed:?}"
    );

    // The worker is free again: a normal query still succeeds.
    let (ok, _) = c.round_trip(&query("after", BASE));
    assert_eq!(status_of(&ok), "ok");

    server.shutdown_and_join();
}

/// A directed `n`-cycle over distinct predicates: instant to parse and
/// core (each atom only maps to itself) but the exact-treewidth DP must
/// walk `2ⁿ` subsets, so *planning* — not evaluation — eats the deadline.
fn cycle_query(n: usize) -> String {
    let mut p = "(?v0, e0, ?v1)".to_string();
    for k in 1..n {
        p = format!("({p} AND (?v{k}, e{k}, ?v{}))", (k + 1) % n);
    }
    format!("SELECT ?v0 WHERE {{ {p} }}")
}

#[test]
fn slow_planning_query_does_not_wedge_other_connections() {
    let server = start(ServeConfig::default());

    // Connection 1: a query whose *planning* runs a 2²⁴-state search. It
    // must be cancelled by its own deadline — and, critically, must not
    // hold the interner or plan-cache lock while searching.
    let mut c1 = Client::connect(server.addr);
    c1.send(&query_with(
        "planner",
        &cycle_query(24),
        &[("deadline_ms", Json::int(800))],
    ));
    std::thread::sleep(Duration::from_millis(100));

    // Connection 2: a normal query while connection 1 is mid-planning.
    // Before planning was moved out of the global locks this would block
    // for connection 1's whole deadline.
    let mut c2 = Client::connect(server.addr);
    let started = Instant::now();
    let (ok, rows) = c2.round_trip(&query("fast", BASE));
    let elapsed = started.elapsed();
    assert_eq!(status_of(&ok), "ok", "got {ok}");
    assert_eq!(rows.len(), 120);
    assert!(
        elapsed < Duration::from_millis(500),
        "fast query stalled {elapsed:?} behind a planning query"
    );

    let (line, _) = c1.response();
    assert_eq!(status_of(&line), "cancelled", "got {line}");

    server.shutdown_and_join();
}

#[test]
fn oversized_queries_are_rejected_without_retaining_symbols() {
    let server = start(ServeConfig {
        max_query_atoms: 3,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(server.addr);
    let symbols_before = server.state.interner_len();

    // BASE has four triple patterns: over the atom cap.
    let (e, rows) = c.round_trip(&query("big", BASE));
    assert_eq!(status_of(&e), "error");
    assert_eq!(
        e.get("kind").and_then(Json::as_str),
        Some("query_too_large"),
        "got {e}"
    );
    assert!(rows.is_empty());
    assert_eq!(
        server.state.interner_len(),
        symbols_before,
        "a rejected query must not retain interned symbols"
    );

    // Under the cap still works on the same connection.
    let (ok, _) = c.round_trip(&query("small", "(?x, rec_by, ?y)"));
    assert_eq!(status_of(&ok), "ok", "got {ok}");

    server.shutdown_and_join();
}

#[test]
fn exhausted_symbol_budget_rejects_queries_but_not_ops() {
    let server = start(ServeConfig {
        max_symbols: 0,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(server.addr);
    let symbols_before = server.state.interner_len();

    let (e, _) = c.round_trip(&query("q", BASE));
    assert_eq!(status_of(&e), "error");
    assert_eq!(e.get("kind").and_then(Json::as_str), Some("symbol_limit"));
    assert_eq!(server.state.interner_len(), symbols_before);

    // Non-query ops are unaffected.
    let (pong, _) = c.round_trip(&Json::obj([("op", Json::str("ping"))]));
    assert_eq!(pong.get("kind").and_then(Json::as_str), Some("pong"));

    server.shutdown_and_join();
}

#[test]
fn utf8_request_split_mid_character_survives_read_timeouts() {
    let server = start(ServeConfig::default());
    let mut c = Client::connect(server.addr);

    // The request id contains a three-byte UTF-8 character; split the line
    // inside it and pause past the server's 200 ms read timeout, so the
    // reader sees a timeout with an incomplete character buffered. With a
    // string-based reader this dropped the partial bytes.
    let line = r#"{"op":"query","id":"本-id","query":"(?x, rec_by, ?y)"}"#;
    let split = line.find('本').unwrap() + 1; // mid-character
    c.send_bytes(&line.as_bytes()[..split]);
    std::thread::sleep(Duration::from_millis(450));
    c.send_bytes(&line.as_bytes()[split..]);
    c.send_bytes(b"\n");

    let (ok, _) = c.response();
    assert_eq!(status_of(&ok), "ok", "got {ok}");
    assert_eq!(ok.get("id").and_then(Json::as_str), Some("本-id"));

    server.shutdown_and_join();
}

#[test]
fn invalid_utf8_line_gets_bad_request_and_connection_survives() {
    let server = start(ServeConfig::default());
    let mut c = Client::connect(server.addr);

    c.send_bytes(b"\xff\xfe{\"op\":\"ping\"}\n");
    let (e, _) = c.response();
    assert_eq!(status_of(&e), "error");
    assert_eq!(e.get("kind").and_then(Json::as_str), Some("bad_request"));
    assert!(e
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("UTF-8"));

    // The reader resynchronizes on the newline: the next request works.
    let (pong, _) = c.round_trip(&Json::obj([("op", Json::str("ping"))]));
    assert_eq!(pong.get("kind").and_then(Json::as_str), Some("pong"));

    server.shutdown_and_join();
}

#[test]
fn full_queue_answers_overloaded_not_hanging() {
    // One worker, queue depth one: the third concurrent query must be
    // rejected with backpressure, immediately.
    let server = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });

    let heavy = |id: &str| query_with(id, HEAVY, &[("deadline_ms", Json::int(1_000))]);

    // Occupy the worker, then the queue slot.
    let mut c1 = Client::connect(server.addr);
    c1.send(&heavy("h1"));
    std::thread::sleep(Duration::from_millis(150));
    let mut c2 = Client::connect(server.addr);
    c2.send(&heavy("h2"));
    std::thread::sleep(Duration::from_millis(150));

    // Now the queue is full: this must come back overloaded, fast.
    let mut c3 = Client::connect(server.addr);
    let started = Instant::now();
    let (line, _) = c3.round_trip(&heavy("h3"));
    assert_eq!(status_of(&line), "overloaded", "got {line}");
    assert!(line.get("retry_after_ms").and_then(Json::as_num).is_some());
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "backpressure response must not wait for the queue"
    );

    // The occupying queries finish (cancelled by their deadlines).
    assert_eq!(status_of(&c1.response().0), "cancelled");
    assert_eq!(status_of(&c2.response().0), "cancelled");

    server.shutdown_and_join();
}

#[test]
fn hot_reload_swaps_data_over_the_wire() {
    let dir = std::env::temp_dir().join(format!("wdpt-serve-e2e-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // A base snapshot with one rec_by triple, then a delta adding another.
    let mut si = Interner::new();
    let mut ts = wdpt_sparql::TripleStore::new();
    ts.insert_str(&mut si, "swim", "rec_by", "caribou");
    let base_i = si.clone();
    let base_db = ts.database().clone();
    let base_path = dir.join("base.wdpt");
    wdpt_store::save_snapshot(&base_path, &base_i, &base_db).unwrap();
    ts.insert_str(&mut si, "our_love", "rec_by", "caribou");
    let new_db = ts.into_database();
    let base_bytes = std::fs::read(&base_path).unwrap();
    let delta = wdpt_store::delta_to_vec(
        wdpt_store::content_hash(&base_bytes),
        &base_i,
        &base_db,
        &si,
        &new_db,
    )
    .unwrap();
    let delta_path = dir.join("d1.wdpt");
    wdpt_store::save_delta(&delta_path, &delta).unwrap();

    let server = start(ServeConfig::default());
    let mut c = Client::connect(server.addr);

    // Before the reload: the generated music catalog, 120 rec_by rows.
    const Q: &str = "SELECT ?x ?y WHERE { (?x, rec_by, ?y) }";
    let (ok0, rows0) = c.round_trip(&query("q0", Q));
    assert_eq!(status_of(&ok0), "ok", "got {ok0}");
    assert_eq!(rows0.len(), 120);

    // Reload the default db from the snapshot + delta chain.
    let (rl, _) = c.round_trip(&Json::obj([
        ("op", Json::str("reload")),
        ("id", Json::str("r1")),
        ("snapshot", Json::str(base_path.to_str().unwrap())),
        (
            "deltas",
            Json::Arr(vec![Json::str(delta_path.to_str().unwrap())]),
        ),
    ]));
    assert_eq!(status_of(&rl), "ok", "got {rl}");
    assert_eq!(rl.get("kind").and_then(Json::as_str), Some("reload"));
    assert_eq!(rl.get("db").and_then(Json::as_str), Some("music"));
    assert_eq!(rl.get("tuples").and_then(Json::as_num), Some(2.0));
    assert_eq!(rl.get("deltas_applied").and_then(Json::as_num), Some(1.0));

    // The same query — a plan-cache hit, since reload keeps the cache —
    // now answers from the swapped-in data, including the delta's tuple.
    let (ok1, rows1) = c.round_trip(&query("q1", Q));
    assert_eq!(status_of(&ok1), "ok", "got {ok1}");
    assert_eq!(ok1.get("cache").and_then(Json::as_str), Some("hit"));
    let mut subjects: Vec<&str> = rows1
        .iter()
        .filter_map(|r| r.get("bindings")?.get("x")?.as_str())
        .collect();
    subjects.sort_unstable();
    assert_eq!(subjects, ["our_love", "swim"]);

    // A failed reload reports reload_failed and leaves the served data
    // and the connection intact.
    let (err, _) = c.round_trip(&Json::obj([
        ("op", Json::str("reload")),
        ("id", Json::str("r2")),
        (
            "snapshot",
            Json::str(dir.join("missing.wdpt").to_str().unwrap()),
        ),
    ]));
    assert_eq!(status_of(&err), "error", "got {err}");
    assert_eq!(
        err.get("kind").and_then(Json::as_str),
        Some("reload_failed")
    );
    let (ok2, rows2) = c.round_trip(&query("q2", Q));
    assert_eq!(status_of(&ok2), "ok");
    assert_eq!(rows2.len(), 2);

    // Reloading into a fresh name makes it queryable via "db".
    let (rl2, _) = c.round_trip(&Json::obj([
        ("op", Json::str("reload")),
        ("id", Json::str("r3")),
        ("db", Json::str("aux")),
        ("snapshot", Json::str(base_path.to_str().unwrap())),
    ]));
    assert_eq!(status_of(&rl2), "ok", "got {rl2}");
    let (ok3, rows3) = c.round_trip(&query_with("q3", Q, &[("db", Json::str("aux"))]));
    assert_eq!(status_of(&ok3), "ok", "got {ok3}");
    assert_eq!(rows3.len(), 1);

    server.shutdown_and_join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_drains_and_rejects_new_work() {
    let server = start(ServeConfig::default());
    let mut c = Client::connect(server.addr);

    let (ok, _) = c.round_trip(&query("before", BASE));
    assert_eq!(status_of(&ok), "ok");

    let (ack, _) = c.round_trip(&Json::obj([("op", Json::str("shutdown"))]));
    assert_eq!(ack.get("kind").and_then(Json::as_str), Some("shutdown"));

    // serve() returns once connections and workers have drained.
    let joined = server.handle.join().expect("server thread must not panic");
    joined.expect("serve() must drain cleanly");

    // The listener is gone: new connections are refused (or reset).
    assert!(TcpStream::connect(server.addr).is_err());
}
