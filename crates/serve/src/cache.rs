//! The plan cache: canonical query keys and memoized per-query artifacts.
//!
//! Decompositions and cores are the expensive per-query work — they depend
//! only on the query's *structure*, not on which database it runs against
//! or what its variables are called. The cache therefore keys on the
//! query's **canonical form**: variables α-renamed to `#0, #1, …` in order
//! of first occurrence over a fixed pre-order traversal (triple subjects
//! before predicates before objects, left operands before right). Two
//! queries that differ only by variable names — or by constant spelling,
//! since `after_2010` and `"after_2010"` intern to the same constant — map
//! to the same key and share one [`Plan`].
//!
//! A cached [`Plan`] lives in canonical variable space; each request keeps
//! its own first-occurrence variable list ([`CanonicalQuery::request_vars`])
//! to translate answer bindings back to the names the client wrote.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use wdpt_core::{plan_wdpt, Wdpt};
use wdpt_cq::{try_core_of, try_in_hw, try_treewidth_of};
use wdpt_model::{CancelToken, Cancelled, Interner, Term, Var};
use wdpt_obs::{counter, Json, RawHistogram};
use wdpt_plan::{ExecPlan, StatsCatalog, Strategy};
use wdpt_sparql::{GraphPattern, SparqlQuery, TriplePattern};

/// A query reduced to canonical form, plus what is needed to translate
/// canonical answers back into the request's vocabulary.
#[derive(Debug, Clone)]
pub struct CanonicalQuery {
    /// The cache key: an unambiguous structural rendering of the
    /// canonicalized query.
    pub key: String,
    /// The query with variables α-renamed to `#0, #1, …`.
    pub canon: SparqlQuery,
    /// The request's variable names in first-occurrence order: index `k`
    /// is the name that became canonical variable `#k`.
    pub request_vars: Vec<String>,
}

/// The canonical variable `#k`.
pub fn canon_var(i: &mut Interner, k: usize) -> Var {
    // '#' cannot appear in a parsed identifier, so canonical names can
    // never collide with request variables.
    i.var(&format!("#{k}"))
}

/// α-renames `q` into canonical form and renders its cache key.
pub fn canonicalize(q: &SparqlQuery, i: &mut Interner) -> CanonicalQuery {
    let mut numbering: HashMap<Var, usize> = HashMap::new();
    let mut request_vars: Vec<String> = Vec::new();
    let pattern = rename_pattern(&q.pattern, i, &mut numbering, &mut request_vars);
    let select = q.select.as_ref().map(|sel| {
        sel.iter()
            .map(|v| {
                let k = numbering
                    .get(v)
                    .copied()
                    .expect("parser guarantees SELECT vars occur in the pattern");
                canon_var(i, k)
            })
            .collect::<Vec<_>>()
    });
    let canon = SparqlQuery { pattern, select };
    let key = render_key(&canon, i, &numbering);
    CanonicalQuery {
        key,
        canon,
        request_vars,
    }
}

fn rename_pattern(
    p: &GraphPattern,
    i: &mut Interner,
    numbering: &mut HashMap<Var, usize>,
    request_vars: &mut Vec<String>,
) -> GraphPattern {
    match p {
        GraphPattern::Triple(t) => GraphPattern::Triple(TriplePattern {
            s: rename_term(t.s, i, numbering, request_vars),
            p: rename_term(t.p, i, numbering, request_vars),
            o: rename_term(t.o, i, numbering, request_vars),
        }),
        GraphPattern::And(a, b) => GraphPattern::And(
            Box::new(rename_pattern(a, i, numbering, request_vars)),
            Box::new(rename_pattern(b, i, numbering, request_vars)),
        ),
        GraphPattern::Opt(a, b) => GraphPattern::Opt(
            Box::new(rename_pattern(a, i, numbering, request_vars)),
            Box::new(rename_pattern(b, i, numbering, request_vars)),
        ),
    }
}

fn rename_term(
    t: Term,
    i: &mut Interner,
    numbering: &mut HashMap<Var, usize>,
    request_vars: &mut Vec<String>,
) -> Term {
    match t {
        Term::Const(_) => t,
        Term::Var(v) => {
            let k = match numbering.get(&v) {
                Some(&k) => k,
                None => {
                    let k = request_vars.len();
                    numbering.insert(v, k);
                    request_vars.push(i.var_name(v).to_string());
                    k
                }
            };
            Term::Var(canon_var(i, k))
        }
    }
}

/// Structural key rendering. Variables print as `Vk`, constants as their
/// `Debug`-escaped name (so a constant literally spelled `V0` renders as
/// `C"V0"` and cannot collide), operators as `A[..]`/`O[..]`.
fn render_key(q: &SparqlQuery, i: &Interner, _numbering: &HashMap<Var, usize>) -> String {
    fn term(t: Term, i: &Interner, out: &mut String) {
        match t {
            Term::Var(v) => {
                // Canonical names are "#k"; strip the marker for the key.
                out.push('V');
                out.push_str(&i.var_name(v)[1..]);
            }
            Term::Const(c) => {
                out.push('C');
                out.push_str(&format!("{:?}", i.const_name(c)));
            }
        }
    }
    fn pat(p: &GraphPattern, i: &Interner, out: &mut String) {
        match p {
            GraphPattern::Triple(t) => {
                out.push('(');
                term(t.s, i, out);
                out.push(' ');
                term(t.p, i, out);
                out.push(' ');
                term(t.o, i, out);
                out.push(')');
            }
            GraphPattern::And(a, b) => {
                out.push_str("A[");
                pat(a, i, out);
                pat(b, i, out);
                out.push(']');
            }
            GraphPattern::Opt(a, b) => {
                out.push_str("O[");
                pat(a, i, out);
                pat(b, i, out);
                out.push(']');
            }
        }
    }
    let mut out = String::new();
    match &q.select {
        None => out.push_str("S*"),
        Some(sel) => {
            out.push_str("S[");
            for (j, v) in sel.iter().enumerate() {
                if j > 0 {
                    out.push(' ');
                }
                out.push('V');
                out.push_str(&i.var_name(*v)[1..]);
            }
            out.push(']');
        }
    }
    out.push(' ');
    pat(&q.pattern, i, &mut out);
    out
}

/// Per-tree-node metadata memoized alongside the parsed tree: core size
/// and decomposition facts, the artifacts worth reusing across requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePlan {
    /// Atoms labeling the node.
    pub atoms: usize,
    /// Atoms in the core of the node's CQ (≤ `atoms`).
    pub core_atoms: usize,
    /// Exact treewidth of the node CQ's core.
    pub treewidth: usize,
    /// Whether the core is α-acyclic (hypertree width ≤ 1).
    pub acyclic: bool,
}

/// Runtime statistics accumulated by one cached plan across the requests
/// that executed it: execution tallies, `cq.nodes_expanded` work (total and
/// last run), and a log₂ latency histogram of eval times. All relaxed
/// atomics — workers update them lock-free after each evaluation — and a
/// [`RawHistogram`] rather than a registered one, so evicted plans don't
/// leak `&'static` registry entries.
///
/// This is the per-plan signal the ROADMAP's adaptive re-planner will read:
/// a plan whose observed `nodes_expanded` diverges from its estimate is a
/// re-planning candidate. Surfaced through the `metrics` admin op and the
/// per-query `explain` response field.
#[derive(Debug, Default)]
pub struct PlanStats {
    executions: AtomicU64,
    cancelled: AtomicU64,
    nodes_expanded_total: AtomicU64,
    nodes_expanded_last: AtomicU64,
    latency_us: RawHistogram,
}

impl PlanStats {
    /// Records one completed evaluation: its eval wall time and, when the
    /// run was profiled, its `cq.nodes_expanded` count.
    pub fn record_execution(&self, eval_us: u64, nodes_expanded: Option<u64>) {
        self.executions.fetch_add(1, Relaxed);
        self.latency_us.record(eval_us);
        if let Some(n) = nodes_expanded {
            self.nodes_expanded_total.fetch_add(n, Relaxed);
            self.nodes_expanded_last.store(n, Relaxed);
        }
    }

    /// Records an evaluation that hit its deadline.
    pub fn record_cancelled(&self) {
        self.cancelled.fetch_add(1, Relaxed);
    }

    /// Completed executions so far.
    pub fn executions(&self) -> u64 {
        self.executions.load(Relaxed)
    }

    /// Deadline-cancelled executions so far.
    pub fn cancellations(&self) -> u64 {
        self.cancelled.load(Relaxed)
    }

    /// `cq.nodes_expanded` summed over profiled executions.
    pub fn nodes_expanded_total(&self) -> u64 {
        self.nodes_expanded_total.load(Relaxed)
    }

    /// `cq.nodes_expanded` of the most recent profiled execution.
    pub fn nodes_expanded_last(&self) -> u64 {
        self.nodes_expanded_last.load(Relaxed)
    }

    /// The stats as a JSON object (shape shared by `metrics` and
    /// `explain`).
    pub fn to_json(&self) -> Json {
        let lat = self.latency_us.snapshot("latency_us");
        let (p50, p90, p99) = lat.percentiles();
        Json::obj([
            ("executions", Json::int(self.executions())),
            ("cancelled", Json::int(self.cancellations())),
            (
                "nodes_expanded_total",
                Json::int(self.nodes_expanded_total()),
            ),
            ("nodes_expanded_last", Json::int(self.nodes_expanded_last())),
            (
                "latency_us",
                Json::obj([
                    ("count", Json::int(lat.count)),
                    ("mean", Json::num(lat.mean())),
                    ("p50", Json::int(p50)),
                    ("p90", Json::int(p90)),
                    ("p99", Json::int(p99)),
                    ("max", Json::int(lat.max)),
                ]),
            ),
        ])
    }
}

/// A memoized evaluation plan: the WDPT in canonical variable space plus
/// per-node decomposition/core metadata, the cost-based join orders, and
/// accumulated runtime stats.
#[derive(Debug)]
pub struct Plan {
    /// The parsed tree over canonical variables.
    pub wdpt: Wdpt,
    /// `canon_vars[k]` is the interned canonical variable `#k`.
    pub canon_vars: Vec<Var>,
    /// Per-node metadata, indexed by preorder node id.
    pub nodes: Vec<NodePlan>,
    /// Runtime stats accumulated across this plan's executions.
    pub stats: PlanStats,
    /// The cost-based per-node atom orders currently in force. Swapped as
    /// a whole on statistics refresh and adaptive re-plan, so executing
    /// requests keep the `Arc` they read — a re-plan never tears an order
    /// out from under a running evaluation.
    pub exec: RwLock<Arc<ExecPlan>>,
    /// Consecutive executions whose observed work diverged ≥ the
    /// configured factor from the estimate (the re-plan trigger streak).
    divergent: AtomicU32,
}

impl Plan {
    /// The exec plan currently in force.
    pub fn exec_plan(&self) -> Arc<ExecPlan> {
        Arc::clone(&self.exec.read().expect("exec lock"))
    }
}

/// Bumps the per-strategy counters for the enumerators that produced
/// `exec`'s node orders — one increment per planned node, so the metrics
/// reflect the strategy mix actually installed, not merely requested.
fn count_strategies(exec: &ExecPlan) {
    for n in &exec.nodes {
        match n.chosen {
            Strategy::Greedy => counter!("serve.plan.strategy.greedy").add(1),
            Strategy::Dp => counter!("serve.plan.strategy.dp").add(1),
            Strategy::Bushy => counter!("serve.plan.strategy.bushy").add(1),
            Strategy::Auto => {}
        }
    }
}

/// Re-plans `plan` against `stats` if its exec plan was costed under a
/// different statistics epoch (hot reload, delta apply). The rebuild keeps
/// the strategy currently in force and swaps atomically; concurrent
/// executions finish on the `Arc` they already hold.
pub fn refresh_if_stale(
    plan: &Plan,
    stats: &StatsCatalog,
    token: &CancelToken,
) -> Result<bool, Cancelled> {
    let strategy = {
        let exec = plan.exec.read().expect("exec lock");
        if exec.stats_epoch == stats.epoch() {
            return Ok(false);
        }
        exec.strategy
    };
    let exec = Arc::new(plan_wdpt(&plan.wdpt, stats, strategy, token)?);
    count_strategies(&exec);
    counter!("serve.plan.stats_refresh").add(1);
    *plan.exec.write().expect("exec lock") = exec;
    Ok(true)
}

/// The adaptive re-planning check, run after each recorded execution:
/// when the observed `cq.nodes_expanded` of the last run is at least
/// `factor`× the exec plan's estimate for `runs` consecutive executions,
/// the entry is rebuilt with the next strategy in the rotation
/// (`greedy → dp → bushy → greedy`) and `serve.plan.replans` increments.
/// Sustained divergence — not a single outlier — is the trigger, so one
/// unlucky ancestor context doesn't discard a good plan. Returns whether a
/// re-plan happened.
pub fn maybe_replan(
    plan: &Plan,
    stats: &StatsCatalog,
    factor: u64,
    runs: u32,
    token: &CancelToken,
) -> Result<bool, Cancelled> {
    if runs == 0 {
        return Ok(false); // re-planning disabled
    }
    let observed = plan.stats.nodes_expanded_last();
    let (est, strategy) = {
        let exec = plan.exec.read().expect("exec lock");
        (exec.est_nodes().max(1.0), exec.strategy)
    };
    if (observed as f64) < factor as f64 * est {
        plan.divergent.store(0, Relaxed);
        return Ok(false);
    }
    let streak = plan.divergent.fetch_add(1, Relaxed) + 1;
    if streak < runs {
        return Ok(false);
    }
    plan.divergent.store(0, Relaxed);
    let next = strategy.rotate();
    let exec = Arc::new(plan_wdpt(&plan.wdpt, stats, next, token)?);
    count_strategies(&exec);
    counter!("serve.plan.replans").add(1);
    *plan.exec.write().expect("exec lock") = exec;
    Ok(true)
}

/// Builds a plan from a canonicalized query. This is the expensive path
/// the cache exists to skip: the core computation runs a homomorphism
/// search per node and the width computations run decomposition searches
/// (observable as `decomp.tw_search_nodes` / `decomp.hw_search_nodes`).
/// All of them are worst-case exponential in the *query* size, so every
/// search loop polls the request's deadline token.
///
/// `wdpt` is the tree already translated in the request's front half,
/// under the shared interner lock — so every id stored in the returned
/// [`Plan`] is consistent with the shared interner and the loaded
/// databases. `i` is a **scratch** interner (a clone of the shared one):
/// the core computation freezes variables into fresh constants, and none
/// of those may leak into shared state. Nothing interned into `i` outlives
/// this call.
pub fn build_plan(
    canon: &CanonicalQuery,
    wdpt: &Wdpt,
    i: &mut Interner,
    stats: &StatsCatalog,
    strategy: Strategy,
    token: &CancelToken,
) -> Result<Plan, Cancelled> {
    let _span = wdpt_obs::span!("serve.plan.build");
    let mut nodes = Vec::with_capacity(wdpt.node_count());
    for t in 0..wdpt.node_count() {
        token.check()?;
        let q = wdpt.node_cq(t);
        let core = try_core_of(&q, i, token)?;
        nodes.push(NodePlan {
            atoms: q.body().len(),
            core_atoms: core.body().len(),
            treewidth: try_treewidth_of(&core, token)?,
            acyclic: try_in_hw(&core, 1, token)?,
        });
    }
    let exec = Arc::new(plan_wdpt(wdpt, stats, strategy, token)?);
    count_strategies(&exec);
    // The canonical variables were interned during canonicalization, so
    // looking them up in the scratch clone yields the shared ids.
    let canon_vars = (0..canon.request_vars.len())
        .map(|k| canon_var(i, k))
        .collect();
    Ok(Plan {
        wdpt: wdpt.clone(),
        canon_vars,
        nodes,
        stats: PlanStats::default(),
        exec: RwLock::new(exec),
        divergent: AtomicU32::new(0),
    })
}

/// The `explain`/slowlog object describing the join orders in force:
/// strategy, per-node atom order with the enumerator that chose it, and
/// estimated vs last-observed cost.
pub fn exec_plan_json(plan: &Plan) -> Json {
    let exec = plan.exec_plan();
    let nodes = exec
        .nodes
        .iter()
        .map(|n| {
            Json::obj([
                (
                    "order",
                    Json::Arr(n.order.iter().map(|&i| Json::int(i as u64)).collect()),
                ),
                ("chosen", Json::str(n.chosen.as_str())),
                ("est_nodes", Json::num(n.est_nodes)),
                ("est_rows", Json::num(n.est_rows)),
            ])
        })
        .collect();
    Json::obj([
        ("strategy", Json::str(exec.strategy.as_str())),
        ("nodes", Json::Arr(nodes)),
        ("est_nodes", Json::num(exec.est_nodes())),
        (
            "actual_nodes_last",
            Json::int(plan.stats.nodes_expanded_last()),
        ),
        ("stats_epoch", Json::int(exec.stats_epoch)),
    ])
}

/// The `explain` response object for one plan: cache disposition, per-node
/// decomposition facts, and accumulated runtime stats.
pub fn explain_json(plan: &Plan, cache_status: &str) -> Json {
    let nodes = plan
        .nodes
        .iter()
        .map(|n| {
            Json::obj([
                ("atoms", Json::int(n.atoms as u64)),
                ("core_atoms", Json::int(n.core_atoms as u64)),
                ("treewidth", Json::int(n.treewidth as u64)),
                ("acyclic", Json::Bool(n.acyclic)),
            ])
        })
        .collect();
    Json::obj([
        ("cache", Json::str(cache_status)),
        ("nodes", Json::Arr(nodes)),
        ("plan", exec_plan_json(plan)),
        ("stats", plan.stats.to_json()),
    ])
}

/// The in-flight build of one canonical key. `OnceLock::get_or_init`
/// gives exactly the coalescing the cache needs: the first arrival runs
/// the build, identical concurrent requests block on the slot (and only
/// on the slot — no global lock), and everyone shares the result.
type Slot = OnceLock<Result<Arc<Plan>, Cancelled>>;

struct CacheInner {
    map: HashMap<String, Arc<Plan>>,
    /// FIFO eviction order (insertion order of keys).
    order: VecDeque<String>,
    /// In-flight builds by canonical key.
    building: HashMap<String, Arc<Slot>>,
}

/// A bounded, thread-shared map from canonical key to [`Plan`], with
/// FIFO eviction and hit/miss/bypass counters in the `wdpt-obs` registry.
pub struct PlanCache {
    enabled: bool,
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl PlanCache {
    /// `enabled = false` builds every plan fresh (the `--no-plan-cache`
    /// ablation); `capacity` bounds the number of retained plans.
    pub fn new(enabled: bool, capacity: usize) -> PlanCache {
        PlanCache {
            enabled,
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                building: HashMap::new(),
            }),
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// True iff no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether caching is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Runtime stats of every cached plan as a JSON array (insertion
    /// order), each entry carrying its canonical key and
    /// [`PlanStats::to_json`]. The cache lock is held only to clone the
    /// `Arc`s; the stats reads are lock-free.
    pub fn stats_json(&self) -> Json {
        let plans: Vec<(String, Arc<Plan>)> = {
            let inner = self.inner.lock().expect("cache lock");
            inner
                .order
                .iter()
                .filter_map(|k| inner.map.get(k).map(|p| (k.clone(), Arc::clone(p))))
                .collect()
        };
        Json::Arr(
            plans
                .into_iter()
                .map(|(key, plan)| {
                    let mut obj = match plan.stats.to_json() {
                        Json::Obj(m) => m,
                        _ => unreachable!("PlanStats::to_json returns an object"),
                    };
                    obj.insert("key".to_string(), Json::str(key));
                    obj.insert("nodes".to_string(), Json::int(plan.nodes.len() as u64));
                    let exec = plan.exec_plan();
                    obj.insert("strategy".to_string(), Json::str(exec.strategy.as_str()));
                    obj.insert("est_nodes".to_string(), Json::num(exec.est_nodes()));
                    Json::Obj(obj)
                })
                .collect(),
        )
    }

    /// Looks up the canonical key, building (and inserting) the plan on a
    /// miss. Returns the plan and `"hit"`, `"miss"`, or `"off"` for the
    /// response's cache field.
    ///
    /// Locking discipline: the global cache mutex is held only for map
    /// lookups and insertions — never across a build. A miss claims a
    /// per-key in-flight [`Slot`]; the build then runs against a clone of
    /// the shared interner (taken under a brief interner lock), so a
    /// slow-to-plan query blocks *only* concurrent identical requests,
    /// which coalesce onto the same slot instead of duplicating the work.
    /// A build aborted by its request's deadline is never inserted; its
    /// waiters retry under their own tokens.
    pub fn get_or_build(
        &self,
        canon: &CanonicalQuery,
        wdpt: &Wdpt,
        interner: &Mutex<Interner>,
        stats: &StatsCatalog,
        strategy: Strategy,
        token: &CancelToken,
    ) -> Result<(Arc<Plan>, &'static str), Cancelled> {
        // Strategy is part of the identity: the same α-renamed query
        // requested under `dp` and `bushy` holds two independent entries
        // (each with its own runtime stats and re-planning state).
        let key = format!("{}|{}", canon.key, strategy);
        let build = || {
            let mut scratch = interner.lock().expect("interner lock").clone();
            build_plan(canon, wdpt, &mut scratch, stats, strategy, token).map(Arc::new)
        };
        if !self.enabled {
            counter!("serve.plan_cache.bypass").add(1);
            return build().map(|p| (p, "off"));
        }
        loop {
            let (slot, claimed) = {
                let mut inner = self.inner.lock().expect("cache lock");
                if let Some(plan) = inner.map.get(&key) {
                    counter!("serve.plan_cache.hit").add(1);
                    let plan = Arc::clone(plan);
                    drop(inner);
                    // A reload/delta since this entry was planned leaves
                    // its orders costed against dead statistics — rebuild
                    // them (not the whole entry) before reuse.
                    refresh_if_stale(&plan, stats, token)?;
                    return Ok((plan, "hit"));
                }
                match inner.building.get(&key) {
                    Some(slot) => (Arc::clone(slot), false),
                    None => {
                        let slot: Arc<Slot> = Arc::new(OnceLock::new());
                        inner.building.insert(key.clone(), Arc::clone(&slot));
                        (slot, true)
                    }
                }
            };
            if claimed {
                counter!("serve.plan_cache.miss").add(1);
            } else {
                counter!("serve.plan_cache.coalesced").add(1);
            }
            // Build — or block on the identical request already building —
            // with no global lock held.
            let result = slot.get_or_init(build).clone();
            // Whoever gets here first publishes the result and retires the
            // slot (the pointer check keeps a stale slot from clobbering a
            // retry's fresh one).
            {
                let mut inner = self.inner.lock().expect("cache lock");
                let current = inner
                    .building
                    .get(&key)
                    .is_some_and(|s| Arc::ptr_eq(s, &slot));
                if current {
                    inner.building.remove(&key);
                    if let Ok(plan) = &result {
                        inner.map.insert(key.clone(), Arc::clone(plan));
                        inner.order.push_back(key.clone());
                        while inner.map.len() > self.capacity {
                            if let Some(old) = inner.order.pop_front() {
                                inner.map.remove(&old);
                                counter!("serve.plan_cache.evicted").add(1);
                            }
                        }
                    }
                }
            }
            match result {
                Ok(plan) => return Ok((plan, if claimed { "miss" } else { "hit" })),
                Err(Cancelled) => {
                    // The build ran under *some* request's deadline, not
                    // necessarily ours. If our token is still live, retry
                    // on a fresh slot; otherwise surface our own expiry.
                    token.check()?;
                }
            }
        }
    }
}
