//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Each request is one JSON object on one line; the server answers with
//! zero or more `row` lines followed by exactly one terminal status line
//! (`ok`, `error`, `cancelled`, `overloaded`, or `shutting_down`). The
//! framing is [`wdpt_obs::write_json_line`] / [`wdpt_obs::read_json_line`]
//! — the same one-line-one-document discipline as the `--json` benchmark
//! output, so `json_check` validates server transcripts too.
//!
//! Request operations:
//!
//! * `{"op":"query","query":"SELECT … WHERE { … }", …}` — evaluate a
//!   SPARQL {AND, OPT} query. Optional fields: `id` (echoed back),
//!   `db` (named database), `deadline_ms`, `profile` (attach a
//!   [`wdpt_core` profile] to the `ok` line), `explain` (attach the cached
//!   plan's per-node facts and accumulated runtime stats), `max_rows`.
//! * `{"op":"ping"}` — liveness check.
//! * `{"op":"stats"}` — metrics snapshot (cache hit/miss counters, request
//!   tallies) without touching any database.
//! * `{"op":"metrics","format":"json"|"text"}` — the full telemetry
//!   surface: every counter, gauge, and histogram (with derived
//!   p50/p90/p99) plus per-plan runtime stats as JSON, or the same
//!   registry as Prometheus-style text exposition embedded in the
//!   response's `"text"` field.
//! * `{"op":"slowlog","keep":true}` — drain (or, with `keep`, peek at) the
//!   bounded ring of slow and deadline-exceeded queries, each entry
//!   carrying its stage-timed trace and captured EXPLAIN profile.
//! * `{"op":"shutdown"}` — begin graceful shutdown: in-flight and queued
//!   work completes, new queries get `shutting_down`.
//! * `{"op":"reload","snapshot":"base.snap","deltas":["d1.delta"],"db":"name"}`
//!   — load + verify a snapshot (and optional delta chain) without blocking
//!   workers, then atomically swap the named database (default database if
//!   `db` is omitted). In-flight queries finish against the old database;
//!   requests admitted after the swap see the new one.
//! * `{"op":"subscribe","base":"<head hex>"}` — turn the connection into a
//!   replication stream: the primary replays the delta suffix past `base`
//!   (or a full bootstrap when `base` is absent/unknown) and then pushes
//!   every subsequently accepted delta. Frame grammar in
//!   [`wdpt_repl::frames`].
//!
//! When the server has a chain identity (it serves a snapshot with a
//! replication log, or follows a primary), terminal `ok` and `reload`
//! lines carry `"head":"<hex>"` — the chain-head consistency token. A
//! query may demand `"min_head":"<hex>"`; a replica that has not applied
//! that position by the deadline answers with a typed `stale_replica`
//! error instead of stale data.

use wdpt_obs::Json;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate a query.
    Query {
        /// Client-chosen id echoed on every response line.
        id: Option<String>,
        /// The SPARQL query text.
        query: String,
        /// Named database; `None` means the server default.
        db: Option<String>,
        /// Per-request deadline in milliseconds; `None` means the server
        /// default. Clamped to the server maximum.
        deadline_ms: Option<u64>,
        /// Attach the evaluation profile to the `ok` line.
        profile: bool,
        /// Attach the plan's per-node facts and accumulated runtime stats
        /// (executions, nodes expanded, latency percentiles) to the `ok`
        /// line.
        explain: bool,
        /// Cap on the number of streamed `row` lines.
        max_rows: Option<usize>,
        /// Consistency token: serve only at-or-after this chain position,
        /// waiting up to the deadline, else answer `stale_replica`.
        min_head: Option<u64>,
    },
    /// Liveness check.
    Ping,
    /// Metrics snapshot.
    Stats,
    /// Full telemetry snapshot: counters, gauges, histograms with derived
    /// percentiles, and per-plan runtime stats.
    Metrics {
        /// Client-chosen id echoed on the response line.
        id: Option<String>,
        /// `true` for Prometheus-style text exposition (in the response's
        /// `"text"` field), `false` for structured JSON.
        text: bool,
    },
    /// Drain (or peek at) the slow-query ring buffer.
    Slowlog {
        /// Client-chosen id echoed on the response line.
        id: Option<String>,
        /// `true` leaves the entries in the ring instead of draining.
        keep: bool,
    },
    /// Graceful shutdown.
    Shutdown,
    /// Hot-swap a served database from a snapshot (+ delta chain).
    Reload {
        /// Client-chosen id echoed on the response line.
        id: Option<String>,
        /// Named database to swap; `None` means the server default.
        db: Option<String>,
        /// Path (as seen by the server) of the base snapshot.
        snapshot: String,
        /// Paths of delta files to apply on top, in chain order.
        deltas: Vec<String>,
    },
    /// Turn this connection into a replication stream (primary side).
    Subscribe {
        /// Client-chosen id echoed on the handshake line.
        id: Option<String>,
        /// The follower's current chain head, if it has one.
        base: Option<u64>,
    },
}

impl Request {
    /// Decodes a request from its wire object. `Err` carries a message for
    /// the `bad_request` error line.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing \"op\" field".to_string())?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "metrics" => {
                let id = v.get("id").and_then(Json::as_str).map(str::to_string);
                let text = match v.get("format") {
                    None | Some(Json::Null) => false,
                    Some(j) => match j.as_str() {
                        Some("json") => false,
                        Some("text") | Some("prometheus") => true,
                        _ => {
                            return Err(
                                "\"format\" must be \"json\", \"text\", or \"prometheus\"".into()
                            )
                        }
                    },
                };
                Ok(Request::Metrics { id, text })
            }
            "slowlog" => {
                let id = v.get("id").and_then(Json::as_str).map(str::to_string);
                let keep = match v.get("keep") {
                    None | Some(Json::Null) => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => return Err("\"keep\" must be a boolean".into()),
                };
                Ok(Request::Slowlog { id, keep })
            }
            "reload" => {
                let snapshot = v
                    .get("snapshot")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "reload op requires a string \"snapshot\" field".to_string())?
                    .to_string();
                let id = v.get("id").and_then(Json::as_str).map(str::to_string);
                let db = v.get("db").and_then(Json::as_str).map(str::to_string);
                let deltas = match v.get("deltas") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(Json::Arr(items)) => {
                        let mut out = Vec::with_capacity(items.len());
                        for item in items {
                            out.push(
                                item.as_str()
                                    .ok_or_else(|| {
                                        "\"deltas\" must be an array of strings".to_string()
                                    })?
                                    .to_string(),
                            );
                        }
                        out
                    }
                    Some(_) => return Err("\"deltas\" must be an array of strings".into()),
                };
                Ok(Request::Reload {
                    id,
                    db,
                    snapshot,
                    deltas,
                })
            }
            "subscribe" => {
                let id = v.get("id").and_then(Json::as_str).map(str::to_string);
                let base = match v.get("base") {
                    None | Some(Json::Null) => None,
                    Some(j) => Some(
                        j.as_str()
                            .and_then(wdpt_store::parse_head_hex)
                            .ok_or("\"base\" must be a 16-digit hex chain-head hash")?,
                    ),
                };
                Ok(Request::Subscribe { id, base })
            }
            "query" => {
                let query = v
                    .get("query")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "query op requires a string \"query\" field".to_string())?
                    .to_string();
                let id = v.get("id").and_then(Json::as_str).map(str::to_string);
                let db = v.get("db").and_then(Json::as_str).map(str::to_string);
                let deadline_ms = match v.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(j) => match j.as_num() {
                        Some(ms) if ms >= 0.0 => Some(ms as u64),
                        _ => return Err("\"deadline_ms\" must be a non-negative number".into()),
                    },
                };
                let profile = matches!(v.get("profile"), Some(Json::Bool(true)));
                let explain = matches!(v.get("explain"), Some(Json::Bool(true)));
                let max_rows = match v.get("max_rows") {
                    None | Some(Json::Null) => None,
                    Some(j) => match j.as_num() {
                        Some(n) if n >= 0.0 => Some(n as usize),
                        _ => return Err("\"max_rows\" must be a non-negative number".into()),
                    },
                };
                let min_head = match v.get("min_head") {
                    None | Some(Json::Null) => None,
                    Some(j) => Some(
                        j.as_str()
                            .and_then(wdpt_store::parse_head_hex)
                            .ok_or("\"min_head\" must be a 16-digit hex chain-head hash")?,
                    ),
                };
                Ok(Request::Query {
                    id,
                    query,
                    db,
                    deadline_ms,
                    profile,
                    explain,
                    max_rows,
                    min_head,
                })
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Encodes the request as its wire object (used by `loadgen` and
    /// tests; the server only decodes).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::obj([("op", Json::str("ping"))]),
            Request::Stats => Json::obj([("op", Json::str("stats"))]),
            Request::Shutdown => Json::obj([("op", Json::str("shutdown"))]),
            Request::Metrics { id, text } => {
                let mut pairs = vec![("op".to_string(), Json::str("metrics"))];
                if let Some(id) = id {
                    pairs.push(("id".to_string(), Json::str(id.clone())));
                }
                if *text {
                    pairs.push(("format".to_string(), Json::str("text")));
                }
                Json::obj(pairs)
            }
            Request::Slowlog { id, keep } => {
                let mut pairs = vec![("op".to_string(), Json::str("slowlog"))];
                if let Some(id) = id {
                    pairs.push(("id".to_string(), Json::str(id.clone())));
                }
                if *keep {
                    pairs.push(("keep".to_string(), Json::Bool(true)));
                }
                Json::obj(pairs)
            }
            Request::Reload {
                id,
                db,
                snapshot,
                deltas,
            } => {
                let mut pairs = vec![
                    ("op".to_string(), Json::str("reload")),
                    ("snapshot".to_string(), Json::str(snapshot.clone())),
                ];
                if let Some(id) = id {
                    pairs.push(("id".to_string(), Json::str(id.clone())));
                }
                if let Some(db) = db {
                    pairs.push(("db".to_string(), Json::str(db.clone())));
                }
                if !deltas.is_empty() {
                    pairs.push((
                        "deltas".to_string(),
                        Json::Arr(deltas.iter().map(|d| Json::str(d.clone())).collect()),
                    ));
                }
                Json::obj(pairs)
            }
            Request::Subscribe { id, base } => {
                let mut pairs = vec![("op".to_string(), Json::str("subscribe"))];
                if let Some(id) = id {
                    pairs.push(("id".to_string(), Json::str(id.clone())));
                }
                if let Some(base) = base {
                    pairs.push(("base".to_string(), Json::str(wdpt_store::head_hex(*base))));
                }
                Json::obj(pairs)
            }
            Request::Query {
                id,
                query,
                db,
                deadline_ms,
                profile,
                explain,
                max_rows,
                min_head,
            } => {
                let mut pairs = vec![
                    ("op".to_string(), Json::str("query")),
                    ("query".to_string(), Json::str(query.clone())),
                ];
                if let Some(id) = id {
                    pairs.push(("id".to_string(), Json::str(id.clone())));
                }
                if let Some(db) = db {
                    pairs.push(("db".to_string(), Json::str(db.clone())));
                }
                if let Some(ms) = deadline_ms {
                    pairs.push(("deadline_ms".to_string(), Json::int(*ms)));
                }
                if *profile {
                    pairs.push(("profile".to_string(), Json::Bool(true)));
                }
                if *explain {
                    pairs.push(("explain".to_string(), Json::Bool(true)));
                }
                if let Some(n) = max_rows {
                    pairs.push(("max_rows".to_string(), Json::int(*n as u64)));
                }
                if let Some(h) = min_head {
                    pairs.push(("min_head".to_string(), Json::str(wdpt_store::head_hex(*h))));
                }
                Json::obj(pairs)
            }
        }
    }
}

/// Attaches the echoed request id, if any.
fn with_id(mut pairs: Vec<(String, Json)>, id: Option<&str>) -> Json {
    if let Some(id) = id {
        pairs.push(("id".to_string(), Json::str(id)));
    }
    Json::obj(pairs)
}

/// One streamed answer: `{"kind":"row","bindings":{var: const, …}}`.
pub fn row_line(id: Option<&str>, bindings: Vec<(String, String)>) -> Json {
    with_id(
        vec![
            ("kind".to_string(), Json::str("row")),
            (
                "bindings".to_string(),
                Json::obj(bindings.into_iter().map(|(k, v)| (k, Json::str(v)))),
            ),
        ],
        id,
    )
}

/// Terminal success line. `cache` is `"hit"`, `"miss"`, or `"off"`;
/// `rows` is how many row lines were streamed (≤ `answers` under
/// `max_rows` truncation).
pub fn ok_line(
    id: Option<&str>,
    answers: usize,
    rows: usize,
    cache: &str,
    wall_us: u64,
    profile: Option<Json>,
    explain: Option<Json>,
) -> Json {
    let mut pairs = vec![
        ("status".to_string(), Json::str("ok")),
        ("answers".to_string(), Json::int(answers as u64)),
        ("rows".to_string(), Json::int(rows as u64)),
        ("cache".to_string(), Json::str(cache)),
        ("wall_us".to_string(), Json::int(wall_us)),
    ];
    if let Some(p) = profile {
        pairs.push(("profile".to_string(), p));
    }
    if let Some(e) = explain {
        pairs.push(("explain".to_string(), e));
    }
    with_id(pairs, id)
}

/// The `metrics` op's JSON-format response: the full registry snapshot
/// (rendered by `wdpt_obs::snapshot_to_json`) plus per-plan runtime stats.
pub fn metrics_json_line(id: Option<&str>, metrics: Json, plans: Json) -> Json {
    with_id(
        vec![
            ("status".to_string(), Json::str("ok")),
            ("kind".to_string(), Json::str("metrics")),
            ("format".to_string(), Json::str("json")),
            ("metrics".to_string(), metrics),
            ("plans".to_string(), plans),
        ],
        id,
    )
}

/// The `metrics` op's text-format response: Prometheus exposition embedded
/// as one JSON string (the wire framing is line-based JSON, so the client
/// unwraps `"text"` to recover the multi-line exposition verbatim).
pub fn metrics_text_line(id: Option<&str>, text: String) -> Json {
    with_id(
        vec![
            ("status".to_string(), Json::str("ok")),
            ("kind".to_string(), Json::str("metrics")),
            ("format".to_string(), Json::str("text")),
            ("text".to_string(), Json::str(text)),
        ],
        id,
    )
}

/// The `slowlog` op's response: the ring's entries oldest-first, plus how
/// many older entries were dropped at capacity since the last drain.
pub fn slowlog_line(id: Option<&str>, entries: Vec<Json>, dropped: u64) -> Json {
    with_id(
        vec![
            ("status".to_string(), Json::str("ok")),
            ("kind".to_string(), Json::str("slowlog")),
            ("entries".to_string(), Json::Arr(entries)),
            ("dropped".to_string(), Json::int(dropped)),
        ],
        id,
    )
}

/// Terminal error line. `kind` is a machine-readable class
/// (`bad_request`, `parse_error`, `not_well_designed`, `unknown_db`,
/// `unknown_select_var`); `at` is a byte offset into the query for parse
/// errors.
pub fn error_line(id: Option<&str>, kind: &str, message: &str, at: Option<usize>) -> Json {
    let mut pairs = vec![
        ("status".to_string(), Json::str("error")),
        ("kind".to_string(), Json::str(kind)),
        ("message".to_string(), Json::str(message)),
    ];
    if let Some(at) = at {
        pairs.push(("at".to_string(), Json::int(at as u64)));
    }
    with_id(pairs, id)
}

/// Terminal line for a query whose deadline expired: the cooperative
/// cancellation token tripped inside the evaluation loops.
pub fn cancelled_line(id: Option<&str>, deadline_ms: u64, wall_us: u64) -> Json {
    with_id(
        vec![
            ("status".to_string(), Json::str("cancelled")),
            ("deadline_ms".to_string(), Json::int(deadline_ms)),
            ("wall_us".to_string(), Json::int(wall_us)),
        ],
        id,
    )
}

/// Backpressure line: the bounded queue is full. The client should wait
/// `retry_after_ms` before resubmitting.
pub fn overloaded_line(id: Option<&str>, retry_after_ms: u64) -> Json {
    with_id(
        vec![
            ("status".to_string(), Json::str("overloaded")),
            ("retry_after_ms".to_string(), Json::int(retry_after_ms)),
        ],
        id,
    )
}

/// Terminal line for a successful `reload`: what was swapped in, how many
/// deltas were chained, and how long the load + swap took.
pub fn reload_line(
    id: Option<&str>,
    db: &str,
    tuples: usize,
    deltas_applied: usize,
    wall_us: u64,
) -> Json {
    with_id(
        vec![
            ("status".to_string(), Json::str("ok")),
            ("kind".to_string(), Json::str("reload")),
            ("db".to_string(), Json::str(db)),
            ("tuples".to_string(), Json::int(tuples as u64)),
            (
                "deltas_applied".to_string(),
                Json::int(deltas_applied as u64),
            ),
            ("wall_us".to_string(), Json::int(wall_us)),
        ],
        id,
    )
}

/// The server is draining; no new queries are accepted.
pub fn shutting_down_line(id: Option<&str>) -> Json {
    with_id(vec![("status".to_string(), Json::str("shutting_down"))], id)
}

/// Attaches the served chain-head hash (the read-your-writes consistency
/// token) to a terminal line, when the serving state has a chain identity.
pub fn attach_head(line: &mut Json, head: Option<u64>) {
    if let (Json::Obj(pairs), Some(h)) = (line, head) {
        pairs.insert("head".to_string(), Json::str(wdpt_store::head_hex(h)));
    }
}

/// Typed error for a replica that could not reach `min_head` before the
/// deadline. `head` is the position it *is* at, if it has one.
pub fn stale_replica_line(id: Option<&str>, min_head: u64, head: Option<u64>) -> Json {
    let mut line = error_line(
        id,
        "stale_replica",
        "replica has not applied the requested chain position",
        None,
    );
    if let Json::Obj(pairs) = &mut line {
        pairs.insert(
            "min_head".to_string(),
            Json::str(wdpt_store::head_hex(min_head)),
        );
    }
    attach_head(&mut line, head);
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_wire_form() {
        let reqs = vec![
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Query {
                id: Some("q1".into()),
                query: "SELECT ?x WHERE { (?x, p, c) }".into(),
                db: Some("music".into()),
                deadline_ms: Some(250),
                profile: true,
                explain: true,
                max_rows: Some(10),
                min_head: Some(0xdead_beef_0102_0304),
            },
            Request::Query {
                id: None,
                query: "(?x, p, ?y)".into(),
                db: None,
                deadline_ms: None,
                profile: false,
                explain: false,
                max_rows: None,
                min_head: None,
            },
            Request::Subscribe {
                id: Some("f1".into()),
                base: Some(0xabcd),
            },
            Request::Subscribe {
                id: None,
                base: None,
            },
            Request::Metrics {
                id: Some("m1".into()),
                text: true,
            },
            Request::Metrics {
                id: None,
                text: false,
            },
            Request::Slowlog {
                id: Some("s1".into()),
                keep: true,
            },
            Request::Slowlog {
                id: None,
                keep: false,
            },
            Request::Reload {
                id: Some("r1".into()),
                db: Some("music".into()),
                snapshot: "/tmp/base.snap".into(),
                deltas: vec!["/tmp/d1.delta".into(), "/tmp/d2.delta".into()],
            },
            Request::Reload {
                id: None,
                db: None,
                snapshot: "base.snap".into(),
                deltas: Vec::new(),
            },
        ];
        for r in reqs {
            let wire = r.to_json();
            let text = wire.to_string();
            let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        let bad = [
            r#"{"query":"x"}"#,
            r#"{"op":"evaluate"}"#,
            r#"{"op":"query"}"#,
            r#"{"op":"query","query":"x","deadline_ms":-1}"#,
            r#"{"op":"query","query":"x","max_rows":"many"}"#,
            r#"{"op":"reload"}"#,
            r#"{"op":"reload","snapshot":"s","deltas":"d"}"#,
            r#"{"op":"reload","snapshot":"s","deltas":[1]}"#,
            r#"{"op":"metrics","format":"xml"}"#,
            r#"{"op":"metrics","format":7}"#,
            r#"{"op":"slowlog","keep":"yes"}"#,
            r#"{"op":"query","query":"x","min_head":"xyz"}"#,
            r#"{"op":"query","query":"x","min_head":7}"#,
            r#"{"op":"subscribe","base":"123"}"#,
        ];
        for text in bad {
            let v = Json::parse(text).unwrap();
            assert!(Request::from_json(&v).is_err(), "accepted {text}");
        }
    }

    #[test]
    fn response_lines_carry_status_and_id() {
        let ok = ok_line(Some("a"), 5, 3, "hit", 120, None, None);
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(ok.get("id").and_then(Json::as_str), Some("a"));
        assert_eq!(ok.get("cache").and_then(Json::as_str), Some("hit"));

        let ok2 = ok_line(
            None,
            1,
            1,
            "miss",
            9,
            None,
            Some(Json::obj([("cache", Json::str("miss"))])),
        );
        assert!(ok2.get("explain").is_some());

        let m = metrics_text_line(Some("m"), "# TYPE x counter\nx 1\n".into());
        assert_eq!(m.get("kind").and_then(Json::as_str), Some("metrics"));
        assert!(m
            .get("text")
            .and_then(Json::as_str)
            .unwrap()
            .contains("# TYPE"));

        let s = slowlog_line(None, vec![Json::obj([("status", Json::str("slow"))])], 2);
        assert_eq!(s.get("kind").and_then(Json::as_str), Some("slowlog"));
        assert_eq!(s.get("dropped").and_then(Json::as_num), Some(2.0));
        assert_eq!(s.get("entries").unwrap().as_arr().unwrap().len(), 1);

        let err = error_line(None, "parse_error", "expected ')'", Some(7));
        assert_eq!(err.get("at").and_then(Json::as_num), Some(7.0));
        assert_eq!(err.get("id"), None);

        let over = overloaded_line(Some("b"), 50);
        assert_eq!(
            over.get("status").and_then(Json::as_str),
            Some("overloaded")
        );
        assert_eq!(
            over.get("retry_after_ms").and_then(Json::as_num),
            Some(50.0)
        );

        let mut with_head = ok_line(None, 1, 1, "hit", 5, None, None);
        attach_head(&mut with_head, None);
        assert_eq!(with_head.get("head"), None);
        attach_head(&mut with_head, Some(0xff));
        assert_eq!(
            with_head.get("head").and_then(Json::as_str),
            Some("00000000000000ff")
        );

        let stale = stale_replica_line(Some("s"), 0xaa, Some(0xbb));
        assert_eq!(stale.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(
            stale.get("kind").and_then(Json::as_str),
            Some("stale_replica")
        );
        assert_eq!(
            stale.get("min_head").and_then(Json::as_str),
            Some("00000000000000aa")
        );
        assert_eq!(
            stale.get("head").and_then(Json::as_str),
            Some("00000000000000bb")
        );

        let row = row_line(Some("c"), vec![("x".into(), "band3".into())]);
        assert_eq!(row.get("kind").and_then(Json::as_str), Some("row"));
        assert_eq!(
            row.get("bindings").unwrap().get("x").and_then(Json::as_str),
            Some("band3")
        );
    }
}
