//! # wdpt-serve — a concurrent WDPT query service
//!
//! The serving layer over the reproduction stack: a TCP service that
//! accepts SPARQL {AND, OPT} queries as newline-delimited JSON, evaluates
//! them with `wdpt_core`'s parallel engine, and streams answers back. The
//! pieces, each its own module:
//!
//! * [`protocol`] — the wire format: one JSON document per line, shared
//!   with the benchmark `--json` output via [`wdpt_obs::write_json_line`].
//! * [`cache`] — the plan cache: queries are α-renamed to a canonical
//!   form, so repeated and variable-renamed queries share one memoized
//!   plan (parsed tree, per-node cores, treewidth/acyclicity facts).
//! * [`server`] — the accept loop, worker pool with a bounded queue
//!   (backpressure answers `overloaded` instead of queueing unboundedly),
//!   per-request deadlines as cooperative [`wdpt_model::CancelToken`]s,
//!   and graceful drain on shutdown.
//! * [`db`] — dataset loading: lenient N-Triples and the workspace
//!   `facts` format.
//!
//! Replication (`wdpt-repl` underneath): a server started with
//! `--repl-log DIR` is a **primary** — it records every accepted reload
//! delta in an append-only log and streams them to followers that connect
//! with the `subscribe` op. A server started with `--follow ADDR` is a
//! **follower** — [`server::FollowerApply`] drives the replicated deltas
//! through the same hot-reload path the `reload` op uses. The chain-head
//! hash doubles as a consistency token (`min_head` on queries).
//!
//! Binaries: `wdpt-serve` (the server) and `loadgen` (a concurrent load
//! generator used by the CI smoke test and the EXPERIMENTS runs).

pub mod cache;
pub mod db;
pub mod protocol;
pub mod server;

pub use cache::{
    build_plan, canonicalize, exec_plan_json, maybe_replan, refresh_if_stale, CanonicalQuery,
    NodePlan, Plan, PlanCache,
};
pub use db::{load_database, looks_like_snapshot, merge_snapshot, parse_dataset, parse_nt};
pub use protocol::Request;
pub use server::{serve, FollowerApply, LoadedChain, ServeConfig, ServeState};
