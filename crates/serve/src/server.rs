//! The concurrent query server: accept loop, worker pool, backpressure,
//! deadlines, graceful shutdown.
//!
//! Threading model:
//!
//! * The **accept loop** ([`serve`]) owns the listener (nonblocking, so it
//!   can notice shutdown) and spawns one thread per connection.
//! * **Connection threads** read request lines, do the cheap front-half of
//!   a query (parse, canonicalize, plan-cache lookup) under the interner
//!   lock, and enqueue an evaluation job on a **bounded** queue
//!   (`std::sync::mpsc::sync_channel`). A full queue is the backpressure
//!   signal: the request is answered `overloaded` immediately rather than
//!   waiting — the client decides whether to retry.
//! * **Worker threads** pull jobs off the shared queue and run the actual
//!   WDPT evaluation with the request's [`CancelToken`] threaded through
//!   the `wdpt-core`/`wdpt-cq` loops. Deadline expiry surfaces as a typed
//!   [`Cancelled`] and an explicit `cancelled` response line.
//!
//! Graceful shutdown: the `shutdown` op (or [`ServeState::begin_shutdown`])
//! flips one flag. The accept loop stops accepting, connection threads
//! answer in-flight requests and close, queued jobs drain through the
//! workers, and [`serve`] joins everything before returning.

use crate::cache::{canonicalize, CanonicalQuery, Plan, PlanCache, PlanError};
use crate::protocol::{
    cancelled_line, error_line, ok_line, overloaded_line, row_line, shutting_down_line, Request,
};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wdpt_model::{CancelToken, Database, Interner, Mapping, Var};
use wdpt_obs::{counter, metrics_snapshot, Json};
use wdpt_sparql::algebra::SparqlError;
use wdpt_sparql::parse_query;

/// Server tunables. [`Default`] gives the values the `wdpt-serve` binary
/// advertises in `--help`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Evaluation worker threads.
    pub workers: usize,
    /// Threads *inside* one evaluation (`evaluate_parallel` fan-out).
    pub eval_threads: usize,
    /// Bounded queue depth between connections and workers; the
    /// backpressure threshold.
    pub queue_capacity: usize,
    /// Deadline applied when a request names none, in milliseconds.
    pub default_deadline_ms: u64,
    /// Upper clamp on requested deadlines, in milliseconds.
    pub max_deadline_ms: u64,
    /// Whether the plan cache is enabled (`--no-plan-cache` ablation).
    pub plan_cache: bool,
    /// Plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Default cap on streamed rows per query.
    pub max_rows: usize,
    /// Suggested client backoff on `overloaded`, in milliseconds.
    pub retry_after_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            eval_threads: 2,
            queue_capacity: 64,
            default_deadline_ms: 10_000,
            max_deadline_ms: 60_000,
            plan_cache: true,
            cache_capacity: 256,
            max_rows: 1_000,
            retry_after_ms: 50,
        }
    }
}

/// Shared server state: configuration, the interner, the named databases,
/// the plan cache, and the shutdown flag.
pub struct ServeState {
    /// The configuration the server was started with.
    pub cfg: ServeConfig,
    interner: Mutex<Interner>,
    dbs: BTreeMap<String, Database>,
    default_db: String,
    cache: PlanCache,
    shutdown: AtomicBool,
}

impl ServeState {
    /// Builds the shared state. `dbs` must contain `default_db`.
    pub fn new(
        cfg: ServeConfig,
        interner: Interner,
        dbs: BTreeMap<String, Database>,
        default_db: impl Into<String>,
    ) -> Arc<ServeState> {
        let default_db = default_db.into();
        assert!(
            dbs.contains_key(&default_db),
            "default database {default_db:?} not loaded"
        );
        let cache = PlanCache::new(cfg.plan_cache, cfg.cache_capacity);
        Arc::new(ServeState {
            cfg,
            interner: Mutex::new(interner),
            dbs,
            default_db,
            cache,
            shutdown: AtomicBool::new(false),
        })
    }

    /// The plan cache (for tests and stats).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Requests graceful shutdown, as the `shutdown` op does.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Front-half of a query without the network: parse, canonicalize,
    /// and consult the plan cache. Used by the plan-cache tests.
    pub fn plan_for(&self, src: &str) -> Result<(Arc<Plan>, &'static str), String> {
        let mut i = self.interner.lock().expect("interner lock");
        let q = parse_query(&mut i, src).map_err(|e| e.message)?;
        let canon = canonicalize(&q, &mut i);
        self.cache
            .get_or_build(&canon, &mut i, CancelToken::never())
            .map_err(|e| e.to_string())
    }
}

/// One evaluation job on the bounded queue.
struct Job {
    id: Option<String>,
    plan: Arc<Plan>,
    cache_status: &'static str,
    db: String,
    request_vars: Vec<String>,
    token: CancelToken,
    deadline_ms: u64,
    profile: bool,
    max_rows: usize,
    resp: mpsc::Sender<Vec<Json>>,
}

/// Runs the server on `listener` until shutdown is requested, then drains
/// queued and in-flight work and returns. The listener is switched to
/// nonblocking mode so the loop can observe the shutdown flag.
pub fn serve(listener: TcpListener, state: Arc<ServeState>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let (tx, rx) = mpsc::sync_channel::<Job>(state.cfg.queue_capacity);
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<_> = (0..state.cfg.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            std::thread::spawn(move || loop {
                let job = match rx.lock().expect("job queue lock").recv() {
                    Ok(job) => job,
                    Err(_) => return, // queue closed and drained
                };
                process(job, &state);
            })
        })
        .collect();

    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !state.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(&state);
                let tx = tx.clone();
                conns.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, state, tx);
                }));
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // Drain: connections finish their in-flight request and exit on the
    // next read-timeout tick; closing the queue stops workers once empty.
    for h in conns {
        let _ = h.join();
    }
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

fn handle_connection(
    stream: TcpStream,
    state: Arc<ServeState>,
    tx: SyncSender<Job>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // The buffer persists across read timeouts: `read_line` appends
    // whatever bytes arrived before the timeout, so a line split across
    // packets survives the `Err` return.
    let mut buf = String::new();
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {
                let line = std::mem::take(&mut buf);
                let lines = handle_line(line.trim(), &state, &tx);
                for l in &lines {
                    wdpt_obs::write_json_line(&mut writer, l)?;
                }
                writer.flush()?;
                if state.is_shutting_down() {
                    return Ok(()); // answered; close so the drain can finish
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if state.is_shutting_down() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Handles one request line, returning the response lines to write.
fn handle_line(line: &str, state: &ServeState, tx: &SyncSender<Job>) -> Vec<Json> {
    if line.is_empty() {
        return Vec::new();
    }
    counter!("serve.requests.received").add(1);
    let value = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            counter!("serve.requests.error").add(1);
            return vec![error_line(
                None,
                "bad_request",
                &format!("invalid JSON: {e}"),
                None,
            )];
        }
    };
    let id_owned = value.get("id").and_then(Json::as_str).map(str::to_string);
    let id = id_owned.as_deref();
    let request = match Request::from_json(&value) {
        Ok(r) => r,
        Err(e) => {
            counter!("serve.requests.error").add(1);
            return vec![error_line(id, "bad_request", &e, None)];
        }
    };
    match request {
        Request::Ping => vec![Json::obj([
            ("status", Json::str("ok")),
            ("kind", Json::str("pong")),
        ])],
        Request::Stats => vec![stats_line(state)],
        Request::Shutdown => {
            state.begin_shutdown();
            vec![Json::obj([
                ("status", Json::str("ok")),
                ("kind", Json::str("shutdown")),
            ])]
        }
        Request::Query {
            id: _,
            query,
            db,
            deadline_ms,
            profile,
            max_rows,
        } => handle_query(
            id,
            &query,
            db.as_deref(),
            deadline_ms,
            profile,
            max_rows,
            state,
            tx,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_query(
    id: Option<&str>,
    query: &str,
    db: Option<&str>,
    deadline_ms: Option<u64>,
    profile: bool,
    max_rows: Option<usize>,
    state: &ServeState,
    tx: &SyncSender<Job>,
) -> Vec<Json> {
    if state.is_shutting_down() {
        counter!("serve.requests.rejected").add(1);
        return vec![shutting_down_line(id)];
    }
    let db_name = db.unwrap_or(&state.default_db);
    if !state.dbs.contains_key(db_name) {
        counter!("serve.requests.error").add(1);
        return vec![error_line(
            id,
            "unknown_db",
            &format!("no database named {db_name:?}"),
            None,
        )];
    }

    // The deadline clock starts before plan building: the core and
    // decomposition searches are worst-case exponential in the query, so
    // an adversarial query must not pin the interner lock past its budget.
    let deadline_ms = deadline_ms
        .unwrap_or(state.cfg.default_deadline_ms)
        .min(state.cfg.max_deadline_ms);
    let token = CancelToken::with_deadline(Duration::from_millis(deadline_ms));
    let start = Instant::now();

    // Front half, under the interner lock: parse, canonicalize, plan.
    let (plan, cache_status, request_vars) = {
        let mut i = state.interner.lock().expect("interner lock");
        let parsed = match parse_query(&mut i, query) {
            Ok(q) => q,
            Err(e) => {
                counter!("serve.requests.error").add(1);
                return vec![error_line(id, "parse_error", &e.message, Some(e.at))];
            }
        };
        let canon = canonicalize(&parsed, &mut i);
        match state.cache.get_or_build(&canon, &mut i, &token) {
            Ok((plan, status)) => (plan, status, canon.request_vars),
            Err(PlanError::Cancelled) => {
                counter!("serve.requests.cancelled").add(1);
                return vec![cancelled_line(
                    id,
                    deadline_ms,
                    start.elapsed().as_micros() as u64,
                )];
            }
            Err(PlanError::Sparql(e)) => {
                counter!("serve.requests.error").add(1);
                let (kind, message) = sparql_error_parts(&e, &i, &canon);
                return vec![error_line(id, kind, &message, None)];
            }
        }
    };

    let (resp_tx, resp_rx) = mpsc::channel();
    let job = Job {
        id: id.map(str::to_string),
        plan,
        cache_status,
        db: db_name.to_string(),
        request_vars,
        token,
        deadline_ms,
        profile,
        max_rows: max_rows.unwrap_or(state.cfg.max_rows),
        resp: resp_tx,
    };
    match tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            counter!("serve.requests.rejected").add(1);
            return vec![overloaded_line(id, state.cfg.retry_after_ms)];
        }
        Err(TrySendError::Disconnected(_)) => {
            counter!("serve.requests.rejected").add(1);
            return vec![shutting_down_line(id)];
        }
    }
    match resp_rx.recv() {
        Ok(lines) => lines,
        Err(_) => vec![error_line(
            id,
            "internal",
            "worker dropped the request",
            None,
        )],
    }
}

/// Maps a [`SparqlError`] from plan building to a response `(kind,
/// message)`, translating canonical variable names back to the request's.
fn sparql_error_parts(
    e: &SparqlError,
    i: &Interner,
    canon: &CanonicalQuery,
) -> (&'static str, String) {
    let name = |v: Var| -> String {
        let n = i.var_name(v);
        n.strip_prefix('#')
            .and_then(|k| k.parse::<usize>().ok())
            .and_then(|k| canon.request_vars.get(k).cloned())
            .unwrap_or_else(|| n.to_string())
    };
    match e {
        SparqlError::NotWellDesigned(v) => (
            "not_well_designed",
            format!(
                "pattern is not well-designed: variable ?{} occurs in an OPT right side and again outside it without occurring on the left",
                name(*v)
            ),
        ),
        SparqlError::UnknownSelectVar(v) => (
            "unknown_select_var",
            format!("SELECT variable ?{} does not occur in the pattern", name(*v)),
        ),
        SparqlError::NotAnRdfTree => ("internal", e.to_string()),
    }
}

/// Worker half: evaluate with the request token and build response lines.
fn process(job: Job, state: &ServeState) {
    let start = Instant::now();
    let db = &state.dbs[&job.db];
    let id = job.id.as_deref();
    let lines = if job.token.poll_deadline() {
        // Expired while queued — never start the evaluation.
        counter!("serve.requests.cancelled").add(1);
        vec![cancelled_line(
            id,
            job.deadline_ms,
            start.elapsed().as_micros() as u64,
        )]
    } else {
        let threads = state.cfg.eval_threads.max(1);
        let result = if job.profile {
            wdpt_core::try_evaluate_parallel_profiled(
                &job.plan.wdpt,
                db,
                threads,
                &job.token,
                "serve.query",
            )
            .map(|(answers, prof)| (answers, Some(prof)))
        } else {
            wdpt_core::try_evaluate_parallel(&job.plan.wdpt, db, threads, &job.token)
                .map(|answers| (answers, None))
        };
        match result {
            Ok((answers, prof)) => {
                let wall_us = start.elapsed().as_micros() as u64;
                let i = state.interner.lock().expect("interner lock");
                let mut lines: Vec<Json> = answers
                    .iter()
                    .take(job.max_rows)
                    .map(|m| row_line(id, render_bindings(m, &job, &i)))
                    .collect();
                let rows = lines.len();
                counter!("serve.requests.ok").add(1);
                lines.push(ok_line(
                    id,
                    answers.len(),
                    rows,
                    job.cache_status,
                    wall_us,
                    prof.map(|p| p.to_json()),
                ));
                lines
            }
            Err(_cancelled) => {
                counter!("serve.requests.cancelled").add(1);
                vec![cancelled_line(
                    id,
                    job.deadline_ms,
                    start.elapsed().as_micros() as u64,
                )]
            }
        }
    };
    // The connection may have vanished; a dead channel is fine.
    let _ = job.resp.send(lines);
}

/// Renders one answer mapping in the request's variable names.
fn render_bindings(m: &Mapping, job: &Job, i: &Interner) -> Vec<(String, String)> {
    job.plan
        .canon_vars
        .iter()
        .zip(&job.request_vars)
        .filter_map(|(&cv, name)| {
            m.get(cv)
                .map(|c| (name.clone(), i.const_name(c).to_string()))
        })
        .collect()
}

/// The `stats` response: cache occupancy plus every registered counter.
fn stats_line(state: &ServeState) -> Json {
    let snap = metrics_snapshot();
    Json::obj([
        ("status".to_string(), Json::str("ok")),
        ("kind".to_string(), Json::str("stats")),
        (
            "cache_size".to_string(),
            Json::int(state.cache.len() as u64),
        ),
        (
            "cache_capacity".to_string(),
            Json::int(state.cache.capacity() as u64),
        ),
        (
            "counters".to_string(),
            Json::obj(
                snap.counters
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::int(*v))),
            ),
        ),
    ])
}
