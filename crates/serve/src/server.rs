//! The concurrent query server: accept loop, worker pool, backpressure,
//! deadlines, graceful shutdown.
//!
//! Threading model:
//!
//! * The **accept loop** ([`serve`]) owns the listener (nonblocking, so it
//!   can notice shutdown) and spawns one thread per connection.
//! * **Connection threads** read request lines and run the query's front
//!   half. Only its *polynomial* part (parse, size caps, canonicalize,
//!   tree translation) holds the interner lock; the worst-case-exponential
//!   planning (cores, decompositions) runs lock-free through the plan
//!   cache's per-key in-flight slots, under the request's [`CancelToken`].
//!   The evaluation job then goes onto a **bounded** queue
//!   (`std::sync::mpsc::sync_channel`). A full queue is the backpressure
//!   signal: the request is answered `overloaded` immediately rather than
//!   waiting — the client decides whether to retry.
//! * **Worker threads** pull jobs off the shared queue and run the actual
//!   WDPT evaluation with the request's [`CancelToken`] threaded through
//!   the `wdpt-core`/`wdpt-cq` loops. Deadline expiry surfaces as a typed
//!   [`Cancelled`] and an explicit `cancelled` response line.
//!
//! Admission control against adversarial queries: [`ServeConfig`] caps the
//! atom and variable counts of a query (planning and evaluation are
//! exponential in query size, and the exact-treewidth DP allocates `2ⁿ`
//! states) and the total interned-symbol count (the shared interner never
//! shrinks; requests that would grow it past `max_symbols` are rejected
//! and their symbols rolled back, so server memory stays bounded under
//! varied query streams).
//!
//! Graceful shutdown: the `shutdown` op (or [`ServeState::begin_shutdown`])
//! flips one flag. The accept loop stops accepting, connection threads
//! answer in-flight requests and close, queued jobs drain through the
//! workers, and [`serve`] joins everything before returning.

use crate::cache::{canonicalize, explain_json, maybe_replan, CanonicalQuery, Plan, PlanCache};
use crate::db::merge_snapshot;
use crate::protocol::{
    attach_head, cancelled_line, error_line, metrics_json_line, metrics_text_line, ok_line,
    overloaded_line, reload_line, row_line, shutting_down_line, slowlog_line, stale_replica_line,
    Request,
};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant, SystemTime};
use wdpt_core::Wdpt;
use wdpt_cq::EXACT_TW_VERTEX_LIMIT;
use wdpt_model::{CancelToken, Cancelled, Database, Interner, Mapping, Var};
use wdpt_obs::trace::Stage;
use wdpt_obs::{
    counter, gauge, gauge_scope, histogram, metrics_snapshot, render_prometheus, snapshot_to_json,
    Json, RequestTrace,
};
use wdpt_plan::{StatsCatalog, Strategy};
use wdpt_repl::frames::{delta_frame, snapshot_frame, subscribed_line};
use wdpt_repl::{Primary, ReplApply, ReplHead, SubscribeStart};
use wdpt_sparql::algebra::SparqlError;
use wdpt_sparql::{parse_query, GraphPattern};

/// Server tunables. [`Default`] gives the values the `wdpt-serve` binary
/// advertises in `--help`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Evaluation worker threads.
    pub workers: usize,
    /// Threads *inside* one evaluation (`evaluate_parallel` fan-out).
    pub eval_threads: usize,
    /// Bounded queue depth between connections and workers; the
    /// backpressure threshold.
    pub queue_capacity: usize,
    /// Deadline applied when a request names none, in milliseconds.
    pub default_deadline_ms: u64,
    /// Upper clamp on requested deadlines, in milliseconds.
    pub max_deadline_ms: u64,
    /// Whether the plan cache is enabled (`--no-plan-cache` ablation).
    pub plan_cache: bool,
    /// Plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Default cap on streamed rows per query.
    pub max_rows: usize,
    /// *Base* client backoff on `overloaded`, in milliseconds. The hint a
    /// client actually receives scales with the current queue depth and
    /// carries a deterministic per-request jitter so a flood of rejected
    /// clients does not retry in lockstep — see [`retry_after_hint`].
    pub retry_after_ms: u64,
    /// Admission cap on a query's triple-pattern count: planning and
    /// evaluation are worst-case exponential in query size, so unbounded
    /// client queries are rejected up front with `query_too_large`.
    pub max_query_atoms: usize,
    /// Admission cap on a query's distinct-variable count. Clamped by
    /// [`ServeState::new`] to the exact-treewidth DP's vertex limit
    /// ([`EXACT_TW_VERTEX_LIMIT`]), past which planning would abort.
    pub max_query_vars: usize,
    /// Upper bound on the shared interner's total symbol count. The
    /// interner never shrinks, so without this cap an adversarial stream
    /// of queries with fresh identifiers grows server memory without
    /// bound; requests that would exceed it are rejected with
    /// `symbol_limit` and their new symbols rolled back.
    pub max_symbols: usize,
    /// Wall-time threshold above which a completed query is captured in
    /// the slow-query ring, in milliseconds. `0` disables the slowlog
    /// (and the per-query profile capture that feeds it).
    pub slowlog_threshold_ms: u64,
    /// Bounded capacity of the slow-query ring; the oldest entry is
    /// dropped (and tallied) when a new one arrives at capacity.
    pub slowlog_capacity: usize,
    /// Master switch for request-level telemetry: stage-timed traces into
    /// the `serve.request.*` histograms and the slowlog's profile capture.
    /// `false` (the `--no-telemetry` ablation) keeps only the lifetime
    /// counters and gauges the serving path always maintained.
    pub telemetry: bool,
    /// Join-order enumeration strategy for cost-based plans
    /// (`--plan-strategy {auto,greedy,dp,bushy}`).
    pub plan_strategy: Strategy,
    /// Adaptive re-planning divergence factor `K`: a cached plan whose
    /// observed `cq.nodes_expanded` is ≥ `K`× its estimate counts as a
    /// divergent run (`--replan-factor`).
    pub replan_factor: u64,
    /// Consecutive divergent runs before the entry is re-planned with the
    /// next strategy in the rotation; `0` disables re-planning
    /// (`--replan-runs`).
    pub replan_runs: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            eval_threads: 2,
            queue_capacity: 64,
            default_deadline_ms: 10_000,
            max_deadline_ms: 60_000,
            plan_cache: true,
            cache_capacity: 256,
            max_rows: 1_000,
            retry_after_ms: 50,
            max_query_atoms: 64,
            max_query_vars: EXACT_TW_VERTEX_LIMIT,
            max_symbols: 1 << 20,
            slowlog_threshold_ms: 1_000,
            slowlog_capacity: 128,
            telemetry: true,
            plan_strategy: Strategy::Auto,
            replan_factor: 4,
            replan_runs: 3,
        }
    }
}

/// The bounded slow-query ring: entries are full JSON documents (query,
/// stage-timed trace, captured EXPLAIN profile) appended by connection
/// threads and drained by the `slowlog` admin op. At capacity the oldest
/// entry is dropped and tallied, so a flood of slow queries costs bounded
/// memory and the drain reports what it missed.
struct SlowLog {
    entries: VecDeque<Json>,
    capacity: usize,
    dropped: u64,
}

impl SlowLog {
    fn push(&mut self, entry: Json) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    /// Returns `(entries oldest-first, dropped-since-last-drain)`; clears
    /// both unless `keep`.
    fn drain(&mut self, keep: bool) -> (Vec<Json>, u64) {
        let dropped = self.dropped;
        if keep {
            (self.entries.iter().cloned().collect(), dropped)
        } else {
            self.dropped = 0;
            (std::mem::take(&mut self.entries).into(), dropped)
        }
    }
}

/// Shared server state: configuration, the interner, the named databases,
/// the plan cache, and the shutdown flag.
///
/// Each database sits behind an [`Arc`] inside an [`RwLock`]'d map so the
/// admin `reload` op can swap in a freshly loaded snapshot atomically:
/// requests resolve their `Arc<Database>` once at admission, so in-flight
/// evaluations keep the database they started with while new requests see
/// the replacement.
/// One served database version paired with the statistics catalog built
/// from it. The two always travel together: every install point swaps a
/// whole `DbEntry` under the map's write lock, so no request can observe a
/// new database with the old version's statistics (or vice versa) — the
/// staleness bug a separate catalog map would invite.
#[derive(Clone)]
struct DbEntry {
    db: Arc<Database>,
    stats: Arc<StatsCatalog>,
}

impl DbEntry {
    fn new(db: Database) -> DbEntry {
        let stats = Arc::new(StatsCatalog::build(&db));
        DbEntry {
            db: Arc::new(db),
            stats,
        }
    }
}

pub struct ServeState {
    /// The configuration the server was started with.
    pub cfg: ServeConfig,
    interner: Mutex<Interner>,
    dbs: RwLock<BTreeMap<String, DbEntry>>,
    default_db: String,
    cache: PlanCache,
    shutdown: AtomicBool,
    /// Jobs currently on (or just popped off) the worker queue; feeds the
    /// depth-scaled `retry_after_ms` hint on `overloaded`.
    queue_depth: AtomicUsize,
    slowlog: Mutex<SlowLog>,
    /// Chain position of the served data, when the server has a chain
    /// identity (primary with a replication log, or follower). Feeds the
    /// `head` field on terminal lines and the `min_head` admission wait.
    repl_head: ReplHead,
    /// The replication hub, present only on a primary (`--repl-log`).
    primary: Mutex<Option<Arc<Primary>>>,
}

impl ServeState {
    /// Builds the shared state. `dbs` must contain `default_db`.
    pub fn new(
        cfg: ServeConfig,
        interner: Interner,
        dbs: BTreeMap<String, Database>,
        default_db: impl Into<String>,
    ) -> Arc<ServeState> {
        let mut cfg = cfg;
        // Beyond the DP limit, exact treewidth aborts the process; a query
        // that large must be rejected at admission instead.
        cfg.max_query_vars = cfg.max_query_vars.min(EXACT_TW_VERTEX_LIMIT);
        let default_db = default_db.into();
        assert!(
            dbs.contains_key(&default_db),
            "default database {default_db:?} not loaded"
        );
        let cache = PlanCache::new(cfg.plan_cache, cfg.cache_capacity);
        let dbs = dbs
            .into_iter()
            .map(|(n, db)| (n, DbEntry::new(db)))
            .collect();
        let slowlog = Mutex::new(SlowLog {
            entries: VecDeque::new(),
            capacity: cfg.slowlog_capacity,
            dropped: 0,
        });
        Arc::new(ServeState {
            cfg,
            interner: Mutex::new(interner),
            dbs: RwLock::new(dbs),
            default_db,
            cache,
            shutdown: AtomicBool::new(false),
            queue_depth: AtomicUsize::new(0),
            slowlog,
            repl_head: ReplHead::new(),
            primary: Mutex::new(None),
        })
    }

    /// The served chain position tracker; see [`ReplHead`].
    pub fn repl_head(&self) -> &ReplHead {
        &self.repl_head
    }

    /// Name of the default database (the one `--follow` replicates into).
    pub fn default_db(&self) -> &str {
        &self.default_db
    }

    /// The chain-head hash of the served data, if it has a chain identity.
    pub fn current_head(&self) -> Option<u64> {
        self.repl_head.head()
    }

    /// Promotes this server to replication primary: installs the log's
    /// chain as the served head history and accepts `subscribe` ops.
    pub fn set_primary(&self, primary: Arc<Primary>) {
        self.repl_head.install_chain(&primary.chain());
        gauge!("repl.head").set(primary.head() as i64);
        *self.primary.lock().expect("primary lock") = Some(primary);
    }

    /// The replication hub, when this server is a primary.
    pub fn primary(&self) -> Option<Arc<Primary>> {
        self.primary.lock().expect("primary lock").clone()
    }

    /// The shutdown flag, for wiring auxiliary loops (the follower thread)
    /// to graceful shutdown.
    pub fn shutdown_flag(&self) -> &AtomicBool {
        &self.shutdown
    }

    /// Folds a decoded `(Interner, Database)` pair into the live interner
    /// and swaps it in as `db_name` — together with a freshly built
    /// statistics catalog, so cached plans see the new epoch the moment
    /// they can see the new data. This is the single install point for
    /// reloads *and* the follower's replicated snapshot/delta applies.
    /// Returns the tuple count now served.
    fn install_pair(&self, db_name: &str, pair: (Interner, Database)) -> usize {
        let merge_start = Instant::now();
        let db = {
            let mut i = self.interner.lock().expect("interner lock");
            merge_snapshot(&mut i, pair)
        };
        histogram!("serve.reload.merge_us").record(merge_start.elapsed().as_micros() as u64);
        let tuples = db.size();
        // Catalog build runs off-lock (one counting pass over the data);
        // only the entry swap holds the write lock.
        let stats_start = Instant::now();
        let entry = DbEntry::new(db);
        histogram!("serve.reload.stats_us").record(stats_start.elapsed().as_micros() as u64);
        let swap_start = Instant::now();
        self.dbs
            .write()
            .expect("dbs lock")
            .insert(db_name.to_string(), entry);
        histogram!("serve.reload.swap_us").record(swap_start.elapsed().as_micros() as u64);
        tuples
    }

    /// Whether slow/cancelled queries are being captured: telemetry on and
    /// a nonzero threshold. When true, every evaluation runs under a
    /// profile recorder so a query discovered *afterwards* to be slow (or
    /// killed by its deadline) still has an EXPLAIN to log — a profile
    /// cannot be reconstructed retroactively.
    pub fn slowlog_enabled(&self) -> bool {
        self.cfg.telemetry && self.cfg.slowlog_threshold_ms > 0
    }

    fn slowlog_push(&self, entry: Json) {
        counter!("serve.slowlog.captured").add(1);
        self.slowlog.lock().expect("slowlog lock").push(entry);
    }

    /// Drains (or, with `keep`, copies) the slow-query ring:
    /// `(entries oldest-first, dropped count)`.
    pub fn slowlog_drain(&self, keep: bool) -> (Vec<Json>, u64) {
        self.slowlog.lock().expect("slowlog lock").drain(keep)
    }

    /// Number of entries currently in the slow-query ring.
    pub fn slowlog_len(&self) -> usize {
        self.slowlog.lock().expect("slowlog lock").entries.len()
    }

    /// The currently served database under `name`, if any. The returned
    /// [`Arc`] pins that version: a concurrent [`ServeState::reload`]
    /// replaces the map entry without disturbing holders.
    pub fn db(&self, name: &str) -> Option<Arc<Database>> {
        self.dbs
            .read()
            .expect("dbs lock")
            .get(name)
            .map(|e| Arc::clone(&e.db))
    }

    /// The served database under `name` together with the statistics
    /// catalog built from that exact version — one map read, so the pair
    /// is always consistent.
    pub fn db_with_stats(&self, name: &str) -> Option<(Arc<Database>, Arc<StatsCatalog>)> {
        self.dbs
            .read()
            .expect("dbs lock")
            .get(name)
            .map(|e| (Arc::clone(&e.db), Arc::clone(&e.stats)))
    }

    /// Hot-reloads the database `db_name` from `snapshot` plus an optional
    /// delta chain, creating the name if it is new.
    ///
    /// The load + verification (CRC sections, delta hash chain, sorted-run
    /// merges) runs with **no server locks held**, so queries keep flowing.
    /// Then the snapshot is folded into the live interner (brief lock; one
    /// name lookup per snapshot *symbol*) and the served `Arc<Database>` is
    /// swapped under the write lock: in-flight jobs finish against the old
    /// database, requests admitted after the swap see the new one.
    ///
    /// The plan cache is **kept**: cached plans depend only on query
    /// structure and interner ids, never on data, and the merge only
    /// appends symbols (existing ids are stable), so every entry stays
    /// valid — `serve.store.reload_cache_kept` counts the entries
    /// preserved, `serve.store.reload_ok` / `serve.store.reload_failed`
    /// the outcomes.
    ///
    /// Returns `(tuples now served, deltas applied)`.
    pub fn reload(
        &self,
        db_name: &str,
        snapshot: &Path,
        deltas: &[impl AsRef<Path>],
    ) -> Result<(usize, usize), String> {
        let loaded = self.load_stage(snapshot, deltas)?;
        self.install_stage(db_name, loaded)
    }

    /// The off-lock half of a reload: reads and fully verifies the
    /// snapshot + delta chain while queries keep flowing. The returned
    /// [`LoadedChain`] carries the decoded pair, the chain's content
    /// hashes, and the raw delta bytes (so a primary can publish them to
    /// its followers after the swap).
    pub fn load_stage(
        &self,
        snapshot: &Path,
        deltas: &[impl AsRef<Path>],
    ) -> Result<LoadedChain, String> {
        let load_start = Instant::now();
        let read = |p: &Path| -> Result<Vec<u8>, String> {
            std::fs::read(p).map_err(|e| format!("{}: {e}", p.display()))
        };
        let base_bytes = match read(snapshot) {
            Ok(b) => b,
            Err(e) => {
                counter!("serve.store.reload_failed").add(1);
                return Err(e);
            }
        };
        let mut delta_bytes = Vec::with_capacity(deltas.len());
        for d in deltas {
            match read(d.as_ref()) {
                Ok(b) => delta_bytes.push(b),
                Err(e) => {
                    counter!("serve.store.reload_failed").add(1);
                    return Err(e);
                }
            }
        }
        let pair = match wdpt_store::decode_with_deltas(&base_bytes, &delta_bytes) {
            Ok(pair) => pair,
            Err(e) => {
                counter!("serve.store.reload_failed").add(1);
                return Err(format!("{}: {e}", snapshot.display()));
            }
        };
        let mut chain = vec![wdpt_store::content_hash(&base_bytes)];
        let deltas = delta_bytes
            .into_iter()
            .map(|bytes| {
                let base = *chain.last().expect("chain is nonempty");
                let hash = wdpt_store::content_hash(&bytes);
                chain.push(hash);
                (base, hash, bytes)
            })
            .collect();
        histogram!("serve.reload.load_us").record(load_start.elapsed().as_micros() as u64);
        Ok(LoadedChain {
            pair,
            chain,
            deltas,
        })
    }

    /// The swap half of a reload: folds the loaded pair into the live
    /// interner and swaps the served database. Fails **typed** (without
    /// touching the interner) if shutdown began after the load stage — a
    /// reload racing the drain either completes its swap or reports
    /// `shutting down`, never a half-merged interner.
    pub fn install_stage(
        &self,
        db_name: &str,
        loaded: LoadedChain,
    ) -> Result<(usize, usize), String> {
        if self.is_shutting_down() {
            counter!("serve.store.reload_rejected_shutdown").add(1);
            return Err("server is shutting down; reload rejected before the swap".to_string());
        }
        let tuples = self.install_pair(db_name, loaded.pair);
        self.repl_head.install_chain(&loaded.chain);
        gauge!("repl.head").set(self.repl_head.head().unwrap_or(0) as i64);
        counter!("serve.store.reload_ok").add(1);
        counter!("serve.store.reload_cache_kept").add(self.cache.len() as u64);
        Ok((tuples, loaded.deltas.len()))
    }

    /// The plan cache (for tests and stats).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Current interned-symbol count (for tests and stats): rejected
    /// requests must leave this unchanged.
    pub fn interner_len(&self) -> usize {
        self.interner.lock().expect("interner lock").len()
    }

    /// Requests graceful shutdown, as the `shutdown` op does.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Front-half of a query without the network: parse, canonicalize,
    /// and consult the plan cache. Used by the plan-cache tests.
    pub fn plan_for(&self, src: &str) -> Result<(Arc<Plan>, &'static str), String> {
        self.plan_for_with(src, CancelToken::never())
    }

    /// [`ServeState::plan_for`] under a caller-supplied cancellation
    /// token, mirroring a request's planning path exactly: the interner
    /// lock covers only the polynomial translation, and the exponential
    /// build runs lock-free under `token`.
    pub fn plan_for_with(
        &self,
        src: &str,
        token: &CancelToken,
    ) -> Result<(Arc<Plan>, &'static str), String> {
        let (canon, wdpt) = {
            let mut i = self.interner.lock().expect("interner lock");
            let q = parse_query(&mut i, src).map_err(|e| e.message)?;
            let canon = canonicalize(&q, &mut i);
            let wdpt = canon.canon.to_wdpt(&mut i).map_err(|e| e.to_string())?;
            (canon, wdpt)
        };
        let stats = self
            .db_with_stats(&self.default_db)
            .map(|(_, s)| s)
            .unwrap_or_else(|| Arc::new(StatsCatalog::empty()));
        self.cache
            .get_or_build(
                &canon,
                &wdpt,
                &self.interner,
                &stats,
                self.cfg.plan_strategy,
                token,
            )
            .map_err(|e| e.to_string())
    }
}

/// A snapshot + delta chain read and verified off-lock by
/// [`ServeState::load_stage`], awaiting its swap.
pub struct LoadedChain {
    pair: (Interner, Database),
    /// Content hashes of the chain: base snapshot first, then each delta.
    pub chain: Vec<u64>,
    /// `(base_hash, hash, file bytes)` per delta, in chain order.
    pub deltas: Vec<(u64, u64, Vec<u8>)>,
}

/// `(triple patterns, distinct variables)` of a parsed pattern — the
/// quantities the admission caps bound.
fn pattern_size(p: &GraphPattern) -> (usize, usize) {
    fn atoms(p: &GraphPattern) -> usize {
        match p {
            GraphPattern::Triple(_) => 1,
            GraphPattern::And(a, b) | GraphPattern::Opt(a, b) => atoms(a) + atoms(b),
        }
    }
    (atoms(p), p.variables().len())
}

/// One evaluation job on the bounded queue. Carries its own
/// `Arc<Database>`, resolved at admission: a concurrent `reload` swapping
/// the served map does not change what this job evaluates against.
struct Job {
    id: Option<String>,
    plan: Arc<Plan>,
    cache_status: &'static str,
    db: Arc<Database>,
    /// Statistics catalog of the resolved database version; the worker's
    /// adaptive re-plan check rebuilds against these, never a newer swap.
    stats: Arc<StatsCatalog>,
    request_vars: Vec<String>,
    token: CancelToken,
    deadline_ms: u64,
    /// Attach the evaluation profile to the `ok` line.
    profile: bool,
    /// Run the evaluation under a profile recorder regardless of
    /// `profile`, so the reply carries an EXPLAIN for slowlog capture.
    capture: bool,
    /// Attach the plan's facts and runtime stats to the `ok` line.
    explain: bool,
    max_rows: usize,
    /// When the job went onto the queue; the worker derives the queue-wait
    /// stage from it.
    enqueued: Instant,
    resp: mpsc::Sender<WorkerReply>,
}

/// What a worker sends back to the connection thread: the response lines
/// plus the telemetry only the worker can measure — the queue-wait and
/// eval durations (folded into the request's [`RequestTrace`]) and the
/// captured profile (attached to a slowlog entry if the request turns out
/// slow or cancelled).
struct WorkerReply {
    lines: Vec<Json>,
    queue_ns: u64,
    eval_ns: u64,
    cancelled: bool,
    profile: Option<Json>,
}

/// Runs the server on `listener` until shutdown is requested, then drains
/// queued and in-flight work and returns. The listener is switched to
/// nonblocking mode so the loop can observe the shutdown flag.
pub fn serve(listener: TcpListener, state: Arc<ServeState>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let (tx, rx) = mpsc::sync_channel::<Job>(state.cfg.queue_capacity);
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<_> = (0..state.cfg.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            std::thread::spawn(move || loop {
                let job = match rx.lock().expect("job queue lock").recv() {
                    Ok(job) => job,
                    Err(_) => return, // queue closed and drained
                };
                process(job, &state);
            })
        })
        .collect();

    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !state.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(&state);
                let tx = tx.clone();
                conns.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, state, tx);
                }));
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // Drain: connections finish their in-flight request and exit on the
    // next read-timeout tick; closing the queue stops workers once empty.
    for h in conns {
        let _ = h.join();
    }
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

/// Longest accepted request line. A line that exceeds this is answered with
/// `bad_request` and the connection is closed (the remainder of the oversized
/// line cannot be re-synchronised reliably).
const MAX_LINE_BYTES: usize = 1 << 20;

fn handle_connection(
    stream: TcpStream,
    state: Arc<ServeState>,
    tx: SyncSender<Job>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // The buffer persists across read timeouts and accumulates *bytes*, not
    // `String` data: `read_line` would error (and drop the partial read) if
    // a timeout fired in the middle of a multibyte UTF-8 character, whereas
    // `read_until` keeps whatever prefix arrived and resumes on the next
    // packet. UTF-8 validation happens once per complete line.
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            // `Ok` means a newline was found or EOF was reached; a partial
            // final line without trailing newline is still processed.
            Ok(n) => {
                let eof = !buf.ends_with(b"\n");
                if n == 0 && buf.is_empty() {
                    return Ok(());
                }
                let bytes = std::mem::take(&mut buf);
                let (lines, trace) = match std::str::from_utf8(&bytes) {
                    // A `subscribe` op inverts the connection into a push
                    // stream and never returns to the request loop.
                    Ok(line) if parse_subscribe(line.trim()).is_some() => {
                        let (sub_id, base) = parse_subscribe(line.trim()).expect("just matched");
                        return run_subscription(
                            sub_id.as_deref(),
                            base,
                            &state,
                            &mut reader,
                            &mut writer,
                        );
                    }
                    Ok(line) => handle_line(line.trim(), &state, &tx),
                    Err(_) => {
                        counter!("serve.requests.error").add(1);
                        (
                            vec![error_line(
                                None,
                                "bad_request",
                                "request line is not valid UTF-8",
                                None,
                            )],
                            None,
                        )
                    }
                };
                for l in &lines {
                    wdpt_obs::write_json_line(&mut writer, l)?;
                }
                writer.flush()?;
                // The respond stage closes only after the flush, so the
                // recorded trace covers serialization and the socket write.
                if let Some(mut t) = trace {
                    t.stage_done(Stage::Respond);
                    t.record();
                }
                if eof || state.is_shutting_down() {
                    return Ok(()); // answered; close so the drain can finish
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if state.is_shutting_down() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
        if buf.len() > MAX_LINE_BYTES {
            counter!("serve.requests.error").add(1);
            let l = error_line(
                None,
                "bad_request",
                &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                None,
            );
            wdpt_obs::write_json_line(&mut writer, &l)?;
            writer.flush()?;
            return Ok(());
        }
    }
}

/// Recognizes a well-formed `subscribe` request, returning its `(id,
/// base)`. Malformed subscribes (bad base hex) return `None` and fall
/// through to [`handle_line`], which answers `bad_request`.
fn parse_subscribe(line: &str) -> Option<(Option<String>, Option<u64>)> {
    let value = Json::parse(line).ok()?;
    if value.get("op").and_then(Json::as_str) != Some("subscribe") {
        return None;
    }
    match Request::from_json(&value) {
        Ok(Request::Subscribe { id, base }) => Some((id, base)),
        _ => None,
    }
}

/// Serves one replication subscription until the follower disconnects or
/// shutdown begins: replay (suffix or bootstrap) first, then every
/// broadcast delta as it is published. The read side of the socket only
/// watches for EOF; its short timeout bounds broadcast latency.
fn run_subscription(
    id: Option<&str>,
    base: Option<u64>,
    state: &ServeState,
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
) -> io::Result<()> {
    counter!("serve.requests.received").add(1);
    let send = |w: &mut BufWriter<TcpStream>, line: &Json| -> io::Result<()> {
        wdpt_obs::write_json_line(w, line)
    };
    let Some(primary) = state.primary() else {
        counter!("serve.requests.error").add(1);
        let l = error_line(
            id,
            "not_primary",
            "this server has no replication log (start it with --repl-log); subscribe refused",
            None,
        );
        send(writer, &l)?;
        return writer.flush();
    };
    let (start, rx) = match primary.subscribe(base) {
        Ok(pair) => pair,
        Err(e) => {
            counter!("serve.requests.error").add(1);
            let l = error_line(id, "subscribe_failed", &e.to_string(), None);
            send(writer, &l)?;
            return writer.flush();
        }
    };
    let head = primary.head();
    match start {
        SubscribeStart::Suffix(replay) => {
            send(writer, &subscribed_line(id, head, "suffix", replay.len()))?;
            for d in &replay {
                send(writer, &delta_frame(d.hash, d.base_hash, &d.bytes))?;
            }
        }
        SubscribeStart::Bootstrap {
            head: base_head,
            snapshot,
            replay,
        } => {
            send(
                writer,
                &subscribed_line(id, head, "bootstrap", replay.len()),
            )?;
            send(writer, &snapshot_frame(base_head, &snapshot))?;
            for d in &replay {
                send(writer, &delta_frame(d.hash, d.base_hash, &d.bytes))?;
            }
        }
    }
    writer.flush()?;
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_millis(25)))
        .ok();
    let mut scratch = Vec::new();
    loop {
        let mut wrote = false;
        loop {
            match rx.try_recv() {
                Ok(b) => {
                    send(writer, &delta_frame(b.hash, b.base_hash, &b.bytes))?;
                    wrote = true;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    send(writer, &shutting_down_line(id))?;
                    return writer.flush();
                }
            }
        }
        if wrote {
            writer.flush()?;
        }
        if state.is_shutting_down() {
            send(writer, &shutting_down_line(id))?;
            return writer.flush();
        }
        match reader.read_until(b'\n', &mut scratch) {
            Ok(0) => return Ok(()),   // follower went away
            Ok(_) => scratch.clear(), // followers are silent post-subscribe
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
}

/// Handles one request line, returning the response lines to write plus,
/// for telemetry-traced queries, the request's stage-timed trace. The
/// caller finishes the trace (respond stage) after flushing the lines and
/// records it into the `serve.request.*` histograms.
fn handle_line(
    line: &str,
    state: &ServeState,
    tx: &SyncSender<Job>,
) -> (Vec<Json>, Option<RequestTrace>) {
    if line.is_empty() {
        return (Vec::new(), None);
    }
    let mut trace = RequestTrace::start();
    counter!("serve.requests.received").add(1);
    let value = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            counter!("serve.requests.error").add(1);
            return (
                vec![error_line(
                    None,
                    "bad_request",
                    &format!("invalid JSON: {e}"),
                    None,
                )],
                None,
            );
        }
    };
    let id_owned = value.get("id").and_then(Json::as_str).map(str::to_string);
    let id = id_owned.as_deref();
    let request = match Request::from_json(&value) {
        Ok(r) => r,
        Err(e) => {
            counter!("serve.requests.error").add(1);
            return (vec![error_line(id, "bad_request", &e, None)], None);
        }
    };
    let lines = match request {
        Request::Ping => vec![Json::obj([
            ("status", Json::str("ok")),
            ("kind", Json::str("pong")),
        ])],
        Request::Stats => vec![stats_line(state)],
        Request::Metrics { id: _, text } => {
            let snap = metrics_snapshot();
            let mut line = if text {
                metrics_text_line(id, render_prometheus(&snap))
            } else {
                metrics_json_line(id, snapshot_to_json(&snap), state.cache.stats_json())
            };
            attach_head(&mut line, state.current_head());
            vec![line]
        }
        Request::Slowlog { id: _, keep } => {
            let (entries, dropped) = state.slowlog_drain(keep);
            vec![slowlog_line(id, entries, dropped)]
        }
        Request::Shutdown => {
            state.begin_shutdown();
            vec![Json::obj([
                ("status", Json::str("ok")),
                ("kind", Json::str("shutdown")),
            ])]
        }
        Request::Query {
            id: _,
            query,
            db,
            deadline_ms,
            profile,
            explain,
            max_rows,
            min_head,
        } => {
            // The line is decoded and recognized as a query: the read
            // stage closes here, the admission stage opens.
            trace.stage_done(Stage::Read);
            let lines = handle_query(
                QueryParams {
                    id,
                    query: &query,
                    db: db.as_deref(),
                    deadline_ms,
                    profile,
                    explain,
                    max_rows,
                    min_head,
                },
                state,
                tx,
                &mut trace,
            );
            let trace = state.cfg.telemetry.then_some(trace);
            return (lines, trace);
        }
        // Well-formed subscribes are intercepted in `handle_connection`;
        // reaching here means the stream inversion was impossible.
        Request::Subscribe { .. } => {
            counter!("serve.requests.error").add(1);
            vec![error_line(
                id,
                "bad_request",
                "subscribe must be the connection's first and only request",
                None,
            )]
        }
        Request::Reload {
            id: _,
            db,
            snapshot,
            deltas,
        } => {
            if state.is_shutting_down() {
                counter!("serve.requests.rejected").add(1);
                return (vec![shutting_down_line(id)], None);
            }
            let db_name = db.as_deref().unwrap_or(&state.default_db);
            let start = Instant::now();
            match state.load_stage(Path::new(&snapshot), &deltas) {
                Ok(loaded) => {
                    // A primary re-publishes the chain's new deltas to its
                    // followers after the swap; clone the bytes first, the
                    // install consumes the load.
                    let publishable: Vec<(u64, Vec<u8>)> = state
                        .primary()
                        .map(|p| {
                            loaded
                                .deltas
                                .iter()
                                .filter(|(_, hash, _)| !p.knows(*hash))
                                .map(|(_, hash, bytes)| (*hash, bytes.clone()))
                                .collect()
                        })
                        .unwrap_or_default();
                    match state.install_stage(db_name, loaded) {
                        Ok((tuples, applied)) => {
                            if let Some(primary) = state.primary() {
                                for (hash, bytes) in publishable {
                                    if let Err(e) = primary.publish(bytes) {
                                        counter!("repl.primary.publish_rejected").add(1);
                                        eprintln!(
                                            "repl: delta {} not published (does not extend \
                                             the replication log): {e}",
                                            wdpt_store::head_hex(hash)
                                        );
                                    }
                                }
                            }
                            let mut line = reload_line(
                                id,
                                db_name,
                                tuples,
                                applied,
                                start.elapsed().as_micros() as u64,
                            );
                            attach_head(&mut line, state.current_head());
                            vec![line]
                        }
                        Err(_racing_shutdown) => {
                            counter!("serve.requests.rejected").add(1);
                            vec![shutting_down_line(id)]
                        }
                    }
                }
                Err(e) => {
                    counter!("serve.requests.error").add(1);
                    vec![error_line(id, "reload_failed", &e, None)]
                }
            }
        }
    };
    (lines, None)
}

/// Bundled arguments of one `query` request.
struct QueryParams<'a> {
    id: Option<&'a str>,
    query: &'a str,
    db: Option<&'a str>,
    deadline_ms: Option<u64>,
    profile: bool,
    explain: bool,
    max_rows: Option<usize>,
    min_head: Option<u64>,
}

/// Longest query excerpt kept in a slowlog entry; the ring is bounded in
/// entries, this bounds the bytes per entry.
const SLOWLOG_QUERY_BYTES: usize = 2048;

/// One slow-query ring entry: when, what, why it qualified (`"slow"` or
/// `"cancelled"`), where it got to (`phase`), its stage-timed trace so far,
/// and the captured EXPLAIN profile when the evaluation ran profiled.
#[allow(clippy::too_many_arguments)]
fn slowlog_entry(
    id: Option<&str>,
    db: &str,
    query: &str,
    status: &str,
    phase: &str,
    deadline_ms: u64,
    cache: Option<&str>,
    trace: &RequestTrace,
    profile: Option<Json>,
    plan: Option<Json>,
) -> Json {
    let ts = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut cut = query.len().min(SLOWLOG_QUERY_BYTES);
    while !query.is_char_boundary(cut) {
        cut -= 1;
    }
    Json::obj([
        ("ts", Json::int(ts)),
        ("id", id.map_or(Json::Null, Json::str)),
        ("db", Json::str(db)),
        ("query", Json::str(&query[..cut])),
        ("status", Json::str(status)),
        ("phase", Json::str(phase)),
        ("deadline_ms", Json::int(deadline_ms)),
        ("cache", cache.map_or(Json::Null, Json::str)),
        ("wall_us", Json::int(trace.total_ns() / 1_000)),
        ("trace", trace.to_json()),
        ("profile", profile.unwrap_or(Json::Null)),
        // The chosen join plan: strategy, per-node atom order, estimated
        // vs last observed cost — so a slow query's log entry shows *what
        // order it ran*, not just how long it took.
        ("plan", plan.unwrap_or(Json::Null)),
    ])
}

fn handle_query(
    req: QueryParams<'_>,
    state: &ServeState,
    tx: &SyncSender<Job>,
    trace: &mut RequestTrace,
) -> Vec<Json> {
    let QueryParams {
        id,
        query,
        db,
        deadline_ms,
        profile,
        explain,
        max_rows,
        min_head,
    } = req;
    let _in_flight = gauge_scope!("serve.requests.in_flight");
    if state.is_shutting_down() {
        counter!("serve.requests.rejected").add(1);
        return vec![shutting_down_line(id)];
    }

    // The deadline clock starts before plan building: the core and
    // decomposition searches are worst-case exponential in the query, so
    // an adversarial query must not outlive its budget while planning.
    let deadline_ms = deadline_ms
        .unwrap_or(state.cfg.default_deadline_ms)
        .min(state.cfg.max_deadline_ms);

    // Consistency token: a replica that has not applied `min_head` yet
    // waits for its apply loop (up to the request deadline), then answers
    // typed `stale_replica` rather than serving data the client knows is
    // older than its own writes. This runs before the database `Arc` is
    // resolved, so a successful wait observes the post-apply version.
    if let Some(min_head) = min_head {
        if !state.repl_head.contains(min_head) {
            counter!("serve.requests.min_head_waited").add(1);
            let wait_deadline = Instant::now() + Duration::from_millis(deadline_ms);
            if !state.repl_head.wait_contains(min_head, wait_deadline) {
                counter!("serve.requests.stale_replica").add(1);
                return vec![stale_replica_line(id, min_head, state.current_head())];
            }
        }
    }

    let db_name = db.unwrap_or(&state.default_db);
    // Resolve the database *version* now: the job evaluates against this
    // `Arc` even if a `reload` swaps the served map while it is queued.
    // The statistics catalog rides along from the same map read, so the
    // plan is costed against exactly the version it will execute on.
    let Some((db, db_stats)) = state.db_with_stats(db_name) else {
        counter!("serve.requests.error").add(1);
        return vec![error_line(
            id,
            "unknown_db",
            &format!("no database named {db_name:?}"),
            None,
        )];
    };

    let token = CancelToken::with_deadline(Duration::from_millis(deadline_ms));
    let start = Instant::now();

    // Polynomial front half, under a brief interner lock: parse, admission
    // caps, canonicalize, translate to a tree. A rejected request rolls the
    // interner back so its symbols do not accumulate.
    let (canon, wdpt): (CanonicalQuery, Wdpt) = {
        let mut i = state.interner.lock().expect("interner lock");
        let len0 = i.len();
        let parsed = match parse_query(&mut i, query) {
            Ok(q) => q,
            Err(e) => {
                i.truncate(len0);
                counter!("serve.requests.error").add(1);
                return vec![error_line(id, "parse_error", &e.message, Some(e.at))];
            }
        };
        let (atoms, vars) = pattern_size(&parsed.pattern);
        if atoms > state.cfg.max_query_atoms || vars > state.cfg.max_query_vars {
            i.truncate(len0);
            counter!("serve.requests.rejected").add(1);
            return vec![error_line(
                id,
                "query_too_large",
                &format!(
                    "query has {atoms} triple patterns and {vars} variables; this server accepts at most {} and {}",
                    state.cfg.max_query_atoms, state.cfg.max_query_vars
                ),
                None,
            )];
        }
        let canon = canonicalize(&parsed, &mut i);
        let wdpt = match canon.canon.to_wdpt(&mut i) {
            Ok(w) => w,
            Err(e) => {
                counter!("serve.requests.error").add(1);
                let (kind, message) = sparql_error_parts(&e, &i, &canon);
                i.truncate(len0);
                return vec![error_line(id, kind, &message, None)];
            }
        };
        if i.len() > state.cfg.max_symbols {
            i.truncate(len0);
            counter!("serve.requests.rejected").add(1);
            return vec![error_line(
                id,
                "symbol_limit",
                "the server's interned-symbol budget is exhausted; only queries over already-seen identifiers are accepted",
                None,
            )];
        }
        (canon, wdpt)
    };
    trace.stage_done(Stage::Admission);

    // Exponential back half, no global locks: plan-cache lookup or a
    // cancellable build coalesced with identical concurrent requests.
    let request_vars = canon.request_vars.clone();
    let (plan, cache_status) = match state.cache.get_or_build(
        &canon,
        &wdpt,
        &state.interner,
        &db_stats,
        state.cfg.plan_strategy,
        &token,
    ) {
        Ok(hit) => hit,
        Err(Cancelled) => {
            counter!("serve.requests.cancelled").add(1);
            trace.stage_done(Stage::Plan);
            // A query whose *planning* blew the deadline is exactly
            // the kind the slowlog exists for; no profile exists yet.
            if state.slowlog_enabled() {
                state.slowlog_push(slowlog_entry(
                    id,
                    db_name,
                    query,
                    "cancelled",
                    "plan",
                    deadline_ms,
                    None,
                    trace,
                    None,
                    None,
                ));
            }
            return vec![cancelled_line(
                id,
                deadline_ms,
                start.elapsed().as_micros() as u64,
            )];
        }
    };
    trace.stage_done(Stage::Plan);

    let (resp_tx, resp_rx) = mpsc::channel();
    let token_handle = token.clone();
    // Pinned for the slowlog: the worker consumes the Job (and may even
    // re-plan the entry), so the entry logged below reflects the plan as
    // of admission.
    let plan_for_log = Arc::clone(&plan);
    let job = Job {
        id: id.map(str::to_string),
        plan,
        cache_status,
        db,
        stats: db_stats,
        request_vars,
        token,
        deadline_ms,
        profile,
        capture: state.slowlog_enabled(),
        explain,
        max_rows: max_rows.unwrap_or(state.cfg.max_rows),
        enqueued: Instant::now(),
        resp: resp_tx,
    };
    match tx.try_send(job) {
        Ok(()) => {
            state.queue_depth.fetch_add(1, Ordering::Relaxed);
            gauge!("serve.queue.depth").incr();
        }
        Err(TrySendError::Full(_)) => {
            counter!("serve.requests.rejected").add(1);
            let depth = state.queue_depth.load(Ordering::Relaxed);
            return vec![overloaded_line(id, retry_after_hint(&state.cfg, depth, id))];
        }
        Err(TrySendError::Disconnected(_)) => {
            counter!("serve.requests.rejected").add(1);
            return vec![shutting_down_line(id)];
        }
    }
    let reply = await_worker(&resp_rx, id, &token_handle, deadline_ms, start);
    trace.absorb_worker(reply.queue_ns, reply.eval_ns);
    if state.slowlog_enabled() {
        let threshold_ns = state.cfg.slowlog_threshold_ms.saturating_mul(1_000_000);
        let status = if reply.cancelled {
            Some("cancelled")
        } else if trace.total_ns() >= threshold_ns {
            Some("slow")
        } else {
            None
        };
        if let Some(status) = status {
            state.slowlog_push(slowlog_entry(
                id,
                db_name,
                query,
                status,
                "eval",
                deadline_ms,
                Some(cache_status),
                trace,
                reply.profile,
                Some(crate::cache::exec_plan_json(&plan_for_log)),
            ));
        }
    }
    reply.lines
}

/// Extra wait past the request deadline before a connection gives up on
/// its worker: covers queue latency plus the worker's own cancellation
/// polling granularity.
const WORKER_GRACE_MS: u64 = 250;

/// Waits for the worker's response lines, but never past the request
/// deadline plus [`WORKER_GRACE_MS`].
///
/// The old unbounded `recv()` here meant a worker that never responded
/// (wedged, or its job lost) parked the connection thread forever and the
/// client hung with no terminal line. Now the wait is bounded: on timeout
/// the job's token is cancelled (so a still-running evaluation stops at
/// its next cooperative check instead of burning a worker), a `cancelled`
/// line goes to the client, and the connection is free for its next
/// request. A late response is dropped harmlessly with the channel.
fn await_worker(
    resp_rx: &mpsc::Receiver<WorkerReply>,
    id: Option<&str>,
    token: &CancelToken,
    deadline_ms: u64,
    start: Instant,
) -> WorkerReply {
    let wait = Duration::from_millis(deadline_ms.saturating_add(WORKER_GRACE_MS));
    match resp_rx.recv_timeout(wait) {
        Ok(reply) => reply,
        Err(RecvTimeoutError::Timeout) => {
            token.cancel();
            counter!("serve.requests.cancelled").add(1);
            counter!("serve.worker.unresponsive").add(1);
            WorkerReply {
                lines: vec![cancelled_line(
                    id,
                    deadline_ms,
                    start.elapsed().as_micros() as u64,
                )],
                queue_ns: 0,
                eval_ns: 0,
                cancelled: true,
                profile: None,
            }
        }
        Err(RecvTimeoutError::Disconnected) => WorkerReply {
            lines: vec![error_line(
                id,
                "internal",
                "worker dropped the request",
                None,
            )],
            queue_ns: 0,
            eval_ns: 0,
            cancelled: false,
            profile: None,
        },
    }
}

/// The backoff hint sent with `overloaded`: the configured base, scaled up
/// linearly with how full the worker queue is, plus a deterministic
/// per-request jitter (a hash of the request id, modulo the base).
///
/// A fixed hint makes every rejected client of a flood sleep the same
/// interval and stampede back in lockstep, re-creating the overload on the
/// retry; the jitter spreads the retries across a window that widens as
/// the queue deepens. Hashing the id keeps the hint reproducible for a
/// given request, so tests and clients see stable values.
fn retry_after_hint(cfg: &ServeConfig, queue_depth: usize, id: Option<&str>) -> u64 {
    let base = cfg.retry_after_ms.max(1);
    let capacity = cfg.queue_capacity.max(1) as u64;
    let scaled = base + base * (queue_depth as u64).min(capacity) / capacity;
    let jitter = wdpt_store::content_hash(id.unwrap_or("").as_bytes()) % base;
    scaled + jitter
}

/// Maps a [`SparqlError`] from plan building to a response `(kind,
/// message)`, translating canonical variable names back to the request's.
fn sparql_error_parts(
    e: &SparqlError,
    i: &Interner,
    canon: &CanonicalQuery,
) -> (&'static str, String) {
    let name = |v: Var| -> String {
        let n = i.var_name(v);
        n.strip_prefix('#')
            .and_then(|k| k.parse::<usize>().ok())
            .and_then(|k| canon.request_vars.get(k).cloned())
            .unwrap_or_else(|| n.to_string())
    };
    match e {
        SparqlError::NotWellDesigned(v) => (
            "not_well_designed",
            format!(
                "pattern is not well-designed: variable ?{} occurs in an OPT right side and again outside it without occurring on the left",
                name(*v)
            ),
        ),
        SparqlError::UnknownSelectVar(v) => (
            "unknown_select_var",
            format!("SELECT variable ?{} does not occur in the pattern", name(*v)),
        ),
        SparqlError::NotAnRdfTree => ("internal", e.to_string()),
    }
}

/// Worker half: evaluate with the request token and build response lines.
///
/// Besides the response, the worker ships the connection thread the two
/// timings only it can measure — how long the job sat queued and how long
/// the evaluation ran — plus the captured profile when the slowlog wants
/// one, so slow-query entries can be assembled with full context on the
/// connection side.
fn process(job: Job, state: &ServeState) {
    state.queue_depth.fetch_sub(1, Ordering::Relaxed);
    gauge!("serve.queue.depth").decr();
    let _busy = gauge_scope!("serve.workers.busy");
    let queue_ns = job.enqueued.elapsed().as_nanos() as u64;
    let start = Instant::now();
    let db = &*job.db;
    let id = job.id.as_deref();
    let reply = if job.token.poll_deadline() {
        // Expired while queued — never start the evaluation.
        counter!("serve.requests.cancelled").add(1);
        job.plan.stats.record_cancelled();
        WorkerReply {
            lines: vec![cancelled_line(
                id,
                job.deadline_ms,
                start.elapsed().as_micros() as u64,
            )],
            queue_ns,
            eval_ns: 0,
            cancelled: true,
            profile: None,
        }
    } else {
        let threads = state.cfg.eval_threads.max(1);
        // Pin the exec plan for the whole evaluation: a concurrent re-plan
        // swaps the slot, not the orders this run is following.
        let exec = job.plan.exec_plan();
        // The captured evaluator keeps its profile even on cancellation —
        // deadline-blown queries are the slowlog's whole reason to exist.
        // With telemetry off there is no recorder (and therefore no
        // `nodes_expanded` signal for the re-planner — the ablation
        // disables adaptivity too).
        let (result, prof) = if job.profile || job.capture {
            let (result, prof) = wdpt_core::try_evaluate_parallel_captured_planned(
                &job.plan.wdpt,
                db,
                threads,
                &job.token,
                "serve.query",
                Some(&exec),
            );
            (result, Some(prof))
        } else {
            (
                wdpt_core::try_evaluate_parallel_planned(
                    &job.plan.wdpt,
                    db,
                    threads,
                    &job.token,
                    Some(&exec),
                ),
                None,
            )
        };
        let eval_ns = start.elapsed().as_nanos() as u64;
        let nodes_expanded = prof.as_ref().map(|p| p.counter("cq.nodes_expanded"));
        match result {
            Ok(answers) => {
                job.plan
                    .stats
                    .record_execution(eval_ns / 1_000, nodes_expanded);
                // Adaptive re-planning: sustained estimate/observation
                // divergence rotates the entry to the next strategy. Runs
                // under a never-token — the rebuild is gated small, and a
                // nearly-expired request must not be able to veto it.
                if nodes_expanded.is_some() {
                    let _ = maybe_replan(
                        &job.plan,
                        &job.stats,
                        state.cfg.replan_factor,
                        state.cfg.replan_runs,
                        CancelToken::never(),
                    );
                }
                let wall_us = start.elapsed().as_micros() as u64;
                let i = state.interner.lock().expect("interner lock");
                let mut lines: Vec<Json> = answers
                    .iter()
                    .take(job.max_rows)
                    .map(|m| row_line(id, render_bindings(m, &job, &i)))
                    .collect();
                let rows = lines.len();
                counter!("serve.requests.ok").add(1);
                let mut okl = ok_line(
                    id,
                    answers.len(),
                    rows,
                    job.cache_status,
                    wall_us,
                    job.profile
                        .then(|| prof.as_ref().map(|p| p.to_json()))
                        .flatten(),
                    job.explain
                        .then(|| explain_json(&job.plan, job.cache_status)),
                );
                // The head the client can quote as `min_head` elsewhere.
                attach_head(&mut okl, state.current_head());
                lines.push(okl);
                WorkerReply {
                    lines,
                    queue_ns,
                    eval_ns,
                    cancelled: false,
                    profile: job.capture.then(|| prof.map(|p| p.to_json())).flatten(),
                }
            }
            Err(_cancelled) => {
                counter!("serve.requests.cancelled").add(1);
                job.plan.stats.record_cancelled();
                WorkerReply {
                    lines: vec![cancelled_line(
                        id,
                        job.deadline_ms,
                        start.elapsed().as_micros() as u64,
                    )],
                    queue_ns,
                    eval_ns,
                    cancelled: true,
                    profile: job.capture.then(|| prof.map(|p| p.to_json())).flatten(),
                }
            }
        }
    };
    // The connection may have vanished; a dead channel is fine.
    let _ = job.resp.send(reply);
}

/// Renders one answer mapping in the request's variable names.
fn render_bindings(m: &Mapping, job: &Job, i: &Interner) -> Vec<(String, String)> {
    job.plan
        .canon_vars
        .iter()
        .zip(&job.request_vars)
        .filter_map(|(&cv, name)| {
            m.get(cv)
                .map(|c| (name.clone(), i.const_name(c).to_string()))
        })
        .collect()
}

/// Implements [`ReplApply`] over the serving state: the follower side of
/// replication, driving frames through the same hot-reload path the
/// `reload` op uses (plan cache kept, in-flight queries pinned to their
/// `Arc<Database>`).
///
/// The decoded chain tip is kept as a **pristine** `(Interner, Database)`
/// pair separate from the served state: the live interner accretes query
/// symbols, which would break the next delta's `base_symbols` anchor.
/// Each delta applies to the pristine pair in place; a clone of the result
/// is then merged into the live interner and swapped in.
pub struct FollowerApply {
    state: Arc<ServeState>,
    db_name: String,
    pristine: Mutex<Option<(Interner, Database)>>,
}

impl FollowerApply {
    /// A follower apply target swapping the database served as `db_name`.
    pub fn new(state: Arc<ServeState>, db_name: impl Into<String>) -> FollowerApply {
        FollowerApply {
            state,
            db_name: db_name.into(),
            pristine: Mutex::new(None),
        }
    }
}

impl ReplApply for FollowerApply {
    // Both predicates report "nothing applied" while the pristine pair is
    // absent (fresh follower, or dropped after a failed apply): the next
    // subscribe then sends no base — a full bootstrap — and none of its
    // frames are skipped as duplicates.
    fn current_head(&self) -> Option<u64> {
        self.pristine
            .lock()
            .expect("pristine lock")
            .is_some()
            .then(|| self.state.current_head())
            .flatten()
    }

    // Deliberately `on_chain`, not `contains`: after a re-bootstrap the
    // history still holds hashes ahead of the freshly installed chain, and
    // the replay for those must be applied, not skipped as duplicates.
    fn known(&self, head: u64) -> bool {
        self.pristine.lock().expect("pristine lock").is_some()
            && self.state.repl_head.on_chain(head)
    }

    fn apply_snapshot(&self, head: u64, bytes: &[u8]) -> Result<(), String> {
        let start = Instant::now();
        let pair = wdpt_store::decode_snapshot(bytes).map_err(|e| e.to_string())?;
        let mut pristine = self.pristine.lock().expect("pristine lock");
        let clone = pair.clone();
        *pristine = Some(pair);
        self.state.install_pair(&self.db_name, clone);
        self.state.repl_head.install_chain(&[head]);
        gauge!("repl.head").set(head as i64);
        counter!("repl.follower.snapshots_applied").add(1);
        counter!("repl.follower.bytes_applied").add(bytes.len() as u64);
        histogram!("repl.follower.apply_us").record(start.elapsed().as_micros() as u64);
        Ok(())
    }

    fn apply_delta(&self, head: u64, base: u64, bytes: &[u8]) -> Result<(), String> {
        let start = Instant::now();
        let mut pristine = self.pristine.lock().expect("pristine lock");
        let Some((interner, db)) = pristine.take() else {
            return Err("no snapshot applied yet; delta has no base".to_string());
        };
        // NB: read the state's head directly — `self.current_head()` locks
        // `pristine`, which this thread already holds.
        let served = self.state.current_head();
        if served != Some(base) {
            *pristine = Some((interner, db));
            return Err(format!(
                "delta extends {} but the served head is {}",
                wdpt_store::head_hex(base),
                served.map_or_else(|| "unset".to_string(), wdpt_store::head_hex),
            ));
        }
        let delta = match wdpt_store::decode_delta(bytes) {
            Ok(d) => d,
            Err(e) => {
                *pristine = Some((interner, db));
                return Err(e.to_string());
            }
        };
        let mut interner = interner;
        match wdpt_store::apply_delta(&mut interner, db, delta) {
            Ok(new_db) => {
                let clone = (interner.clone(), new_db.clone());
                *pristine = Some((interner, new_db));
                drop(pristine);
                self.state.install_pair(&self.db_name, clone);
                self.state.repl_head.advance(head);
                gauge!("repl.head").set(head as i64);
                counter!("repl.follower.deltas_applied").add(1);
                counter!("repl.follower.bytes_applied").add(bytes.len() as u64);
                histogram!("repl.follower.apply_us").record(start.elapsed().as_micros() as u64);
                Ok(())
            }
            // The pristine pair may be half-mutated; drop it so the next
            // frame forces a clean bootstrap instead of compounding.
            Err(e) => Err(format!("delta apply failed: {e}")),
        }
    }
}

/// The `stats` response: cache occupancy plus every registered counter.
fn stats_line(state: &ServeState) -> Json {
    let snap = metrics_snapshot();
    Json::obj([
        ("status".to_string(), Json::str("ok")),
        ("kind".to_string(), Json::str("stats")),
        (
            "repl_head".to_string(),
            state
                .current_head()
                .map_or(Json::Null, |h| Json::str(wdpt_store::head_hex(h))),
        ),
        (
            "repl_chain_len".to_string(),
            Json::int(state.repl_head.chain_len() as u64),
        ),
        (
            "cache_size".to_string(),
            Json::int(state.cache.len() as u64),
        ),
        (
            "cache_capacity".to_string(),
            Json::int(state.cache.capacity() as u64),
        ),
        (
            "queue_depth".to_string(),
            Json::int(state.queue_depth.load(Ordering::Relaxed) as u64),
        ),
        (
            "counters".to_string(),
            Json::obj(
                snap.counters
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::int(*v))),
            ),
        ),
        (
            "gauges".to_string(),
            Json::obj(
                snap.gauges
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::num(*v as f64))),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_model::Const;

    /// Regression: the connection-side wait for a worker response used an
    /// unbounded `recv()`, so a worker that never answered (wedged, or its
    /// job lost) parked the connection thread forever. The bounded wait
    /// must return a `cancelled` line shortly after deadline + grace and
    /// cancel the job's token.
    #[test]
    fn unresponsive_worker_frees_the_connection() {
        let (tx, rx) = mpsc::channel::<WorkerReply>();
        let token = CancelToken::new();
        let start = Instant::now();
        let reply = await_worker(&rx, Some("stuck-1"), &token, 50, start);
        // Keep the sender alive for the whole wait: dropping it early
        // would exercise the Disconnected arm, not the timeout.
        drop(tx);
        let waited = start.elapsed();
        assert!(
            waited < Duration::from_secs(5),
            "connection stayed parked for {waited:?}"
        );
        assert_eq!(reply.lines.len(), 1);
        assert_eq!(
            reply.lines[0].get("status").and_then(Json::as_str),
            Some("cancelled")
        );
        assert!(reply.cancelled, "a timed-out wait is a cancelled request");
        assert!(
            token.is_cancelled(),
            "the abandoned job's token must be cancelled so the worker stops"
        );
    }

    #[test]
    fn worker_response_within_deadline_passes_through() {
        let (tx, rx) = mpsc::channel::<WorkerReply>();
        tx.send(WorkerReply {
            lines: vec![ok_line(Some("q"), 1, 1, "hit", 10, None, None)],
            queue_ns: 1_000,
            eval_ns: 9_000,
            cancelled: false,
            profile: None,
        })
        .unwrap();
        let token = CancelToken::new();
        let reply = await_worker(&rx, Some("q"), &token, 10_000, Instant::now());
        assert_eq!(
            reply.lines[0].get("status").and_then(Json::as_str),
            Some("ok")
        );
        assert_eq!(reply.queue_ns, 1_000);
        assert_eq!(reply.eval_ns, 9_000);
        assert!(!token.is_cancelled());
    }

    #[test]
    fn retry_hint_scales_with_queue_depth() {
        let cfg = ServeConfig::default();
        let empty = retry_after_hint(&cfg, 0, Some("x"));
        let full = retry_after_hint(&cfg, cfg.queue_capacity, Some("x"));
        assert_eq!(full - empty, cfg.retry_after_ms);
        // Depth beyond capacity (races between load and rejection) clamps
        // rather than growing without bound.
        assert_eq!(
            retry_after_hint(&cfg, cfg.queue_capacity * 10, Some("x")),
            full
        );
    }

    #[test]
    fn retry_hint_is_deterministic_per_request_but_spreads_across_requests() {
        let cfg = ServeConfig::default();
        let base = cfg.retry_after_ms;
        let hints: Vec<u64> = (0..64)
            .map(|k| retry_after_hint(&cfg, 32, Some(&format!("req-{k}"))))
            .collect();
        for (k, &h) in hints.iter().enumerate() {
            assert_eq!(
                h,
                retry_after_hint(&cfg, 32, Some(&format!("req-{k}"))),
                "hint must be reproducible for a given request id"
            );
            let scaled = base + base * 32 / cfg.queue_capacity as u64;
            assert!((scaled..scaled + base).contains(&h));
        }
        let distinct: std::collections::BTreeSet<u64> = hints.iter().copied().collect();
        assert!(
            distinct.len() >= 16,
            "64 request ids produced only {} distinct backoff hints",
            distinct.len()
        );
    }

    fn tiny_state() -> Arc<ServeState> {
        let mut i = Interner::new();
        let mut db = Database::new();
        let p = i.pred("edge");
        let (a, b) = (i.constant("a"), i.constant("b"));
        db.insert(p, vec![Const(a.0), Const(b.0)]);
        let mut dbs = BTreeMap::new();
        dbs.insert("main".to_string(), db);
        ServeState::new(ServeConfig::default(), i, dbs, "main")
    }

    #[test]
    fn reload_swaps_the_served_database_without_disturbing_holders() {
        let dir = std::env::temp_dir().join(format!("wdpt-serve-reload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // A snapshot with more data than the live db, sharing the "edge"
        // predicate but under a *different* interner.
        let mut si = Interner::new();
        let mut sdb = Database::new();
        let p = si.pred("edge");
        for pair in [("a", "b"), ("b", "c"), ("c", "d")] {
            let (x, y) = (si.constant(pair.0), si.constant(pair.1));
            sdb.insert(p, vec![Const(x.0), Const(y.0)]);
        }
        let snap_path = dir.join("base.wdpt");
        wdpt_store::save_snapshot(&snap_path, &si, &sdb).unwrap();

        let state = tiny_state();
        let before = state.db("main").expect("default db");
        assert_eq!(before.size(), 1);

        let (tuples, applied) = state
            .reload("main", &snap_path, &Vec::<std::path::PathBuf>::new())
            .expect("reload succeeds");
        assert_eq!((tuples, applied), (3, 0));
        // The pre-reload handle still sees the old version; a fresh
        // resolution sees the new one.
        assert_eq!(before.size(), 1);
        assert_eq!(state.db("main").unwrap().size(), 3);
        // Reloading under a new name creates it.
        state
            .reload("aux", &snap_path, &Vec::<std::path::PathBuf>::new())
            .expect("reload into a new name succeeds");
        assert_eq!(state.db("aux").unwrap().size(), 3);

        // A bad path fails without touching the served map.
        let served = state.db("main").unwrap();
        let err = state
            .reload(
                "main",
                &dir.join("missing.wdpt"),
                &Vec::<std::path::PathBuf>::new(),
            )
            .expect_err("missing snapshot must fail");
        assert!(err.contains("missing.wdpt"));
        assert!(Arc::ptr_eq(&served, &state.db("main").unwrap()));

        std::fs::remove_dir_all(&dir).ok();
    }
}
