//! `loadgen` — concurrent client for `wdpt-serve`.
//!
//! Drives the server with N concurrent connections and checks the
//! responses, exercising every protocol path: valid queries (repeated and
//! α-renamed, so the plan cache gets hits), malformed queries (parse and
//! validation errors), deadline-exceeding queries (cancellation), and —
//! in `flood` mode — enough simultaneous work to trip backpressure.
//!
//! With `--endpoints` the clients spread round-robin over a replica
//! fleet, and `--read-your-writes` turns the run into a consistency
//! check: reload acknowledgements record the chain head the primary
//! reports, and subsequent queries either quote it as `min_head`
//! (strict) or merely observe how stale the fleet reads are without it
//! (the ablation).
//!
//! Exit status: 0 when every per-mode assertion held, 1 on assertion
//! failure, 2 on connection/setup failure.

use std::collections::BTreeSet;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wdpt_obs::{read_json_line, write_json_line, Json};

const USAGE: &str = "\
loadgen: concurrent load generator for wdpt-serve

USAGE:
    loadgen [OPTIONS]

OPTIONS:
    --addr HOST:PORT   server address [default: 127.0.0.1:7878]
    --endpoints A,B,C  comma-separated server addresses; clients are
                       assigned round-robin and tallies are also reported
                       per endpoint. The first endpoint is the admin
                       target (reload/stats/scrape/slowlog) [default: the
                       --addr value]
    --clients N        concurrent connections [default: 8]
    --requests N       requests per connection [default: 50]
    --mode MODE        mix | repeat | replan | skew | flood | deadline
                       [default: mix]
                       mix:      valid (repeated + renamed) and invalid
                                 queries, small deadline sprinkled in
                       repeat:   one query repeated (plan-cache throughput)
                       replan:   one *expensive-to-plan* query repeated;
                                 run against a tiny catalog to isolate
                                 planning cost (plan-cache ablation)
                       skew:     one heavy-hitter self-join repeated; on
                                 skewed gen-synth data its observed cost
                                 diverges from the estimate, driving the
                                 adaptive re-planner
                       flood:    heavy queries, expects >=1 overloaded
                       deadline: heavy queries under a tight deadline,
                                 expects cancelled responses
    --deadline-ms MS   deadline for the deadline/mix heavy queries
                       [default: 150]
    --reload-snapshot P  send an admin reload op (snapshot file P) midway
                         through the run, while query traffic is flowing;
                         the run fails unless the reload succeeds
    --reload-delta P     delta file chained onto --reload-snapshot
                         (repeatable, applied in order)
    --reload-db NAME     database name to reload [default: server default]
    --reload-stepwise    send one reload per delta prefix (snapshot+d1,
                         then snapshot+d1+d2, ...) instead of a single
                         reload with the full chain, publishing one
                         replication delta at a time
    --read-your-writes M consistency check across --endpoints while
                         reloads publish deltas. M = strict: quote the
                         last acknowledged head as min_head on every valid
                         query — stale data fails the run, typed
                         stale_replica responses are tallied; M = observe:
                         send no min_head (ablation) and count how many ok
                         responses carried data older than the last
                         acknowledged write
    --scrape-metrics P   scrape the Prometheus text exposition (admin
                         `metrics` op) midway through the run, while query
                         traffic is flowing, and write it to file P; the
                         run fails unless the scrape parses
    --dump-slowlog P     after the run, drain the server's slow-query log
                         and write the entries (JSON) to file P
    --shutdown         send a shutdown op after the run
    --json             emit a one-line JSON summary on stdout
    --help             print this help
";

/// The Figure 1 / Example 1 query over the generated music catalog.
const BASE_QUERY: &str = r#"SELECT ?x ?y ?z WHERE { (((?x, rec_by, ?y) AND (?x, publ, "after_2010")) OPT (?x, nme_rating, ?z)) OPT (?y, formed_in, ?w) }"#;
/// The same query α-renamed — must hit the same plan-cache entry.
const RENAMED_QUERY: &str = r#"SELECT ?a ?b ?c WHERE { (((?a, rec_by, ?b) AND (?a, publ, "after_2010")) OPT (?a, nme_rating, ?c)) OPT (?b, formed_in, ?d) }"#;
/// Parse error: a triple pattern needs three terms.
const INVALID_QUERY: &str = "SELECT ?x WHERE { (?x, rec_by) }";
/// Validation error: duplicate SELECT variable.
const DUPLICATE_SELECT: &str = "SELECT ?x ?x WHERE { (?x, rec_by, ?y) }";
/// A 4-way cross product over distinct predicates: trivial to plan (each
/// atom has a unique predicate, so the core's endomorphism search is
/// instant) but big enough to outlive tight deadlines and keep workers
/// busy in flood mode.
const HEAVY_QUERY: &str =
    "((((?a, rec_by, ?b) AND (?c, rec_by, ?d)) AND (?e, publ, ?f)) AND (?g, nme_rating, ?h))";
/// The opposite trade-off: a 6-way cross product over ONE predicate. The
/// core computation must enumerate 6⁶ endomorphisms, so *planning* is the
/// dominant cost; run it against a tiny catalog (`--gen-music 2x1`) and
/// evaluation is trivial. Repeating it isolates what the plan cache buys.
const PLAN_HEAVY_QUERY: &str = "(((((?a, rec_by, ?b) AND (?c, rec_by, ?d)) AND (?e, rec_by, ?f)) AND (?g, rec_by, ?h)) AND ((?i, rec_by, ?j) AND (?k, rec_by, ?l)))";
/// Self-join over the synthetic catalog's heavy-hitter predicate `p0`
/// (`wdpt-store gen-synth --skew`). The planner's uniform-distinct
/// estimate undercounts the `p0` posting list by the skew factor, so the
/// observed `nodes_expanded` diverges from the estimate run after run —
/// which is what drives the adaptive re-planner the CI `plan_smoke` job
/// asserts on (`serve.plan.replans > 0`).
const SKEW_QUERY: &str = "SELECT ?x ?y ?z WHERE { ((?x, p0, ?y) AND (?y, p0, ?z)) }";

#[derive(Clone)]
struct Args {
    addr: String,
    endpoints: Vec<String>,
    clients: usize,
    requests: usize,
    mode: String,
    deadline_ms: u64,
    reload_snapshot: Option<String>,
    reload_deltas: Vec<String>,
    reload_db: Option<String>,
    reload_stepwise: bool,
    ryw: Option<String>,
    scrape_metrics: Option<String>,
    dump_slowlog: Option<String>,
    shutdown: bool,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        endpoints: Vec::new(),
        clients: 8,
        requests: 50,
        mode: "mix".to_string(),
        deadline_ms: 150,
        reload_snapshot: None,
        reload_deltas: Vec::new(),
        reload_db: None,
        reload_stepwise: false,
        ryw: None,
        scrape_metrics: None,
        dump_slowlog: None,
        shutdown: false,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--addr" => args.addr = value("--addr")?,
            "--endpoints" => {
                args.endpoints = value("--endpoints")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if args.endpoints.is_empty() {
                    return Err("--endpoints needs at least one address".to_string());
                }
            }
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients expects a number".to_string())?
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests expects a number".to_string())?
            }
            "--mode" => {
                args.mode = value("--mode")?;
                if !matches!(
                    args.mode.as_str(),
                    "mix" | "repeat" | "replan" | "skew" | "flood" | "deadline"
                ) {
                    return Err(format!("unknown mode {:?}", args.mode));
                }
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms expects a number".to_string())?
            }
            "--reload-snapshot" => args.reload_snapshot = Some(value("--reload-snapshot")?),
            "--reload-delta" => args.reload_deltas.push(value("--reload-delta")?),
            "--reload-db" => args.reload_db = Some(value("--reload-db")?),
            "--reload-stepwise" => args.reload_stepwise = true,
            "--read-your-writes" => {
                let m = value("--read-your-writes")?;
                if !matches!(m.as_str(), "strict" | "observe") {
                    return Err(format!(
                        "--read-your-writes expects strict or observe, got {m:?}"
                    ));
                }
                args.ryw = Some(m);
            }
            "--scrape-metrics" => args.scrape_metrics = Some(value("--scrape-metrics")?),
            "--dump-slowlog" => args.dump_slowlog = Some(value("--dump-slowlog")?),
            "--shutdown" => args.shutdown = true,
            "--json" => args.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    // `endpoints` is the canonical fleet; `addr` the admin target (reload,
    // stats, scrape, slowlog — they must hit the primary, which a fleet
    // lists first).
    if args.endpoints.is_empty() {
        args.endpoints = vec![args.addr.clone()];
    } else {
        args.addr = args.endpoints[0].clone();
    }
    Ok(args)
}

/// Read-your-writes bookkeeping shared between the reload thread (which
/// records each acknowledged chain head, in publish order) and the client
/// threads (which quote and check them). The vector's order IS the chain
/// order, so "older than" is an index comparison.
#[derive(Default)]
struct Ryw {
    acked: Mutex<Vec<u64>>,
}

impl Ryw {
    fn record(&self, head: u64) {
        let mut acked = self.acked.lock().expect("acked heads");
        if !acked.contains(&head) {
            acked.push(head);
        }
    }

    fn latest(&self) -> Option<u64> {
        self.acked.lock().expect("acked heads").last().copied()
    }

    fn index_of(&self, head: u64) -> Option<usize> {
        self.acked
            .lock()
            .expect("acked heads")
            .iter()
            .position(|&h| h == head)
    }

    /// True iff `seen` is a head we acked *earlier* than `reference` —
    /// i.e. the response carried data from before the reference write.
    /// Heads we never acked (the server was ahead, or bootstrapped from a
    /// chain we didn't publish) are not evidence of staleness.
    fn is_stale(&self, seen: u64, reference: u64) -> bool {
        match (self.index_of(seen), self.index_of(reference)) {
            (Some(s), Some(r)) => s < r,
            _ => false,
        }
    }
}

/// Aggregate tallies across all client threads.
#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    rows: AtomicU64,
    /// Total result-set sizes from `ok` lines — unlike `rows`, not capped
    /// by the server's `max_rows` row streaming limit.
    answers: AtomicU64,
    errors: AtomicU64,
    cancelled: AtomicU64,
    overloaded: AtomicU64,
    cache_hits: AtomicU64,
    failures: AtomicU64,
    latency_us: AtomicU64,
    max_latency_us: AtomicU64,
    /// Every response latency, for exact post-run percentiles. A run is at
    /// most `clients * requests` samples, so keeping them all is cheap and
    /// avoids approximating the tail with a histogram sketch.
    latencies: Mutex<Vec<u64>>,
    reloads: AtomicU64,
    scrapes: AtomicU64,
    /// Distinct `retry_after_ms` hints seen on `overloaded` responses: the
    /// server jitters and depth-scales the hint precisely so rejected
    /// clients don't retry in lockstep, and flood mode asserts the spread.
    retry_hints: Mutex<BTreeSet<u64>>,
    /// Typed `stale_replica` refusals (strict read-your-writes only): the
    /// replica could not reach the quoted `min_head` within the deadline
    /// and said so instead of serving stale data. Tallied, not a failure.
    ryw_stale_replica: AtomicU64,
    /// Responses whose data was verifiably older than the latest
    /// acknowledged write. In strict mode any of these fails the run; in
    /// observe mode (no `min_head` sent) they are the measurement.
    ryw_stale_data: AtomicU64,
    /// Responses that carried a head we could check against the acked
    /// chain (the read-your-writes denominator).
    ryw_checked: AtomicU64,
    /// Per-endpoint slices of the same counters, index-aligned with
    /// `Args::endpoints`.
    per_endpoint: Vec<EndpointTally>,
}

#[derive(Default)]
struct EndpointTally {
    responded: AtomicU64,
    ok: AtomicU64,
    latency_us: AtomicU64,
    stale_replica: AtomicU64,
}

impl Tally {
    fn new(endpoints: usize) -> Tally {
        Tally {
            per_endpoint: (0..endpoints).map(|_| EndpointTally::default()).collect(),
            ..Tally::default()
        }
    }

    fn fail(&self, msg: &str) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        eprintln!("loadgen: ASSERTION FAILED: {msg}");
    }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    fn open(addr: &str) -> Result<Connection, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        // A hung server must fail the run, not wedge it.
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let writer = BufWriter::new(stream);
        Ok(Connection { reader, writer })
    }

    /// Sends one request and reads lines until the terminal status line.
    /// Returns `(status_line, row_count)`.
    fn round_trip(&mut self, req: &Json) -> Result<(Json, u64), String> {
        write_json_line(&mut self.writer, req).map_err(|e| format!("write: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))?;
        let mut rows = 0u64;
        loop {
            let line = read_json_line(&mut self.reader)
                .map_err(|e| format!("read: {e}"))?
                .ok_or_else(|| "server closed the connection mid-response".to_string())?;
            if line.get("kind").and_then(Json::as_str) == Some("row") {
                rows += 1;
                continue;
            }
            return Ok((line, rows));
        }
    }
}

fn query(id: &str, text: &str, deadline_ms: Option<u64>, min_head: Option<u64>) -> Json {
    let mut pairs = vec![
        ("op".to_string(), Json::str("query")),
        ("id".to_string(), Json::str(id)),
        ("query".to_string(), Json::str(text)),
    ];
    if let Some(ms) = deadline_ms {
        pairs.push(("deadline_ms".to_string(), Json::int(ms)));
    }
    if let Some(h) = min_head {
        pairs.push(("min_head".to_string(), Json::str(wdpt_store::head_hex(h))));
    }
    Json::obj(pairs)
}

fn run_client(client: usize, args: &Args, tally: &Tally, ryw: &Ryw) -> Result<(), String> {
    let endpoint_idx = client % args.endpoints.len();
    let endpoint = &args.endpoints[endpoint_idx];
    let per_ep = &tally.per_endpoint[endpoint_idx];
    let strict = args.ryw.as_deref() == Some("strict");
    let mut conn = Connection::open(endpoint)?;
    for r in 0..args.requests {
        let id = format!("c{client}r{r}");
        // Strict read-your-writes: quote the newest acked write on every
        // valid query, so the replica must serve at-or-after it (or refuse
        // with a typed stale_replica).
        let quoted_head = if strict { ryw.latest() } else { None };
        let (req, expect) = match args.mode.as_str() {
            "repeat" => (query(&id, BASE_QUERY, None, quoted_head), "ok"),
            "replan" => (query(&id, PLAN_HEAVY_QUERY, None, quoted_head), "ok"),
            "skew" => (query(&id, SKEW_QUERY, None, quoted_head), "ok"),
            "flood" => (query(&id, HEAVY_QUERY, Some(args.deadline_ms), None), "any"),
            "deadline" => (
                query(&id, HEAVY_QUERY, Some(args.deadline_ms), None),
                "cancelled",
            ),
            _ => match r % 6 {
                0 | 3 => (query(&id, BASE_QUERY, None, quoted_head), "ok"),
                1 => (query(&id, RENAMED_QUERY, None, quoted_head), "ok"),
                2 => (query(&id, INVALID_QUERY, None, None), "error"),
                4 => (query(&id, DUPLICATE_SELECT, None, None), "error"),
                _ => (query(&id, HEAVY_QUERY, Some(args.deadline_ms), None), "any"),
            },
        };
        let started = Instant::now();
        let (status_line, rows) = conn.round_trip(&req)?;
        let us = started.elapsed().as_micros() as u64;
        tally.latency_us.fetch_add(us, Ordering::Relaxed);
        tally.max_latency_us.fetch_max(us, Ordering::Relaxed);
        tally.latencies.lock().expect("latency samples").push(us);
        tally.rows.fetch_add(rows, Ordering::Relaxed);
        per_ep.responded.fetch_add(1, Ordering::Relaxed);
        per_ep.latency_us.fetch_add(us, Ordering::Relaxed);

        let status = status_line
            .get("status")
            .and_then(Json::as_str)
            .unwrap_or("missing")
            .to_string();
        let error_kind = status_line.get("kind").and_then(Json::as_str).unwrap_or("");
        let stale_refusal = status == "error" && error_kind == "stale_replica";
        if status_line.get("id").and_then(Json::as_str) != Some(id.as_str()) {
            tally.fail(&format!("{id}: response id mismatch on {status_line}"));
        }
        match status.as_str() {
            "ok" => {
                tally.ok.fetch_add(1, Ordering::Relaxed);
                per_ep.ok.fetch_add(1, Ordering::Relaxed);
                if let Some(n) = status_line.get("answers").and_then(Json::as_num) {
                    tally.answers.fetch_add(n as u64, Ordering::Relaxed);
                }
                if status_line.get("cache").and_then(Json::as_str) == Some("hit") {
                    tally.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                if args.ryw.is_some() {
                    check_ryw(&id, &status_line, quoted_head, tally, ryw, strict);
                }
            }
            "error" => {
                tally.errors.fetch_add(1, Ordering::Relaxed);
                if stale_refusal {
                    tally.ryw_stale_replica.fetch_add(1, Ordering::Relaxed);
                    per_ep.stale_replica.fetch_add(1, Ordering::Relaxed);
                }
            }
            "cancelled" => {
                tally.cancelled.fetch_add(1, Ordering::Relaxed);
                // A cancelled query must come back within ~2x its deadline
                // (scheduling slack aside); a cooperative check that never
                // fires would blow far past this.
                let budget_us = args
                    .deadline_ms
                    .saturating_mul(2_000)
                    .saturating_add(500_000);
                if us > budget_us {
                    tally.fail(&format!(
                        "{id}: cancelled after {us}us, over 2x the {}ms deadline",
                        args.deadline_ms
                    ));
                }
            }
            "overloaded" => {
                tally.overloaded.fetch_add(1, Ordering::Relaxed);
                match status_line.get("retry_after_ms").and_then(Json::as_num) {
                    Some(hint) => {
                        tally
                            .retry_hints
                            .lock()
                            .expect("retry hint set")
                            .insert(hint as u64);
                    }
                    None => tally.fail(&format!("{id}: overloaded without retry_after_ms")),
                }
                // Honor the backpressure hint before the next request.
                std::thread::sleep(Duration::from_millis(
                    status_line
                        .get("retry_after_ms")
                        .and_then(Json::as_num)
                        .unwrap_or(50.0) as u64,
                ));
            }
            other => tally.fail(&format!("{id}: unexpected status {other:?}")),
        }
        match expect {
            // A typed stale_replica refusal is the contract-honoring
            // answer when a strict run quotes a head the replica hasn't
            // reached by the deadline — tallied above, not a failure.
            "ok" if stale_refusal && quoted_head.is_some() => {}
            "ok" if status != "ok" => {
                tally.fail(&format!("{id}: expected ok, got {status} ({status_line})"))
            }
            "error" if status != "error" => {
                tally.fail(&format!("{id}: expected error, got {status}"))
            }
            "cancelled" if !matches!(status.as_str(), "cancelled" | "overloaded") => {
                tally.fail(&format!("{id}: expected cancelled, got {status}"))
            }
            _ => {}
        }
    }
    Ok(())
}

/// Checks one `ok` response against the read-your-writes ledger. The
/// server stamps every `ok` line with the chain head it served from; a
/// head we acked earlier than the newest acked write means the response
/// predates that write.
fn check_ryw(id: &str, line: &Json, quoted: Option<u64>, tally: &Tally, ryw: &Ryw, strict: bool) {
    let Some(latest) = ryw.latest() else { return };
    let seen = line
        .get("head")
        .and_then(Json::as_str)
        .and_then(wdpt_store::parse_head_hex);
    let Some(seen) = seen else { return };
    if ryw.index_of(seen).is_none() {
        return; // a head we never published — not comparable
    }
    tally.ryw_checked.fetch_add(1, Ordering::Relaxed);
    match quoted {
        // Strict: serving data older than the quoted min_head breaks the
        // admission contract outright.
        Some(min) if ryw.is_stale(seen, min) => tally.fail(&format!(
            "{id}: read-your-writes violation: server answered from head \
             {} although min_head {} was quoted",
            wdpt_store::head_hex(seen),
            wdpt_store::head_hex(min)
        )),
        Some(_) => {}
        // Observe (no min_head sent): staleness is the measurement, and in
        // strict runs a pre-quote race is still worth counting.
        None if ryw.is_stale(seen, latest) => {
            tally.ryw_stale_data.fetch_add(1, Ordering::Relaxed);
            if strict {
                tally.fail(&format!(
                    "{id}: stale read in strict mode: head {} predates acked {}",
                    wdpt_store::head_hex(seen),
                    wdpt_store::head_hex(latest)
                ));
            }
        }
        None => {}
    }
}

/// Sends the admin `reload` op from `--reload-snapshot`/`--reload-delta`
/// on its own connection while the client threads keep querying, and
/// fails the run unless the server acknowledges the swap. Each ack's
/// `head` field is recorded in the read-your-writes ledger. With
/// `--reload-stepwise` the delta chain is published one prefix at a time
/// (snapshot+d1, snapshot+d1+d2, ...), so followers see individual
/// replication deltas instead of one batch.
fn send_reload(args: &Args, tally: &Tally, ryw: &Ryw) {
    let snapshot = args
        .reload_snapshot
        .clone()
        .expect("send_reload requires --reload-snapshot");
    let steps: Vec<&[String]> = if args.reload_stepwise && !args.reload_deltas.is_empty() {
        (1..=args.reload_deltas.len())
            .map(|k| &args.reload_deltas[..k])
            .collect()
    } else {
        vec![&args.reload_deltas[..]]
    };
    for (i, deltas) in steps.iter().enumerate() {
        let mut pairs = vec![
            ("op".to_string(), Json::str("reload")),
            ("id".to_string(), Json::str(format!("loadgen-reload-{i}"))),
            ("snapshot".to_string(), Json::str(snapshot.clone())),
        ];
        if !deltas.is_empty() {
            pairs.push((
                "deltas".to_string(),
                Json::Arr(deltas.iter().map(|d| Json::str(d.clone())).collect()),
            ));
        }
        if let Some(db) = &args.reload_db {
            pairs.push(("db".to_string(), Json::str(db.clone())));
        }
        let req = Json::obj(pairs);
        match Connection::open(&args.addr).and_then(|mut c| c.round_trip(&req)) {
            Ok((line, _)) => {
                if line.get("status").and_then(Json::as_str) == Some("ok") {
                    tally.reloads.fetch_add(1, Ordering::Relaxed);
                    if let Some(h) = line
                        .get("head")
                        .and_then(Json::as_str)
                        .and_then(wdpt_store::parse_head_hex)
                    {
                        ryw.record(h);
                    }
                    eprintln!("loadgen: reload acknowledged: {line}");
                } else {
                    tally.fail(&format!("reload rejected: {line}"));
                }
            }
            Err(e) => tally.fail(&format!("reload round-trip failed: {e}")),
        }
        if i + 1 < steps.len() {
            // Give the fleet a moment to stream each delta before the
            // next prefix supersedes it.
            std::thread::sleep(Duration::from_millis(150));
        }
    }
}

/// Builds the `--json` planner section from the server's counter
/// registry (the `stats` op exposes the same counters the Prometheus
/// exposition carries): the strategy mix of installed plans, how often
/// adaptive re-planning fired, and how often a stats-epoch refresh
/// rebuilt a cached plan.
fn planner_section(stats: Option<&Json>) -> Json {
    let counter = |name: &str| -> u64 {
        stats
            .and_then(|s| s.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64
    };
    Json::obj([
        (
            "replans".to_string(),
            Json::int(counter("serve.plan.replans")),
        ),
        (
            "stats_refreshes".to_string(),
            Json::int(counter("serve.plan.stats_refresh")),
        ),
        (
            "strategy_mix".to_string(),
            Json::obj([
                ("greedy", Json::int(counter("serve.plan.strategy.greedy"))),
                ("dp", Json::int(counter("serve.plan.strategy.dp"))),
                ("bushy", Json::int(counter("serve.plan.strategy.bushy"))),
            ]),
        ),
    ])
}

/// Reads the server's cache-hit counter via a `stats` op.
fn server_stats(addr: &str) -> Result<Json, String> {
    let mut conn = Connection::open(addr)?;
    let (line, _) = conn.round_trip(&Json::obj([("op", Json::str("stats"))]))?;
    Ok(line)
}

/// Scrapes the Prometheus text exposition mid-run (from its own
/// connection, like `send_reload`) and writes it to `path`. A scrape that
/// fails, or whose body lacks any `# TYPE` header, fails the run.
fn scrape_metrics(addr: &str, path: &str, tally: &Tally) {
    let req = Json::obj([
        ("op", Json::str("metrics")),
        ("id", Json::str("loadgen-scrape")),
        ("format", Json::str("prometheus")),
    ]);
    match Connection::open(addr).and_then(|mut c| c.round_trip(&req)) {
        Ok((line, _)) => {
            let text = line.get("text").and_then(Json::as_str).unwrap_or("");
            if line.get("status").and_then(Json::as_str) != Some("ok") || !text.contains("# TYPE") {
                tally.fail(&format!("metrics scrape unusable: {line}"));
                return;
            }
            match std::fs::write(path, text) {
                Ok(()) => {
                    tally.scrapes.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "loadgen: scraped {} exposition lines to {path}",
                        text.lines().count()
                    );
                }
                Err(e) => tally.fail(&format!("cannot write {path}: {e}")),
            }
        }
        Err(e) => tally.fail(&format!("metrics scrape failed: {e}")),
    }
}

/// Drains the server's slow-query log after the run and writes the
/// response (entries + dropped count) to `path` as one JSON document.
fn dump_slowlog(addr: &str, path: &str, tally: &Tally) {
    let req = Json::obj([
        ("op", Json::str("slowlog")),
        ("id", Json::str("loadgen-slowlog")),
    ]);
    match Connection::open(addr).and_then(|mut c| c.round_trip(&req)) {
        Ok((line, _)) => {
            if line.get("status").and_then(Json::as_str) != Some("ok") {
                tally.fail(&format!("slowlog drain rejected: {line}"));
                return;
            }
            let n = line
                .get("entries")
                .and_then(Json::as_arr)
                .map_or(0, |e| e.len());
            match std::fs::write(path, format!("{line}\n")) {
                Ok(()) => eprintln!("loadgen: dumped {n} slowlog entries to {path}"),
                Err(e) => tally.fail(&format!("cannot write {path}: {e}")),
            }
        }
        Err(e) => tally.fail(&format!("slowlog drain failed: {e}")),
    }
}

/// Nearest-rank percentile over the sorted latency samples, in
/// milliseconds. `q` in (0, 1]. `None` when no request completed — a
/// percentile of an empty run is undefined, not 0ms (a 0ms p99 in a
/// report reads as an impossibly fast server, not an idle one).
fn percentile_ms(sorted_us: &[u64], q: f64) -> Option<f64> {
    if sorted_us.is_empty() {
        return None;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    Some(sorted_us[rank - 1] as f64 / 1_000.0)
}

/// Renders an optional millisecond figure for the text summary: `n/a`
/// when no sample backs it.
fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.1}ms"),
        None => "n/a".to_string(),
    }
}

/// The JSON twin of [`fmt_ms`]: `null`, not 0, for a missing figure.
fn json_ms(v: Option<f64>) -> Json {
    match v {
        Some(ms) => Json::num(ms),
        None => Json::Null,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let tally = Arc::new(Tally::new(args.endpoints.len()));
    let ryw = Arc::new(Ryw::default());
    let started = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let args = args.clone();
            let tally = Arc::clone(&tally);
            let ryw = Arc::clone(&ryw);
            std::thread::spawn(move || run_client(c, &args, &tally, &ryw))
        })
        .collect();
    let reloader = args.reload_snapshot.is_some().then(|| {
        let args = args.clone();
        let tally = Arc::clone(&tally);
        let ryw = Arc::clone(&ryw);
        std::thread::spawn(move || {
            // Let query traffic get flowing first, so the swap happens
            // underneath live requests.
            std::thread::sleep(Duration::from_millis(200));
            send_reload(&args, &tally, &ryw);
        })
    });
    let scraper = args.scrape_metrics.clone().map(|path| {
        let addr = args.addr.clone();
        let tally = Arc::clone(&tally);
        std::thread::spawn(move || {
            // Mid-run, so the scrape observes live gauges and in-flight
            // request histograms, not a quiesced server.
            std::thread::sleep(Duration::from_millis(200));
            scrape_metrics(&addr, &path, &tally);
        })
    });
    let mut connect_failures = 0;
    for h in handles {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                eprintln!("loadgen: client failed: {e}");
                connect_failures += 1;
            }
            Err(_) => {
                eprintln!("loadgen: client thread panicked");
                connect_failures += 1;
            }
        }
    }
    if let Some(h) = reloader {
        if h.join().is_err() {
            eprintln!("loadgen: reload thread panicked");
            connect_failures += 1;
        }
    }
    if let Some(h) = scraper {
        if h.join().is_err() {
            eprintln!("loadgen: metrics scrape thread panicked");
            connect_failures += 1;
        }
    }
    let wall = started.elapsed();

    // Per-mode aggregate assertions.
    let responded = tally.ok.load(Ordering::Relaxed)
        + tally.errors.load(Ordering::Relaxed)
        + tally.cancelled.load(Ordering::Relaxed)
        + tally.overloaded.load(Ordering::Relaxed);
    let expected = (args.clients * args.requests) as u64;
    if connect_failures == 0 && responded != expected {
        tally.fail(&format!("{responded} responses to {expected} requests"));
    }
    let retry_hints_distinct = tally.retry_hints.lock().expect("retry hint set").len() as u64;
    // Per-mode expectations are about response *composition*, so they only
    // make sense when responses were requested at all: a `--requests 0`
    // smoke run (connectivity check) must exit 0, not trip "saw no ok".
    if expected > 0 {
        match args.mode.as_str() {
            "flood" => {
                let overloaded = tally.overloaded.load(Ordering::Relaxed);
                if overloaded == 0 {
                    tally.fail("flood mode saw no overloaded responses");
                }
                // The hint carries per-request jitter; a flood of identical
                // hints would send every rejected client back in lockstep.
                if overloaded >= 4 && retry_hints_distinct < 2 {
                    tally.fail(&format!(
                        "{overloaded} overloaded responses all advertised the same \
                         retry_after_ms; retries would stampede in lockstep"
                    ));
                }
            }
            "deadline" if tally.cancelled.load(Ordering::Relaxed) == 0 => {
                tally.fail("deadline mode saw no cancelled responses");
            }
            "mix" => {
                if tally.ok.load(Ordering::Relaxed) == 0 {
                    tally.fail("mix mode saw no ok responses");
                }
                if tally.errors.load(Ordering::Relaxed) == 0 {
                    tally.fail("mix mode saw no error responses");
                }
            }
            _ => {}
        }
    }

    let stats = server_stats(&args.addr).ok();
    if let Some(path) = &args.dump_slowlog {
        dump_slowlog(&args.addr, path, &tally);
    }
    if args.shutdown {
        // The whole fleet, not just the admin endpoint.
        for endpoint in &args.endpoints {
            if let Ok(mut conn) = Connection::open(endpoint) {
                let _ = conn.round_trip(&Json::obj([("op", Json::str("shutdown"))]));
            }
        }
    }

    let ok = tally.ok.load(Ordering::Relaxed);
    let throughput = responded as f64 / wall.as_secs_f64().max(1e-9);
    let mean_latency_ms = (responded > 0)
        .then(|| tally.latency_us.load(Ordering::Relaxed) as f64 / responded as f64 / 1_000.0);
    let mut sorted_us = std::mem::take(&mut *tally.latencies.lock().expect("latency samples"));
    sorted_us.sort_unstable();
    let (p50_ms, p90_ms, p99_ms) = (
        percentile_ms(&sorted_us, 0.50),
        percentile_ms(&sorted_us, 0.90),
        percentile_ms(&sorted_us, 0.99),
    );
    let server_hits = stats
        .as_ref()
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get("serve.plan_cache.hit"))
        .and_then(Json::as_num)
        .unwrap_or(0.0) as u64;
    let endpoint_summaries: Vec<Json> = args
        .endpoints
        .iter()
        .zip(&tally.per_endpoint)
        .map(|(addr, ep)| {
            let responded = ep.responded.load(Ordering::Relaxed);
            let mean = (responded > 0)
                .then(|| ep.latency_us.load(Ordering::Relaxed) as f64 / responded as f64 / 1_000.0);
            Json::obj([
                ("addr".to_string(), Json::str(addr.clone())),
                ("responded".to_string(), Json::int(responded)),
                ("ok".to_string(), Json::int(ep.ok.load(Ordering::Relaxed))),
                (
                    "stale_replica".to_string(),
                    Json::int(ep.stale_replica.load(Ordering::Relaxed)),
                ),
                ("mean_latency_ms".to_string(), json_ms(mean)),
            ])
        })
        .collect();

    if args.json {
        let summary = Json::obj([
            ("mode".to_string(), Json::str(args.mode.clone())),
            ("clients".to_string(), Json::int(args.clients as u64)),
            ("requests".to_string(), Json::int(expected)),
            ("responded".to_string(), Json::int(responded)),
            ("ok".to_string(), Json::int(ok)),
            (
                "rows".to_string(),
                Json::int(tally.rows.load(Ordering::Relaxed)),
            ),
            (
                "answers".to_string(),
                Json::int(tally.answers.load(Ordering::Relaxed)),
            ),
            (
                "errors".to_string(),
                Json::int(tally.errors.load(Ordering::Relaxed)),
            ),
            (
                "cancelled".to_string(),
                Json::int(tally.cancelled.load(Ordering::Relaxed)),
            ),
            (
                "overloaded".to_string(),
                Json::int(tally.overloaded.load(Ordering::Relaxed)),
            ),
            (
                "retry_hints_distinct".to_string(),
                Json::int(retry_hints_distinct),
            ),
            (
                "reloads".to_string(),
                Json::int(tally.reloads.load(Ordering::Relaxed)),
            ),
            (
                "client_cache_hits".to_string(),
                Json::int(tally.cache_hits.load(Ordering::Relaxed)),
            ),
            ("server_cache_hits".to_string(), Json::int(server_hits)),
            ("wall_secs".to_string(), Json::num(wall.as_secs_f64())),
            ("req_per_sec".to_string(), Json::num(throughput)),
            ("mean_latency_ms".to_string(), json_ms(mean_latency_ms)),
            ("p50_latency_ms".to_string(), json_ms(p50_ms)),
            ("p90_latency_ms".to_string(), json_ms(p90_ms)),
            ("p99_latency_ms".to_string(), json_ms(p99_ms)),
            (
                "max_latency_ms".to_string(),
                Json::num(tally.max_latency_us.load(Ordering::Relaxed) as f64 / 1_000.0),
            ),
            (
                "metrics_scrapes".to_string(),
                Json::int(tally.scrapes.load(Ordering::Relaxed)),
            ),
            (
                "ryw_checked".to_string(),
                Json::int(tally.ryw_checked.load(Ordering::Relaxed)),
            ),
            (
                "ryw_stale_data".to_string(),
                Json::int(tally.ryw_stale_data.load(Ordering::Relaxed)),
            ),
            (
                "ryw_stale_replica".to_string(),
                Json::int(tally.ryw_stale_replica.load(Ordering::Relaxed)),
            ),
            ("planner".to_string(), planner_section(stats.as_ref())),
            ("endpoints".to_string(), Json::Arr(endpoint_summaries)),
            (
                "failures".to_string(),
                Json::int(tally.failures.load(Ordering::Relaxed) + connect_failures),
            ),
        ]);
        let mut out = std::io::stdout().lock();
        let _ = write_json_line(&mut out, &summary);
    } else {
        println!(
            "loadgen[{}]: {responded}/{expected} responded in {:.2}s ({throughput:.0} req/s); \
             ok {ok}, rows {}, errors {}, cancelled {}, overloaded {}; \
             cache hits seen {} (server total {server_hits}); \
             latency mean {} p50 {} p90 {} p99 {} max {:.1}ms",
            args.mode,
            wall.as_secs_f64(),
            tally.rows.load(Ordering::Relaxed),
            tally.errors.load(Ordering::Relaxed),
            tally.cancelled.load(Ordering::Relaxed),
            tally.overloaded.load(Ordering::Relaxed),
            tally.cache_hits.load(Ordering::Relaxed),
            fmt_ms(mean_latency_ms),
            fmt_ms(p50_ms),
            fmt_ms(p90_ms),
            fmt_ms(p99_ms),
            tally.max_latency_us.load(Ordering::Relaxed) as f64 / 1_000.0,
        );
        let planner = planner_section(stats.as_ref());
        let pcount = |section: &Json, name: &str| {
            section.get(name).and_then(Json::as_num).unwrap_or(0.0) as u64
        };
        let mix = planner.get("strategy_mix").cloned().unwrap_or(Json::Null);
        println!(
            "loadgen:   planner: replans {}, stats refreshes {}, \
             strategy mix greedy {} dp {} bushy {}",
            pcount(&planner, "replans"),
            pcount(&planner, "stats_refreshes"),
            pcount(&mix, "greedy"),
            pcount(&mix, "dp"),
            pcount(&mix, "bushy"),
        );
        if args.endpoints.len() > 1 {
            for ep in &endpoint_summaries {
                println!(
                    "loadgen:   endpoint {}: responded {}, ok {}, stale_replica {}",
                    ep.get("addr").and_then(Json::as_str).unwrap_or("?"),
                    ep.get("responded").and_then(Json::as_num).unwrap_or(0.0),
                    ep.get("ok").and_then(Json::as_num).unwrap_or(0.0),
                    ep.get("stale_replica")
                        .and_then(Json::as_num)
                        .unwrap_or(0.0),
                );
            }
        }
        if args.ryw.is_some() {
            println!(
                "loadgen:   read-your-writes[{}]: checked {}, stale data {}, \
                 stale_replica refusals {}",
                args.ryw.as_deref().unwrap_or(""),
                tally.ryw_checked.load(Ordering::Relaxed),
                tally.ryw_stale_data.load(Ordering::Relaxed),
                tally.ryw_stale_replica.load(Ordering::Relaxed),
            );
        }
    }

    if connect_failures > 0 {
        ExitCode::from(2)
    } else if tally.failures.load(Ordering::Relaxed) > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: a run where zero requests complete must report `n/a`
    /// percentiles (and `null` in JSON), not a fabricated 0ms.
    #[test]
    fn empty_run_percentiles_are_not_a_number() {
        assert_eq!(percentile_ms(&[], 0.50), None);
        assert_eq!(percentile_ms(&[], 0.99), None);
        assert_eq!(fmt_ms(percentile_ms(&[], 0.99)), "n/a");
        assert!(matches!(json_ms(percentile_ms(&[], 0.99)), Json::Null));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let us: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert_eq!(percentile_ms(&us, 0.50), Some(50.0));
        assert_eq!(percentile_ms(&us, 0.90), Some(90.0));
        assert_eq!(percentile_ms(&us, 0.99), Some(99.0));
        assert_eq!(percentile_ms(&us, 1.0), Some(100.0));
        assert_eq!(percentile_ms(&[7_500], 0.50), Some(7.5));
        assert_eq!(fmt_ms(Some(7.5)), "7.5ms");
    }

    /// Staleness is an index comparison over the acked order; unknown
    /// heads (the server ran ahead of our writes) are never stale.
    #[test]
    fn ryw_staleness_follows_acked_order() {
        let ryw = Ryw::default();
        ryw.record(0xa);
        ryw.record(0xb);
        ryw.record(0xb); // idempotent re-ack
        ryw.record(0xc);
        assert_eq!(ryw.latest(), Some(0xc));
        assert!(ryw.is_stale(0xa, 0xc));
        assert!(ryw.is_stale(0xb, 0xc));
        assert!(!ryw.is_stale(0xc, 0xc));
        assert!(!ryw.is_stale(0xc, 0xa), "newer than reference is fine");
        assert!(!ryw.is_stale(0xdead, 0xc), "unknown head is not stale");
        assert_eq!(ryw.index_of(0xb), Some(1));
    }
}
