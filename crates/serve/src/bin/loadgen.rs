//! `loadgen` — concurrent client for `wdpt-serve`.
//!
//! Drives the server with N concurrent connections and checks the
//! responses, exercising every protocol path: valid queries (repeated and
//! α-renamed, so the plan cache gets hits), malformed queries (parse and
//! validation errors), deadline-exceeding queries (cancellation), and —
//! in `flood` mode — enough simultaneous work to trip backpressure.
//!
//! Exit status: 0 when every per-mode assertion held, 1 on assertion
//! failure, 2 on connection/setup failure.

use std::collections::BTreeSet;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wdpt_obs::{read_json_line, write_json_line, Json};

const USAGE: &str = "\
loadgen: concurrent load generator for wdpt-serve

USAGE:
    loadgen [OPTIONS]

OPTIONS:
    --addr HOST:PORT   server address [default: 127.0.0.1:7878]
    --clients N        concurrent connections [default: 8]
    --requests N       requests per connection [default: 50]
    --mode MODE        mix | repeat | replan | flood | deadline [default: mix]
                       mix:      valid (repeated + renamed) and invalid
                                 queries, small deadline sprinkled in
                       repeat:   one query repeated (plan-cache throughput)
                       replan:   one *expensive-to-plan* query repeated;
                                 run against a tiny catalog to isolate
                                 planning cost (plan-cache ablation)
                       flood:    heavy queries, expects >=1 overloaded
                       deadline: heavy queries under a tight deadline,
                                 expects cancelled responses
    --deadline-ms MS   deadline for the deadline/mix heavy queries
                       [default: 150]
    --reload-snapshot P  send an admin reload op (snapshot file P) midway
                         through the run, while query traffic is flowing;
                         the run fails unless the reload succeeds
    --reload-delta P     delta file chained onto --reload-snapshot
                         (repeatable, applied in order)
    --reload-db NAME     database name to reload [default: server default]
    --scrape-metrics P   scrape the Prometheus text exposition (admin
                         `metrics` op) midway through the run, while query
                         traffic is flowing, and write it to file P; the
                         run fails unless the scrape parses
    --dump-slowlog P     after the run, drain the server's slow-query log
                         and write the entries (JSON) to file P
    --shutdown         send a shutdown op after the run
    --json             emit a one-line JSON summary on stdout
    --help             print this help
";

/// The Figure 1 / Example 1 query over the generated music catalog.
const BASE_QUERY: &str = r#"SELECT ?x ?y ?z WHERE { (((?x, rec_by, ?y) AND (?x, publ, "after_2010")) OPT (?x, nme_rating, ?z)) OPT (?y, formed_in, ?w) }"#;
/// The same query α-renamed — must hit the same plan-cache entry.
const RENAMED_QUERY: &str = r#"SELECT ?a ?b ?c WHERE { (((?a, rec_by, ?b) AND (?a, publ, "after_2010")) OPT (?a, nme_rating, ?c)) OPT (?b, formed_in, ?d) }"#;
/// Parse error: a triple pattern needs three terms.
const INVALID_QUERY: &str = "SELECT ?x WHERE { (?x, rec_by) }";
/// Validation error: duplicate SELECT variable.
const DUPLICATE_SELECT: &str = "SELECT ?x ?x WHERE { (?x, rec_by, ?y) }";
/// A 4-way cross product over distinct predicates: trivial to plan (each
/// atom has a unique predicate, so the core's endomorphism search is
/// instant) but big enough to outlive tight deadlines and keep workers
/// busy in flood mode.
const HEAVY_QUERY: &str =
    "((((?a, rec_by, ?b) AND (?c, rec_by, ?d)) AND (?e, publ, ?f)) AND (?g, nme_rating, ?h))";
/// The opposite trade-off: a 6-way cross product over ONE predicate. The
/// core computation must enumerate 6⁶ endomorphisms, so *planning* is the
/// dominant cost; run it against a tiny catalog (`--gen-music 2x1`) and
/// evaluation is trivial. Repeating it isolates what the plan cache buys.
const PLAN_HEAVY_QUERY: &str = "(((((?a, rec_by, ?b) AND (?c, rec_by, ?d)) AND (?e, rec_by, ?f)) AND (?g, rec_by, ?h)) AND ((?i, rec_by, ?j) AND (?k, rec_by, ?l)))";

#[derive(Clone)]
struct Args {
    addr: String,
    clients: usize,
    requests: usize,
    mode: String,
    deadline_ms: u64,
    reload_snapshot: Option<String>,
    reload_deltas: Vec<String>,
    reload_db: Option<String>,
    scrape_metrics: Option<String>,
    dump_slowlog: Option<String>,
    shutdown: bool,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        clients: 8,
        requests: 50,
        mode: "mix".to_string(),
        deadline_ms: 150,
        reload_snapshot: None,
        reload_deltas: Vec::new(),
        reload_db: None,
        scrape_metrics: None,
        dump_slowlog: None,
        shutdown: false,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--addr" => args.addr = value("--addr")?,
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients expects a number".to_string())?
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests expects a number".to_string())?
            }
            "--mode" => {
                args.mode = value("--mode")?;
                if !matches!(
                    args.mode.as_str(),
                    "mix" | "repeat" | "replan" | "flood" | "deadline"
                ) {
                    return Err(format!("unknown mode {:?}", args.mode));
                }
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms expects a number".to_string())?
            }
            "--reload-snapshot" => args.reload_snapshot = Some(value("--reload-snapshot")?),
            "--reload-delta" => args.reload_deltas.push(value("--reload-delta")?),
            "--reload-db" => args.reload_db = Some(value("--reload-db")?),
            "--scrape-metrics" => args.scrape_metrics = Some(value("--scrape-metrics")?),
            "--dump-slowlog" => args.dump_slowlog = Some(value("--dump-slowlog")?),
            "--shutdown" => args.shutdown = true,
            "--json" => args.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Aggregate tallies across all client threads.
#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    rows: AtomicU64,
    /// Total result-set sizes from `ok` lines — unlike `rows`, not capped
    /// by the server's `max_rows` row streaming limit.
    answers: AtomicU64,
    errors: AtomicU64,
    cancelled: AtomicU64,
    overloaded: AtomicU64,
    cache_hits: AtomicU64,
    failures: AtomicU64,
    latency_us: AtomicU64,
    max_latency_us: AtomicU64,
    /// Every response latency, for exact post-run percentiles. A run is at
    /// most `clients * requests` samples, so keeping them all is cheap and
    /// avoids approximating the tail with a histogram sketch.
    latencies: Mutex<Vec<u64>>,
    reloads: AtomicU64,
    scrapes: AtomicU64,
    /// Distinct `retry_after_ms` hints seen on `overloaded` responses: the
    /// server jitters and depth-scales the hint precisely so rejected
    /// clients don't retry in lockstep, and flood mode asserts the spread.
    retry_hints: Mutex<BTreeSet<u64>>,
}

impl Tally {
    fn fail(&self, msg: &str) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        eprintln!("loadgen: ASSERTION FAILED: {msg}");
    }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    fn open(addr: &str) -> Result<Connection, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        // A hung server must fail the run, not wedge it.
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let writer = BufWriter::new(stream);
        Ok(Connection { reader, writer })
    }

    /// Sends one request and reads lines until the terminal status line.
    /// Returns `(status_line, row_count)`.
    fn round_trip(&mut self, req: &Json) -> Result<(Json, u64), String> {
        write_json_line(&mut self.writer, req).map_err(|e| format!("write: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))?;
        let mut rows = 0u64;
        loop {
            let line = read_json_line(&mut self.reader)
                .map_err(|e| format!("read: {e}"))?
                .ok_or_else(|| "server closed the connection mid-response".to_string())?;
            if line.get("kind").and_then(Json::as_str) == Some("row") {
                rows += 1;
                continue;
            }
            return Ok((line, rows));
        }
    }
}

fn query(id: &str, text: &str, deadline_ms: Option<u64>) -> Json {
    let mut pairs = vec![
        ("op".to_string(), Json::str("query")),
        ("id".to_string(), Json::str(id)),
        ("query".to_string(), Json::str(text)),
    ];
    if let Some(ms) = deadline_ms {
        pairs.push(("deadline_ms".to_string(), Json::int(ms)));
    }
    Json::obj(pairs)
}

fn run_client(client: usize, args: &Args, tally: &Tally) -> Result<(), String> {
    let mut conn = Connection::open(&args.addr)?;
    for r in 0..args.requests {
        let id = format!("c{client}r{r}");
        let (req, expect) = match args.mode.as_str() {
            "repeat" => (query(&id, BASE_QUERY, None), "ok"),
            "replan" => (query(&id, PLAN_HEAVY_QUERY, None), "ok"),
            "flood" => (query(&id, HEAVY_QUERY, Some(args.deadline_ms)), "any"),
            "deadline" => (query(&id, HEAVY_QUERY, Some(args.deadline_ms)), "cancelled"),
            _ => match r % 6 {
                0 | 3 => (query(&id, BASE_QUERY, None), "ok"),
                1 => (query(&id, RENAMED_QUERY, None), "ok"),
                2 => (query(&id, INVALID_QUERY, None), "error"),
                4 => (query(&id, DUPLICATE_SELECT, None), "error"),
                _ => (query(&id, HEAVY_QUERY, Some(args.deadline_ms)), "any"),
            },
        };
        let started = Instant::now();
        let (status_line, rows) = conn.round_trip(&req)?;
        let us = started.elapsed().as_micros() as u64;
        tally.latency_us.fetch_add(us, Ordering::Relaxed);
        tally.max_latency_us.fetch_max(us, Ordering::Relaxed);
        tally.latencies.lock().expect("latency samples").push(us);
        tally.rows.fetch_add(rows, Ordering::Relaxed);

        let status = status_line
            .get("status")
            .and_then(Json::as_str)
            .unwrap_or("missing")
            .to_string();
        if status_line.get("id").and_then(Json::as_str) != Some(id.as_str()) {
            tally.fail(&format!("{id}: response id mismatch on {status_line}"));
        }
        match status.as_str() {
            "ok" => {
                tally.ok.fetch_add(1, Ordering::Relaxed);
                if let Some(n) = status_line.get("answers").and_then(Json::as_num) {
                    tally.answers.fetch_add(n as u64, Ordering::Relaxed);
                }
                if status_line.get("cache").and_then(Json::as_str) == Some("hit") {
                    tally.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
            }
            "error" => {
                tally.errors.fetch_add(1, Ordering::Relaxed);
            }
            "cancelled" => {
                tally.cancelled.fetch_add(1, Ordering::Relaxed);
                // A cancelled query must come back within ~2x its deadline
                // (scheduling slack aside); a cooperative check that never
                // fires would blow far past this.
                let budget_us = args
                    .deadline_ms
                    .saturating_mul(2_000)
                    .saturating_add(500_000);
                if us > budget_us {
                    tally.fail(&format!(
                        "{id}: cancelled after {us}us, over 2x the {}ms deadline",
                        args.deadline_ms
                    ));
                }
            }
            "overloaded" => {
                tally.overloaded.fetch_add(1, Ordering::Relaxed);
                match status_line.get("retry_after_ms").and_then(Json::as_num) {
                    Some(hint) => {
                        tally
                            .retry_hints
                            .lock()
                            .expect("retry hint set")
                            .insert(hint as u64);
                    }
                    None => tally.fail(&format!("{id}: overloaded without retry_after_ms")),
                }
                // Honor the backpressure hint before the next request.
                std::thread::sleep(Duration::from_millis(
                    status_line
                        .get("retry_after_ms")
                        .and_then(Json::as_num)
                        .unwrap_or(50.0) as u64,
                ));
            }
            other => tally.fail(&format!("{id}: unexpected status {other:?}")),
        }
        match expect {
            "ok" if status != "ok" => {
                tally.fail(&format!("{id}: expected ok, got {status} ({status_line})"))
            }
            "error" if status != "error" => {
                tally.fail(&format!("{id}: expected error, got {status}"))
            }
            "cancelled" if !matches!(status.as_str(), "cancelled" | "overloaded") => {
                tally.fail(&format!("{id}: expected cancelled, got {status}"))
            }
            _ => {}
        }
    }
    Ok(())
}

/// Sends the admin `reload` op from `--reload-snapshot`/`--reload-delta`
/// on its own connection while the client threads keep querying, and
/// fails the run unless the server acknowledges the swap.
fn send_reload(args: &Args, tally: &Tally) {
    let snapshot = args
        .reload_snapshot
        .clone()
        .expect("send_reload requires --reload-snapshot");
    let mut pairs = vec![
        ("op".to_string(), Json::str("reload")),
        ("id".to_string(), Json::str("loadgen-reload")),
        ("snapshot".to_string(), Json::str(snapshot)),
    ];
    if !args.reload_deltas.is_empty() {
        pairs.push((
            "deltas".to_string(),
            Json::Arr(
                args.reload_deltas
                    .iter()
                    .map(|d| Json::str(d.clone()))
                    .collect(),
            ),
        ));
    }
    if let Some(db) = &args.reload_db {
        pairs.push(("db".to_string(), Json::str(db.clone())));
    }
    let req = Json::obj(pairs);
    match Connection::open(&args.addr).and_then(|mut c| c.round_trip(&req)) {
        Ok((line, _)) => {
            if line.get("status").and_then(Json::as_str) == Some("ok") {
                tally.reloads.fetch_add(1, Ordering::Relaxed);
                eprintln!("loadgen: reload acknowledged: {line}");
            } else {
                tally.fail(&format!("reload rejected: {line}"));
            }
        }
        Err(e) => tally.fail(&format!("reload round-trip failed: {e}")),
    }
}

/// Reads the server's cache-hit counter via a `stats` op.
fn server_stats(addr: &str) -> Result<Json, String> {
    let mut conn = Connection::open(addr)?;
    let (line, _) = conn.round_trip(&Json::obj([("op", Json::str("stats"))]))?;
    Ok(line)
}

/// Scrapes the Prometheus text exposition mid-run (from its own
/// connection, like `send_reload`) and writes it to `path`. A scrape that
/// fails, or whose body lacks any `# TYPE` header, fails the run.
fn scrape_metrics(addr: &str, path: &str, tally: &Tally) {
    let req = Json::obj([
        ("op", Json::str("metrics")),
        ("id", Json::str("loadgen-scrape")),
        ("format", Json::str("prometheus")),
    ]);
    match Connection::open(addr).and_then(|mut c| c.round_trip(&req)) {
        Ok((line, _)) => {
            let text = line.get("text").and_then(Json::as_str).unwrap_or("");
            if line.get("status").and_then(Json::as_str) != Some("ok") || !text.contains("# TYPE") {
                tally.fail(&format!("metrics scrape unusable: {line}"));
                return;
            }
            match std::fs::write(path, text) {
                Ok(()) => {
                    tally.scrapes.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "loadgen: scraped {} exposition lines to {path}",
                        text.lines().count()
                    );
                }
                Err(e) => tally.fail(&format!("cannot write {path}: {e}")),
            }
        }
        Err(e) => tally.fail(&format!("metrics scrape failed: {e}")),
    }
}

/// Drains the server's slow-query log after the run and writes the
/// response (entries + dropped count) to `path` as one JSON document.
fn dump_slowlog(addr: &str, path: &str, tally: &Tally) {
    let req = Json::obj([
        ("op", Json::str("slowlog")),
        ("id", Json::str("loadgen-slowlog")),
    ]);
    match Connection::open(addr).and_then(|mut c| c.round_trip(&req)) {
        Ok((line, _)) => {
            if line.get("status").and_then(Json::as_str) != Some("ok") {
                tally.fail(&format!("slowlog drain rejected: {line}"));
                return;
            }
            let n = line
                .get("entries")
                .and_then(Json::as_arr)
                .map_or(0, |e| e.len());
            match std::fs::write(path, format!("{line}\n")) {
                Ok(()) => eprintln!("loadgen: dumped {n} slowlog entries to {path}"),
                Err(e) => tally.fail(&format!("cannot write {path}: {e}")),
            }
        }
        Err(e) => tally.fail(&format!("slowlog drain failed: {e}")),
    }
}

/// Nearest-rank percentile over the sorted latency samples, in
/// milliseconds. `q` in (0, 1].
fn percentile_ms(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64 / 1_000.0
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let tally = Arc::new(Tally::default());
    let started = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let args = args.clone();
            let tally = Arc::clone(&tally);
            std::thread::spawn(move || run_client(c, &args, &tally))
        })
        .collect();
    let reloader = args.reload_snapshot.is_some().then(|| {
        let args = args.clone();
        let tally = Arc::clone(&tally);
        std::thread::spawn(move || {
            // Let query traffic get flowing first, so the swap happens
            // underneath live requests.
            std::thread::sleep(Duration::from_millis(200));
            send_reload(&args, &tally);
        })
    });
    let scraper = args.scrape_metrics.clone().map(|path| {
        let addr = args.addr.clone();
        let tally = Arc::clone(&tally);
        std::thread::spawn(move || {
            // Mid-run, so the scrape observes live gauges and in-flight
            // request histograms, not a quiesced server.
            std::thread::sleep(Duration::from_millis(200));
            scrape_metrics(&addr, &path, &tally);
        })
    });
    let mut connect_failures = 0;
    for h in handles {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                eprintln!("loadgen: client failed: {e}");
                connect_failures += 1;
            }
            Err(_) => {
                eprintln!("loadgen: client thread panicked");
                connect_failures += 1;
            }
        }
    }
    if let Some(h) = reloader {
        if h.join().is_err() {
            eprintln!("loadgen: reload thread panicked");
            connect_failures += 1;
        }
    }
    if let Some(h) = scraper {
        if h.join().is_err() {
            eprintln!("loadgen: metrics scrape thread panicked");
            connect_failures += 1;
        }
    }
    let wall = started.elapsed();

    // Per-mode aggregate assertions.
    let responded = tally.ok.load(Ordering::Relaxed)
        + tally.errors.load(Ordering::Relaxed)
        + tally.cancelled.load(Ordering::Relaxed)
        + tally.overloaded.load(Ordering::Relaxed);
    let expected = (args.clients * args.requests) as u64;
    if connect_failures == 0 && responded != expected {
        tally.fail(&format!("{responded} responses to {expected} requests"));
    }
    let retry_hints_distinct = tally.retry_hints.lock().expect("retry hint set").len() as u64;
    match args.mode.as_str() {
        "flood" => {
            let overloaded = tally.overloaded.load(Ordering::Relaxed);
            if overloaded == 0 {
                tally.fail("flood mode saw no overloaded responses");
            }
            // The hint carries per-request jitter; a flood of identical
            // hints would send every rejected client back in lockstep.
            if overloaded >= 4 && retry_hints_distinct < 2 {
                tally.fail(&format!(
                    "{overloaded} overloaded responses all advertised the same \
                     retry_after_ms; retries would stampede in lockstep"
                ));
            }
        }
        "deadline" if tally.cancelled.load(Ordering::Relaxed) == 0 => {
            tally.fail("deadline mode saw no cancelled responses");
        }
        "mix" => {
            if tally.ok.load(Ordering::Relaxed) == 0 {
                tally.fail("mix mode saw no ok responses");
            }
            if tally.errors.load(Ordering::Relaxed) == 0 {
                tally.fail("mix mode saw no error responses");
            }
        }
        _ => {}
    }

    let stats = server_stats(&args.addr).ok();
    if let Some(path) = &args.dump_slowlog {
        dump_slowlog(&args.addr, path, &tally);
    }
    if args.shutdown {
        if let Ok(mut conn) = Connection::open(&args.addr) {
            let _ = conn.round_trip(&Json::obj([("op", Json::str("shutdown"))]));
        }
    }

    let ok = tally.ok.load(Ordering::Relaxed);
    let throughput = responded as f64 / wall.as_secs_f64().max(1e-9);
    let mean_latency_ms = if responded > 0 {
        tally.latency_us.load(Ordering::Relaxed) as f64 / responded as f64 / 1_000.0
    } else {
        0.0
    };
    let mut sorted_us = std::mem::take(&mut *tally.latencies.lock().expect("latency samples"));
    sorted_us.sort_unstable();
    let (p50_ms, p90_ms, p99_ms) = (
        percentile_ms(&sorted_us, 0.50),
        percentile_ms(&sorted_us, 0.90),
        percentile_ms(&sorted_us, 0.99),
    );
    let server_hits = stats
        .as_ref()
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get("serve.plan_cache.hit"))
        .and_then(Json::as_num)
        .unwrap_or(0.0) as u64;

    if args.json {
        let summary = Json::obj([
            ("mode".to_string(), Json::str(args.mode.clone())),
            ("clients".to_string(), Json::int(args.clients as u64)),
            ("requests".to_string(), Json::int(expected)),
            ("responded".to_string(), Json::int(responded)),
            ("ok".to_string(), Json::int(ok)),
            (
                "rows".to_string(),
                Json::int(tally.rows.load(Ordering::Relaxed)),
            ),
            (
                "answers".to_string(),
                Json::int(tally.answers.load(Ordering::Relaxed)),
            ),
            (
                "errors".to_string(),
                Json::int(tally.errors.load(Ordering::Relaxed)),
            ),
            (
                "cancelled".to_string(),
                Json::int(tally.cancelled.load(Ordering::Relaxed)),
            ),
            (
                "overloaded".to_string(),
                Json::int(tally.overloaded.load(Ordering::Relaxed)),
            ),
            (
                "retry_hints_distinct".to_string(),
                Json::int(retry_hints_distinct),
            ),
            (
                "reloads".to_string(),
                Json::int(tally.reloads.load(Ordering::Relaxed)),
            ),
            (
                "client_cache_hits".to_string(),
                Json::int(tally.cache_hits.load(Ordering::Relaxed)),
            ),
            ("server_cache_hits".to_string(), Json::int(server_hits)),
            ("wall_secs".to_string(), Json::num(wall.as_secs_f64())),
            ("req_per_sec".to_string(), Json::num(throughput)),
            ("mean_latency_ms".to_string(), Json::num(mean_latency_ms)),
            ("p50_latency_ms".to_string(), Json::num(p50_ms)),
            ("p90_latency_ms".to_string(), Json::num(p90_ms)),
            ("p99_latency_ms".to_string(), Json::num(p99_ms)),
            (
                "max_latency_ms".to_string(),
                Json::num(tally.max_latency_us.load(Ordering::Relaxed) as f64 / 1_000.0),
            ),
            (
                "metrics_scrapes".to_string(),
                Json::int(tally.scrapes.load(Ordering::Relaxed)),
            ),
            (
                "failures".to_string(),
                Json::int(tally.failures.load(Ordering::Relaxed) + connect_failures),
            ),
        ]);
        let mut out = std::io::stdout().lock();
        let _ = write_json_line(&mut out, &summary);
    } else {
        println!(
            "loadgen[{}]: {responded}/{expected} responded in {:.2}s ({throughput:.0} req/s); \
             ok {ok}, rows {}, errors {}, cancelled {}, overloaded {}; \
             cache hits seen {} (server total {server_hits}); \
             latency mean {mean_latency_ms:.1}ms \
             p50 {p50_ms:.1}ms p90 {p90_ms:.1}ms p99 {p99_ms:.1}ms max {:.1}ms",
            args.mode,
            wall.as_secs_f64(),
            tally.rows.load(Ordering::Relaxed),
            tally.errors.load(Ordering::Relaxed),
            tally.cancelled.load(Ordering::Relaxed),
            tally.overloaded.load(Ordering::Relaxed),
            tally.cache_hits.load(Ordering::Relaxed),
            tally.max_latency_us.load(Ordering::Relaxed) as f64 / 1_000.0,
        );
    }

    if connect_failures > 0 {
        ExitCode::from(2)
    } else if tally.failures.load(Ordering::Relaxed) > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
