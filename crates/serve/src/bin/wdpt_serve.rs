//! `wdpt-serve` — run the concurrent WDPT query service.
//!
//! ```text
//! wdpt-serve --db music.nt --threads 8
//! wdpt-serve --gen-music 200x4 --addr 127.0.0.1:7878
//! ```
//!
//! Datasets come from `--db [name=]PATH` (repeatable; the first one is the
//! default) or, when none is given, from `--gen-music` (the paper's music
//! catalog as triples). The protocol is newline-delimited JSON; see
//! `DESIGN.md` § "The query service".

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;
use wdpt_gen::music::MusicParams;
use wdpt_model::{Database, Interner};
use wdpt_obs::{counter, span};
use wdpt_serve::{load_database, serve, ServeConfig, ServeState};

const USAGE: &str = "\
wdpt-serve: serve SPARQL {AND, OPT} queries over TCP (newline-delimited JSON)

USAGE:
    wdpt-serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT          listen address [default: 127.0.0.1:7878]
    --db [NAME=]PATH          load a dataset (N-Triples or facts format);
                              repeatable, first one is the default database
    --load-threads N          parser threads for --db bulk loading; 0 means
                              one per core [default: 0]
    --snapshot [NAME=]PATH    load a wdpt-store binary snapshot; repeatable,
                              loads before any --db. A --db with the same
                              name is skipped when the snapshot loads, and
                              serves as the text fallback when it is corrupt
    --save-snapshot PATH      after loading, write the default database as a
                              snapshot to PATH (build-on-first-load)
    --gen-music BANDSxRECORDS generate the music catalog instead of loading
                              a file (used when no --db is given)
                              [default when no --db: 100x4]
    --threads N               evaluation worker threads [default: 4]
    --eval-threads N          threads inside one evaluation [default: 2]
    --queue N                 bounded queue depth (backpressure threshold)
                              [default: 64]
    --default-deadline-ms MS  deadline when the request names none
                              [default: 10000]
    --max-deadline-ms MS      clamp on requested deadlines [default: 60000]
    --max-rows N              default cap on streamed rows [default: 1000]
    --max-query-atoms N       reject queries with more triple patterns
                              [default: 64]
    --max-query-vars N        reject queries with more variables; clamped to
                              the exact-treewidth limit [default: 26]
    --max-symbols N           interned-symbol budget; requests that would
                              exceed it are rejected and rolled back
                              [default: 1048576]
    --no-plan-cache           disable the plan cache (ablation)
    --cache-capacity N        plan-cache entries [default: 256]
    --plan-strategy S         join-order enumeration strategy: auto picks the
                              cheapest of greedy/dp/bushy per node; greedy,
                              dp, and bushy force one [default: auto]
    --replan-factor K         re-plan a cached query when its observed
                              nodes-expanded exceeds the estimate by K x on
                              consecutive runs [default: 4]
    --replan-runs N           consecutive divergent runs before a re-plan;
                              0 disables adaptive re-planning [default: 3]
    --slowlog-threshold-ms MS capture queries slower than MS (and every
                              deadline-exceeded query) in the slow-query
                              log; 0 disables capture [default: 1000]
    --slowlog-capacity N      slow-query ring-buffer entries; the oldest
                              entry is evicted when full [default: 128]
    --no-telemetry            disable request traces, latency histograms,
                              and the slow-query log (ablation)
    --repl-log DIR            act as replication primary: keep the delta
                              chain of the default database (which must come
                              from --snapshot) in an append-only log under
                              DIR and stream it to subscribed followers
    --follow HOST:PORT        act as read replica: subscribe to the primary
                              at HOST:PORT and apply its delta stream to the
                              default database (conflicts with --repl-log)
    --help                    print this help
";

struct Args {
    addr: String,
    dbs: Vec<(String, String)>,
    snapshots: Vec<(String, String)>,
    save_snapshot: Option<String>,
    gen_music: Option<(usize, usize)>,
    load_threads: usize,
    repl_log: Option<String>,
    follow: Option<String>,
    cfg: ServeConfig,
}

/// Splits a `[NAME=]PATH` spec, defaulting the name to the file stem.
fn name_and_path(spec: String) -> (String, String) {
    match spec.split_once('=') {
        Some((n, p)) => (n.to_string(), p.to_string()),
        None => {
            let stem = Path::new(&spec)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("db")
                .to_string();
            (stem, spec)
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        dbs: Vec::new(),
        snapshots: Vec::new(),
        save_snapshot: None,
        gen_music: None,
        load_threads: 0,
        repl_log: None,
        follow: None,
        cfg: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--addr" => args.addr = value("--addr")?,
            "--db" => args.dbs.push(name_and_path(value("--db")?)),
            "--load-threads" => args.load_threads = num(&flag, &value("--load-threads")?)?,
            "--snapshot" => args.snapshots.push(name_and_path(value("--snapshot")?)),
            "--save-snapshot" => args.save_snapshot = Some(value("--save-snapshot")?),
            "--gen-music" => {
                let spec = value("--gen-music")?;
                let (bands, records) = match spec.split_once('x') {
                    Some((b, r)) => (
                        b.parse().map_err(|_| format!("bad --gen-music {spec:?}"))?,
                        r.parse().map_err(|_| format!("bad --gen-music {spec:?}"))?,
                    ),
                    None => (
                        spec.parse()
                            .map_err(|_| format!("bad --gen-music {spec:?}"))?,
                        4,
                    ),
                };
                args.gen_music = Some((bands, records));
            }
            "--threads" => args.cfg.workers = num(&flag, &value("--threads")?)?,
            "--eval-threads" => args.cfg.eval_threads = num(&flag, &value("--eval-threads")?)?,
            "--queue" => args.cfg.queue_capacity = num(&flag, &value("--queue")?)?,
            "--default-deadline-ms" => {
                args.cfg.default_deadline_ms = num(&flag, &value("--default-deadline-ms")?)? as u64
            }
            "--max-deadline-ms" => {
                args.cfg.max_deadline_ms = num(&flag, &value("--max-deadline-ms")?)? as u64
            }
            "--max-rows" => args.cfg.max_rows = num(&flag, &value("--max-rows")?)?,
            "--max-query-atoms" => {
                args.cfg.max_query_atoms = num(&flag, &value("--max-query-atoms")?)?
            }
            "--max-query-vars" => {
                args.cfg.max_query_vars = num(&flag, &value("--max-query-vars")?)?
            }
            "--max-symbols" => args.cfg.max_symbols = num(&flag, &value("--max-symbols")?)?,
            "--no-plan-cache" => args.cfg.plan_cache = false,
            "--plan-strategy" => {
                let spec = value("--plan-strategy")?;
                args.cfg.plan_strategy = wdpt_plan::Strategy::parse(&spec).ok_or_else(|| {
                    format!("bad --plan-strategy {spec:?} (auto|greedy|dp|bushy)")
                })?;
            }
            "--replan-factor" => {
                args.cfg.replan_factor = num(&flag, &value("--replan-factor")?)? as u64
            }
            "--replan-runs" => args.cfg.replan_runs = num(&flag, &value("--replan-runs")?)? as u32,
            "--cache-capacity" => {
                args.cfg.cache_capacity = num(&flag, &value("--cache-capacity")?)?
            }
            "--slowlog-threshold-ms" => {
                args.cfg.slowlog_threshold_ms =
                    num(&flag, &value("--slowlog-threshold-ms")?)? as u64
            }
            "--slowlog-capacity" => {
                args.cfg.slowlog_capacity = num(&flag, &value("--slowlog-capacity")?)?
            }
            "--no-telemetry" => args.cfg.telemetry = false,
            "--repl-log" => args.repl_log = Some(value("--repl-log")?),
            "--follow" => args.follow = Some(value("--follow")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn num(flag: &str, text: &str) -> Result<usize, String> {
    text.parse()
        .map_err(|_| format!("{flag} expects a number, got {text:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.repl_log.is_some() && args.follow.is_some() {
        eprintln!("error: --repl-log (primary) conflicts with --follow (replica)");
        return ExitCode::from(2);
    }
    if args.repl_log.is_some() && args.snapshots.is_empty() {
        eprintln!("error: --repl-log requires the default database to come from --snapshot");
        return ExitCode::from(2);
    }

    let mut interner = Interner::new();
    let mut dbs: BTreeMap<String, Database> = BTreeMap::new();
    let mut default_db = String::new();

    // A primary opens (or initializes) its replication log against the
    // base snapshot first: deltas already in the log (accepted before a
    // restart) are recovered into the served database, and the log's
    // chain becomes the served head history.
    let mut primary_log: Option<wdpt_store::ReplLog> = None;
    if let Some(dir) = &args.repl_log {
        let (name, path) = args.snapshots[0].clone();
        let _g = span!("serve.repl_log_open");
        let base_bytes = match std::fs::read(Path::new(&path)) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: snapshot {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let log = match wdpt_store::ReplLog::open_or_init(Path::new(dir), &base_bytes) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: replication log {dir}: {e}");
                return ExitCode::from(2);
            }
        };
        let delta_paths: Vec<std::path::PathBuf> = log
            .entries()
            .iter()
            .map(|e| Path::new(dir).join(&e.file))
            .collect();
        match wdpt_store::load_with_deltas(Path::new(&path), &delta_paths) {
            Ok(pair) => {
                let db = wdpt_serve::merge_snapshot(&mut interner, pair);
                eprintln!(
                    "primary {name:?}: {} facts from {path} + {} logged delta(s), head {}",
                    db.size(),
                    delta_paths.len(),
                    wdpt_store::head_hex(log.head()),
                );
                default_db = name.clone();
                dbs.insert(name, db);
            }
            Err(e) => {
                eprintln!("error: replaying replication log {dir}: {e}");
                return ExitCode::from(2);
            }
        }
        primary_log = Some(log);
    }

    // Snapshots load first (so the usual single-snapshot start adopts the
    // snapshot's interner wholesale, keeping its prebuilt indexes). A
    // corrupt snapshot is not fatal when a same-name --db can fall back.
    let mut failed_snapshots: Vec<String> = Vec::new();
    for (name, path) in &args.snapshots {
        if dbs.contains_key(name) {
            continue; // already loaded through the replication log
        }
        let _g = span!("serve.snapshot_load");
        let t0 = Instant::now();
        match wdpt_store::load_snapshot(Path::new(path)) {
            Ok(pair) => {
                let db = wdpt_serve::merge_snapshot(&mut interner, pair);
                counter!("serve.store.snapshot_loaded").add(1);
                eprintln!(
                    "loaded snapshot {name:?}: {} facts from {path} in {:.1}ms",
                    db.size(),
                    t0.elapsed().as_secs_f64() * 1e3
                );
                if default_db.is_empty() {
                    default_db = name.clone();
                }
                dbs.insert(name.clone(), db);
            }
            Err(e) => {
                counter!("serve.store.snapshot_error").add(1);
                let has_fallback = args.dbs.iter().any(|(n, _)| n == name);
                if has_fallback {
                    eprintln!("warning: snapshot {path}: {e}; falling back to --db {name:?}");
                    failed_snapshots.push(name.clone());
                } else {
                    eprintln!("error: snapshot {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    for (name, path) in &args.dbs {
        if dbs.contains_key(name) {
            eprintln!("skipping --db {name:?}: already loaded from snapshot");
            continue;
        }
        if failed_snapshots.iter().any(|n| n == name) {
            counter!("serve.store.text_fallback").add(1);
        }
        if wdpt_serve::looks_like_snapshot(Path::new(path)) {
            eprintln!("error: {path} is a wdpt-store snapshot; pass it via --snapshot");
            return ExitCode::from(2);
        }
        match load_database(&mut interner, Path::new(path), args.load_threads) {
            Ok(db) => {
                eprintln!("loaded {name:?}: {} facts from {path}", db.size());
                if default_db.is_empty() {
                    default_db = name.clone();
                }
                dbs.insert(name.clone(), db);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if dbs.is_empty() {
        let (bands, records_per_band) = args.gen_music.unwrap_or((100, 4));
        let params = MusicParams {
            bands,
            records_per_band,
            ..MusicParams::default()
        };
        let ts = wdpt_gen::music_triples(&mut interner, params);
        eprintln!(
            "generated \"music\": {} triples ({bands} bands x {records_per_band} records)",
            ts.len()
        );
        dbs.insert("music".to_string(), ts.into_database());
        default_db = "music".to_string();
    }

    if let Some(path) = &args.save_snapshot {
        let db = dbs.get(&default_db).expect("default database exists");
        match wdpt_store::save_snapshot(Path::new(path), &interner, db) {
            Ok(bytes) => {
                counter!("serve.store.snapshot_saved").add(1);
                eprintln!("saved snapshot of {default_db:?} to {path} ({bytes} bytes)");
            }
            Err(e) => {
                eprintln!("error: cannot save snapshot {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            return ExitCode::from(2);
        }
    };
    let local = listener.local_addr().map(|a| a.to_string());
    let state = ServeState::new(args.cfg, interner, dbs, default_db);

    if let Some(log) = primary_log {
        state.set_primary(wdpt_repl::Primary::new(log));
    }
    let follower = args.follow.clone().map(|addr| {
        let state = std::sync::Arc::clone(&state);
        std::thread::spawn(move || {
            let apply = wdpt_serve::FollowerApply::new(
                std::sync::Arc::clone(&state),
                state.default_db().to_string(),
            );
            let mut cfg = wdpt_repl::FollowerConfig::new(addr);
            cfg.jitter_seed = std::process::id() as u64;
            wdpt_repl::run_follower(&cfg, &apply, state.shutdown_flag());
        })
    });

    let mode = if state.primary().is_some() {
        ", replication primary"
    } else if follower.is_some() {
        ", follower"
    } else {
        ""
    };
    // Line-buffered so harnesses waiting for readiness see it immediately.
    println!(
        "wdpt-serve listening on {} ({} workers, queue {}, plan cache {}, plan strategy {}{mode})",
        local.as_deref().unwrap_or(&args.addr),
        state.cfg.workers,
        state.cfg.queue_capacity,
        if state.cfg.plan_cache { "on" } else { "off" },
        state.cfg.plan_strategy,
    );
    let served = serve(listener, state);
    if let Some(h) = follower {
        let _ = h.join();
    }
    match served {
        Ok(()) => {
            println!("wdpt-serve: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
