//! Dataset loading for the server: N-Triples-ish files and the workspace
//! `facts` format.
//!
//! The server evaluates SPARQL queries, which compile to the `triple/3`
//! schema, so datasets are parsed into a [`TripleStore`]. Two formats are
//! accepted, sniffed line by line:
//!
//! * **N-Triples (lenient)** — `<s> <p> <o> .` per line; IRIs in angle
//!   brackets, literals in double quotes (standard backslash escapes),
//!   bare tokens also tolerated. Datatype/lang suffixes after a literal
//!   and the trailing `.` are ignored. `#`-comments and blank lines skip.
//! * **facts** — the `wdpt_model::parse` database format: ground atoms
//!   `pred(a, b, c)` separated by whitespace or commas. Only `triple/3`
//!   facts are queryable; other predicates load fine but no SPARQL
//!   pattern can reach them.

use std::io;
use std::path::Path;
use wdpt_model::{Database, Interner};
use wdpt_sparql::TripleStore;

/// One parsed N-Triples term, with how far the scanner advanced.
fn nt_term(bytes: &[u8], mut pos: usize) -> Result<(String, usize), String> {
    while pos < bytes.len() && (bytes[pos] as char).is_whitespace() {
        pos += 1;
    }
    if pos >= bytes.len() {
        return Err("expected a term, found end of line".into());
    }
    match bytes[pos] {
        b'<' => {
            let start = pos + 1;
            let mut end = start;
            while end < bytes.len() && bytes[end] != b'>' {
                end += 1;
            }
            if end >= bytes.len() {
                return Err(format!("unterminated IRI at byte {pos}"));
            }
            let text = std::str::from_utf8(&bytes[start..end])
                .map_err(|_| "invalid utf-8 in IRI".to_string())?;
            Ok((text.to_string(), end + 1))
        }
        b'"' => {
            let mut out = String::new();
            let mut p = pos + 1;
            loop {
                if p >= bytes.len() {
                    return Err(format!("unterminated literal at byte {pos}"));
                }
                match bytes[p] {
                    b'"' => {
                        p += 1;
                        break;
                    }
                    b'\\' => {
                        let esc = *bytes
                            .get(p + 1)
                            .ok_or_else(|| "unterminated escape".to_string())?;
                        out.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            b'"' => '"',
                            b'\\' => '\\',
                            other => other as char,
                        });
                        p += 2;
                    }
                    _ => {
                        // Advance one UTF-8 scalar.
                        let s = std::str::from_utf8(&bytes[p..])
                            .map_err(|_| "invalid utf-8 in literal".to_string())?;
                        let c = s.chars().next().expect("non-empty by bounds check");
                        out.push(c);
                        p += c.len_utf8();
                    }
                }
            }
            // Skip a datatype (^^<...>) or language (@xx) suffix.
            if bytes.get(p) == Some(&b'^') && bytes.get(p + 1) == Some(&b'^') {
                p += 2;
                if bytes.get(p) == Some(&b'<') {
                    while p < bytes.len() && bytes[p] != b'>' {
                        p += 1;
                    }
                    p = (p + 1).min(bytes.len());
                }
            } else if bytes.get(p) == Some(&b'@') {
                while p < bytes.len() && !(bytes[p] as char).is_whitespace() {
                    p += 1;
                }
            }
            Ok((out, p))
        }
        _ => {
            let start = pos;
            while pos < bytes.len() && !(bytes[pos] as char).is_whitespace() {
                pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..pos])
                .map_err(|_| "invalid utf-8 in token".to_string())?;
            Ok((text.to_string(), pos))
        }
    }
}

/// Parses one N-Triples line into `(s, p, o)`. `Ok(None)` for blank and
/// comment lines.
fn nt_line(line: &str) -> Result<Option<(String, String, String)>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let bytes = trimmed.as_bytes();
    let (s, pos) = nt_term(bytes, 0)?;
    let (p, pos) = nt_term(bytes, pos)?;
    let (o, pos) = nt_term(bytes, pos)?;
    // Anything after the object must be the statement terminator.
    let rest = std::str::from_utf8(&bytes[pos..]).unwrap_or("").trim();
    if !rest.is_empty() && rest != "." {
        return Err(format!("trailing content {rest:?} after object"));
    }
    // A bare-token "object" that is just the terminator means a 2-term line.
    if o == "." {
        return Err("line has fewer than three terms".into());
    }
    Ok(Some((s, p, o)))
}

/// Parses N-Triples text into a store. Fails on the first malformed line,
/// reporting its 1-based number.
pub fn parse_nt(interner: &mut Interner, text: &str) -> Result<TripleStore, String> {
    let mut ts = TripleStore::new();
    for (n, line) in text.lines().enumerate() {
        match nt_line(line) {
            Ok(None) => {}
            Ok(Some((s, p, o))) => {
                ts.insert_str(interner, &s, &p, &o);
            }
            Err(e) => return Err(format!("line {}: {e}", n + 1)),
        }
    }
    Ok(ts)
}

/// True iff the text looks like the `facts` format: the first data line
/// starts with `pred(` rather than an N-Triples term. (Both formats would
/// often *scan* as the other — `triple(a, b, c).` is three bare tokens —
/// so the formats are told apart by shape, not by trial parse.)
fn looks_like_facts(text: &str) -> bool {
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let first = trimmed.split_whitespace().next().unwrap_or("");
        return !first.starts_with('<') && !first.starts_with('"') && first.contains('(');
    }
    false
}

/// Parses dataset text, sniffing the format: the `facts` format
/// (`pred(a, b)`) when the first data line looks like a fact, N-Triples
/// otherwise.
pub fn parse_dataset(interner: &mut Interner, text: &str) -> Result<Database, String> {
    if looks_like_facts(text) {
        return wdpt_model::parse::parse_database(interner, text).map_err(|e| e.to_string());
    }
    parse_nt(interner, text).map(TripleStore::into_database)
}

/// Loads a dataset file.
pub fn load_database(interner: &mut Interner, path: &Path) -> io::Result<Database> {
    let text = std::fs::read_to_string(path)?;
    parse_dataset(interner, &text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nt_with_iris_literals_and_bare_tokens() {
        let mut i = Interner::new();
        let text = r#"
# the Example 2 catalog
<Swim> <recorded_by> <Caribou> .
<Swim> <published> "after_2010" .
Swim NME_rating "2"^^<http://www.w3.org/2001/XMLSchema#integer> .
<Our_love> <title> "Our \"Love\"@en"@en .
"#;
        let ts = parse_nt(&mut i, text).unwrap();
        assert_eq!(ts.len(), 4);
        let db = ts.database();
        assert_eq!(db.size(), 4);
        // IRIs and bare tokens intern to the same constant space.
        let swim = i.constant("Swim");
        let p = TripleStore::pred(&mut i);
        let rel = db.relation(p).unwrap();
        assert!(rel.tuples().any(|t| t[0] == swim));
    }

    #[test]
    fn rejects_short_and_trailing_garbage_lines() {
        let mut i = Interner::new();
        assert!(parse_nt(&mut i, "<a> <b> .").is_err());
        assert!(parse_nt(&mut i, "<a> <b> <c> <d> .").is_err());
        assert!(parse_nt(&mut i, "<a> <b <c> .").is_err());
    }

    #[test]
    fn falls_back_to_facts_format() {
        let mut i = Interner::new();
        // First data token is `triple(swim,` — the facts shape.
        let text = "triple(swim, recorded_by, caribou)\ntriple(swim, published, after_2010)\n";
        let db = parse_dataset(&mut i, text).unwrap();
        assert_eq!(db.size(), 2);
    }
}
