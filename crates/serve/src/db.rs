//! Dataset loading for the server: N-Triples-ish files, the workspace
//! `facts` format, and `wdpt-store` binary snapshots.
//!
//! The server evaluates SPARQL queries, which compile to the `triple/3`
//! schema, so text datasets are parsed into a [`TripleStore`]. Parsing is
//! shared with the rest of the workspace: the lenient N-Triples dialect
//! lives in [`wdpt_sparql::nt`], and file loading goes through the store's
//! parallel bulk loader ([`wdpt_store::bulk_load_path`]: streamed chunking,
//! two-pass parallel interning, prebuilt posting indexes) with the facts
//! format handled by `wdpt_model::parse`. Binary snapshots load via
//! [`wdpt_store::load_snapshot`] and are merged into the server's interner
//! by [`merge_snapshot`].

use std::collections::HashMap;
use std::io;
use std::path::Path;
use wdpt_model::{Const, Database, Interner, Pred, Relation};
use wdpt_obs::counter;

pub use wdpt_sparql::parse_nt;

/// Parses dataset text, sniffing the format: the `facts` format
/// (`pred(a, b)`) when the first data line looks like a fact, N-Triples
/// otherwise. In-memory counterpart of [`load_database`].
pub fn parse_dataset(interner: &mut Interner, text: &str) -> Result<Database, String> {
    let mut r = io::Cursor::new(text.as_bytes());
    wdpt_store::read_text_database(interner, &mut r).map_err(|e| e.to_string())
}

/// Loads a dataset file through the store's parallel bulk loader: streamed
/// chunking, two-pass parallel interning (deterministic across thread
/// counts), and prebuilt posting indexes on every relation — the same
/// pipeline as `wdpt-store build`, so a cold `--db` start of a large
/// catalog no longer serializes on one parse thread. `threads == 0` means
/// one worker per available core.
pub fn load_database(interner: &mut Interner, path: &Path, threads: usize) -> io::Result<Database> {
    let opts = wdpt_store::LoadOptions {
        threads,
        ..wdpt_store::LoadOptions::default()
    };
    match wdpt_store::bulk_load_path(interner, path, opts) {
        Ok((db, report)) => {
            counter!("serve.store.bulk_loaded").add(report.tuples);
            Ok(db)
        }
        Err(wdpt_store::StoreError::Io(e)) => Err(e),
        Err(e) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )),
    }
}

/// Folds a decoded snapshot into the server's interner.
///
/// * If the live interner is still empty (the common case — snapshots load
///   before any text dataset), the snapshot's interner is **adopted**
///   wholesale and its database returned as-is, keeping the prebuilt
///   posting indexes: zero re-interning, zero index rebuild.
/// * Otherwise an old-id→new-id **translation table** is built once (one
///   name lookup per *symbol*, not per tuple cell), every column is
///   remapped through it, and the snapshot's prebuilt posting indexes are
///   carried over — keys translated, rows routed through the tuple-sort
///   permutation the new ids induce — instead of being dropped and lazily
///   rebuilt. `serve.store.snapshot_remapped` counts this path; when the
///   table turns out to be the identity (the live interner extends the
///   snapshot's), the relations are moved wholesale without even a re-sort.
pub fn merge_snapshot(interner: &mut Interner, snapshot: (Interner, Database)) -> Database {
    let (snap_interner, snap_db) = snapshot;
    if interner.is_empty() {
        *interner = snap_interner;
        counter!("serve.store.snapshot_adopted").add(1);
        return snap_db;
    }
    counter!("serve.store.snapshot_remapped").add(1);
    let translate: Vec<u32> = snap_interner
        .symbols()
        .map(|(space, name)| match space {
            wdpt_model::SymbolSpace::Var => interner.var(name).0,
            wdpt_model::SymbolSpace::Const => interner.constant(name).0,
            wdpt_model::SymbolSpace::Pred => interner.pred(name).0,
        })
        .collect();
    interner.raise_fresh_counter(snap_interner.fresh_counter());
    if translate
        .iter()
        .enumerate()
        .all(|(old, &new)| old as u32 == new)
    {
        // The live interner already assigns every snapshot symbol the same
        // id (it extends the snapshot's interner): nothing to rewrite.
        return snap_db;
    }

    let mut out: Vec<(Pred, Relation)> = Vec::new();
    for (pred, rel) in snap_db.into_relations() {
        let new_pred = Pred(translate[pred.0 as usize]);
        let (arity, mut tuples, indexes) = rel.into_parts();
        for t in tuples.iter_mut() {
            for c in t.iter_mut() {
                *c = Const(translate[c.0 as usize]);
            }
        }
        // New ids generally reorder the lexicographic tuple order; sort via
        // a permutation so posting rows can be routed through it.
        let mut perm: Vec<u32> = (0..tuples.len() as u32).collect();
        perm.sort_by(|&a, &b| tuples[a as usize].cmp(&tuples[b as usize]));
        let mut pos = vec![0u32; tuples.len()];
        for (new_row, &old_row) in perm.iter().enumerate() {
            pos[old_row as usize] = new_row as u32;
        }
        let mut slots: Vec<Option<Box<[Const]>>> = tuples.into_iter().map(Some).collect();
        let sorted: Vec<Box<[Const]>> = perm
            .iter()
            .map(|&old| {
                slots[old as usize]
                    .take()
                    .expect("permutation is a bijection")
            })
            .collect();
        let mut relation = Relation::from_sorted(arity, sorted);
        for (col, built) in indexes.into_iter().enumerate() {
            let Some(index) = built else { continue };
            let remapped: HashMap<Const, Vec<u32>> = index
                .into_iter()
                .map(|(key, mut rows)| {
                    for r in rows.iter_mut() {
                        *r = pos[*r as usize];
                    }
                    rows.sort_unstable();
                    (Const(translate[key.0 as usize]), rows)
                })
                .collect();
            relation.install_column_index(col, remapped);
        }
        out.push((new_pred, relation));
    }
    Database::from_sorted(out)
}

/// True iff the bytes at `path` start with the snapshot magic — a cheap
/// pre-check so a `--db` pointed at a snapshot gives a helpful error.
pub fn looks_like_snapshot(path: &Path) -> bool {
    use std::io::Read;
    let mut head = [0u8; 8];
    std::fs::File::open(path)
        .and_then(|mut f| f.read_exact(&mut head))
        .map(|()| head == wdpt_store::MAGIC)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_sparql::TripleStore;

    #[test]
    fn parses_nt_with_iris_literals_and_bare_tokens() {
        let mut i = Interner::new();
        let text = r#"
# the Example 2 catalog
<Swim> <recorded_by> <Caribou> .
<Swim> <published> "after_2010" .
Swim NME_rating "2"^^<http://www.w3.org/2001/XMLSchema#integer> .
<Our_love> <title> "Our \"Love\"@en"@en .
"#;
        let ts = parse_nt(&mut i, text).unwrap();
        assert_eq!(ts.len(), 4);
        let db = ts.database();
        assert_eq!(db.size(), 4);
        // IRIs and bare tokens intern to the same constant space.
        let swim = i.constant("Swim");
        let p = TripleStore::pred(&mut i);
        let rel = db.relation(p).unwrap();
        assert!(rel.tuples().any(|t| t[0] == swim));
    }

    #[test]
    fn rejects_short_and_trailing_garbage_lines() {
        let mut i = Interner::new();
        assert!(parse_nt(&mut i, "<a> <b> .").is_err());
        assert!(parse_nt(&mut i, "<a> <b> <c> <d> .").is_err());
        assert!(parse_nt(&mut i, "<a> <b <c> .").is_err());
    }

    #[test]
    fn falls_back_to_facts_format() {
        let mut i = Interner::new();
        // First data token is `triple(swim,` — the facts shape.
        let text = "triple(swim, recorded_by, caribou)\ntriple(swim, published, after_2010)\n";
        let db = parse_dataset(&mut i, text).unwrap();
        assert_eq!(db.size(), 2);
    }

    #[test]
    fn merge_adopts_into_an_empty_interner() {
        let mut snap_i = Interner::new();
        let mut ts = TripleStore::new();
        ts.insert_str(&mut snap_i, "a", "b", "c");
        let snap_db = ts.into_database();
        for (_, rel) in snap_db.relations() {
            rel.build_all_indexes();
        }

        let mut live = Interner::new();
        let db = merge_snapshot(&mut live, (snap_i, snap_db));
        assert_eq!(db.size(), 1);
        // Adopted wholesale: the prebuilt index came along.
        let p = TripleStore::pred(&mut live);
        assert!(db.relation(p).unwrap().built_column_index(0).is_some());
    }

    #[test]
    fn merge_remaps_when_the_interner_already_has_symbols() {
        let mut snap_i = Interner::new();
        let mut ts = TripleStore::new();
        ts.insert_str(&mut snap_i, "x", "y", "z");
        let snap_db = ts.into_database();

        // A live interner with different ids for the same names.
        let mut live = Interner::new();
        live.constant("unrelated");
        live.constant("z");
        let db = merge_snapshot(&mut live, (snap_i, snap_db));
        assert_eq!(db.size(), 1);
        let p = TripleStore::pred(&mut live);
        let (x, z) = (live.constant("x"), live.constant("z"));
        let rel = db.relation(p).unwrap();
        assert!(rel.tuples().any(|t| t[0] == x && t[2] == z));
    }

    #[test]
    fn merge_remap_keeps_prebuilt_indexes() {
        // Several tuples whose relative order *changes* under the new ids,
        // so the posting rows must be routed through the sort permutation.
        let mut snap_i = Interner::new();
        let mut ts = TripleStore::new();
        ts.insert_str(&mut snap_i, "a", "p", "u");
        ts.insert_str(&mut snap_i, "b", "p", "u");
        ts.insert_str(&mut snap_i, "b", "q", "v");
        ts.insert_str(&mut snap_i, "c", "q", "u");
        let snap_db = ts.into_database();
        for (_, rel) in snap_db.relations() {
            rel.build_all_indexes();
        }

        // A live interner that reverses the id order of a/b/c.
        let mut live = Interner::new();
        live.constant("c");
        live.constant("b");
        live.constant("a");
        let db = merge_snapshot(&mut live, (snap_i, snap_db));
        assert_eq!(db.size(), 4);
        let p = TripleStore::pred(&mut live);
        let rel = db.relation(p).unwrap();
        // The prebuilt indexes survived the remap (the pre-fix path dropped
        // them and fell back to lazy rebuilds)...
        for col in 0..rel.arity() {
            assert!(
                rel.built_column_index(col).is_some(),
                "column {col} index was dropped by the remap"
            );
        }
        // ...and they answer correctly under the new ids.
        let (b, u, q) = (live.constant("b"), live.constant("u"), live.constant("q"));
        assert_eq!(rel.posting_len(0, b), 2);
        assert_eq!(rel.posting_len(2, u), 3);
        assert_eq!(rel.matching(&[Some(b), Some(q), None]).count(), 1);
        // Posting lists stay ascending (the Relation invariant the merge
        // must restore after permuting rows).
        for col in 0..rel.arity() {
            let idx = rel.built_column_index(col).unwrap();
            for rows in idx.values() {
                assert!(
                    rows.windows(2).all(|w| w[0] < w[1]),
                    "column {col} rows unsorted"
                );
            }
        }
    }

    #[test]
    fn merge_moves_relations_wholesale_when_ids_line_up() {
        let mut snap_i = Interner::new();
        let mut ts = TripleStore::new();
        ts.insert_str(&mut snap_i, "a", "p", "u");
        let snap_db = ts.into_database();
        for (_, rel) in snap_db.relations() {
            rel.build_all_indexes();
        }

        // The live interner extends the snapshot's: identity translation.
        let mut live = snap_i.clone();
        live.constant("extra-live-symbol");
        let db = merge_snapshot(&mut live, (snap_i, snap_db));
        let p = TripleStore::pred(&mut live);
        let rel = db.relation(p).unwrap();
        assert_eq!(db.size(), 1);
        assert!(rel.built_column_index(0).is_some());
    }
}
