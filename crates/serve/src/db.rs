//! Dataset loading for the server: N-Triples-ish files, the workspace
//! `facts` format, and `wdpt-store` binary snapshots.
//!
//! The server evaluates SPARQL queries, which compile to the `triple/3`
//! schema, so text datasets are parsed into a [`TripleStore`]. Parsing is
//! shared with the rest of the workspace: the lenient N-Triples dialect
//! lives in [`wdpt_sparql::nt`], and file loading streams line by line
//! through [`wdpt_store::text`] (never materializing the file as one
//! `String`) with the facts format handled by `wdpt_model::parse`. Binary
//! snapshots load via [`wdpt_store::load_snapshot`] and are merged into the
//! server's interner by [`merge_snapshot`].

use std::io;
use std::path::Path;
use wdpt_model::{Const, Database, Interner};
use wdpt_obs::counter;

pub use wdpt_sparql::parse_nt;

/// Parses dataset text, sniffing the format: the `facts` format
/// (`pred(a, b)`) when the first data line looks like a fact, N-Triples
/// otherwise. In-memory counterpart of [`load_database`].
pub fn parse_dataset(interner: &mut Interner, text: &str) -> Result<Database, String> {
    let mut r = io::Cursor::new(text.as_bytes());
    wdpt_store::read_text_database(interner, &mut r).map_err(|e| e.to_string())
}

/// Loads a dataset file, streaming it line by line.
pub fn load_database(interner: &mut Interner, path: &Path) -> io::Result<Database> {
    match wdpt_store::load_text_database(interner, path) {
        Ok(db) => Ok(db),
        Err(wdpt_store::StoreError::Io(e)) => Err(e),
        Err(e) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )),
    }
}

/// Folds a decoded snapshot into the server's interner.
///
/// * If the live interner is still empty (the common case — snapshots load
///   before any text dataset), the snapshot's interner is **adopted**
///   wholesale and its database returned as-is, keeping the prebuilt
///   posting indexes: zero re-interning, zero index rebuild.
/// * Otherwise every symbol is re-interned by name and the tuples remapped,
///   which drops the snapshot's prebuilt indexes (they refer to the old
///   ids) — correct, but the slow path; `serve.store.snapshot_remapped`
///   counts it.
pub fn merge_snapshot(interner: &mut Interner, snapshot: (Interner, Database)) -> Database {
    let (snap_interner, snap_db) = snapshot;
    if interner.is_empty() {
        *interner = snap_interner;
        counter!("serve.store.snapshot_adopted").add(1);
        return snap_db;
    }
    counter!("serve.store.snapshot_remapped").add(1);
    let mut db = Database::new();
    for (pred, rel) in snap_db.relations() {
        let p = interner.pred(snap_interner.name(pred.0));
        for t in rel.tuples() {
            let tuple: Vec<Const> = t
                .iter()
                .map(|c| interner.constant(snap_interner.name(c.0)))
                .collect();
            db.insert(p, tuple);
        }
    }
    db
}

/// True iff the bytes at `path` start with the snapshot magic — a cheap
/// pre-check so a `--db` pointed at a snapshot gives a helpful error.
pub fn looks_like_snapshot(path: &Path) -> bool {
    use std::io::Read;
    let mut head = [0u8; 8];
    std::fs::File::open(path)
        .and_then(|mut f| f.read_exact(&mut head))
        .map(|()| head == wdpt_store::MAGIC)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_sparql::TripleStore;

    #[test]
    fn parses_nt_with_iris_literals_and_bare_tokens() {
        let mut i = Interner::new();
        let text = r#"
# the Example 2 catalog
<Swim> <recorded_by> <Caribou> .
<Swim> <published> "after_2010" .
Swim NME_rating "2"^^<http://www.w3.org/2001/XMLSchema#integer> .
<Our_love> <title> "Our \"Love\"@en"@en .
"#;
        let ts = parse_nt(&mut i, text).unwrap();
        assert_eq!(ts.len(), 4);
        let db = ts.database();
        assert_eq!(db.size(), 4);
        // IRIs and bare tokens intern to the same constant space.
        let swim = i.constant("Swim");
        let p = TripleStore::pred(&mut i);
        let rel = db.relation(p).unwrap();
        assert!(rel.tuples().any(|t| t[0] == swim));
    }

    #[test]
    fn rejects_short_and_trailing_garbage_lines() {
        let mut i = Interner::new();
        assert!(parse_nt(&mut i, "<a> <b> .").is_err());
        assert!(parse_nt(&mut i, "<a> <b> <c> <d> .").is_err());
        assert!(parse_nt(&mut i, "<a> <b <c> .").is_err());
    }

    #[test]
    fn falls_back_to_facts_format() {
        let mut i = Interner::new();
        // First data token is `triple(swim,` — the facts shape.
        let text = "triple(swim, recorded_by, caribou)\ntriple(swim, published, after_2010)\n";
        let db = parse_dataset(&mut i, text).unwrap();
        assert_eq!(db.size(), 2);
    }

    #[test]
    fn merge_adopts_into_an_empty_interner() {
        let mut snap_i = Interner::new();
        let mut ts = TripleStore::new();
        ts.insert_str(&mut snap_i, "a", "b", "c");
        let snap_db = ts.into_database();
        for (_, rel) in snap_db.relations() {
            rel.build_all_indexes();
        }

        let mut live = Interner::new();
        let db = merge_snapshot(&mut live, (snap_i, snap_db));
        assert_eq!(db.size(), 1);
        // Adopted wholesale: the prebuilt index came along.
        let p = TripleStore::pred(&mut live);
        assert!(db.relation(p).unwrap().built_column_index(0).is_some());
    }

    #[test]
    fn merge_remaps_when_the_interner_already_has_symbols() {
        let mut snap_i = Interner::new();
        let mut ts = TripleStore::new();
        ts.insert_str(&mut snap_i, "x", "y", "z");
        let snap_db = ts.into_database();

        // A live interner with different ids for the same names.
        let mut live = Interner::new();
        live.constant("unrelated");
        live.constant("z");
        let db = merge_snapshot(&mut live, (snap_i, snap_db));
        assert_eq!(db.size(), 1);
        let p = TripleStore::pred(&mut live);
        let (x, z) = (live.constant("x"), live.constant("z"));
        let rel = db.relation(p).unwrap();
        assert!(rel.tuples().any(|t| t[0] == x && t[2] == z));
    }
}
