//! Hierarchical scoped timers.
//!
//! A [`span!`] guard times a lexical scope under a static name (dotted
//! names form the hierarchy: `"yannakakis.semijoin"` renders nested under
//! `"yannakakis"`). Each thread keeps a span *stack* so a span knows how
//! much of its wall time was spent inside nested spans (`child_ns`), which
//! lets reports show exclusive (self) time. Aggregation is per-site into
//! process-wide relaxed atomics, so spans recorded on the scoped worker
//! threads of `evaluate_parallel` merge into the same aggregates and a
//! snapshot taken around joined work is exact.
//!
//! Tracing is **off by default**: a disabled [`span!`] reads one relaxed
//! atomic and returns an inert guard — no `OnceLock`, no `Instant::now`,
//! no thread-local traffic. `wdpt_core::profile` flips the flag for the
//! duration of a profiled evaluation.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables span timing. Returns the previous value.
pub fn set_tracing(on: bool) -> bool {
    ENABLED.swap(on, Relaxed)
}

/// True iff span timing is currently enabled.
#[inline]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// One instrumented scope: a static name plus its process-wide aggregates.
#[derive(Debug)]
pub struct SpanSite {
    name: &'static str,
    calls: AtomicU64,
    total_ns: AtomicU64,
    child_ns: AtomicU64,
}

fn registry() -> &'static Mutex<Vec<&'static SpanSite>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static SpanSite>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Returns the span site named `name`, creating it on first use. Call
/// sites should go through [`span!`], which caches the result.
pub fn register_span(name: &'static str) -> &'static SpanSite {
    let mut reg = registry().lock().expect("span registry poisoned");
    if let Some(s) = reg.iter().find(|s| s.name == name) {
        return s;
    }
    let s: &'static SpanSite = Box::leak(Box::new(SpanSite {
        name,
        calls: AtomicU64::new(0),
        total_ns: AtomicU64::new(0),
        child_ns: AtomicU64::new(0),
    }));
    reg.push(s);
    s
}

thread_local! {
    /// Stack of child-time accumulators, one per live span on this thread.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard created by [`span!`]. Records on drop. Intentionally `!Send`:
/// the guard must be dropped on the thread that created it, because the
/// nesting bookkeeping lives in a thread-local stack.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(&'static SpanSite, Instant)>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Enters `site` if tracing is enabled; otherwise returns an inert
    /// guard whose drop is free.
    #[inline]
    pub fn enter(site: &'static SpanSite) -> SpanGuard {
        if !tracing_enabled() {
            return SpanGuard::inactive();
        }
        STACK.with(|s| s.borrow_mut().push(0));
        SpanGuard {
            active: Some((site, Instant::now())),
            _not_send: PhantomData,
        }
    }

    /// An inert guard: records nothing, drop is free. The [`span!`] macro
    /// returns this on the disabled fast path so a disabled call site costs
    /// one relaxed load and never touches its `OnceLock`.
    #[inline]
    pub fn inactive() -> SpanGuard {
        SpanGuard {
            active: None,
            _not_send: PhantomData,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((site, start)) = self.active.take() else {
            return;
        };
        let elapsed = start.elapsed().as_nanos() as u64;
        let nested = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let nested = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent += elapsed;
            }
            nested
        });
        site.calls.fetch_add(1, Relaxed);
        site.total_ns.fetch_add(elapsed, Relaxed);
        site.child_ns.fetch_add(nested, Relaxed);
    }
}

/// Opens a [`SpanGuard`] for the enclosing scope:
/// `let _g = span!("yannakakis.semijoin");`
///
/// The enabled check comes first so a disabled call site pays exactly one
/// relaxed atomic load; the per-site `OnceLock` is only consulted (and the
/// site only registered) once tracing is actually on.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        if $crate::span::tracing_enabled() {
            static SITE: std::sync::OnceLock<&'static $crate::span::SpanSite> =
                std::sync::OnceLock::new();
            $crate::span::SpanGuard::enter(*SITE.get_or_init(|| $crate::span::register_span($name)))
        } else {
            $crate::span::SpanGuard::inactive()
        }
    }};
}

/// Aggregates of one span site at a point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEntry {
    pub name: String,
    pub calls: u64,
    /// Total wall time inside the span, nested spans included.
    pub total_ns: u64,
    /// Wall time spent inside nested spans (on the same thread).
    pub child_ns: u64,
}

impl SpanEntry {
    /// Exclusive time: total minus nested-span time (saturating — nested
    /// spans on *other* threads can exceed the parent's wall time).
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }
}

/// A point-in-time copy of every span site, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    pub entries: Vec<SpanEntry>,
}

impl SpanSnapshot {
    /// Span-wise saturating difference since `earlier`.
    pub fn since(&self, earlier: &SpanSnapshot) -> SpanSnapshot {
        let base: std::collections::HashMap<&str, &SpanEntry> = earlier
            .entries
            .iter()
            .map(|e| (e.name.as_str(), e))
            .collect();
        SpanSnapshot {
            entries: self
                .entries
                .iter()
                .map(|e| match base.get(e.name.as_str()) {
                    None => e.clone(),
                    Some(b) => SpanEntry {
                        name: e.name.clone(),
                        calls: e.calls.saturating_sub(b.calls),
                        total_ns: e.total_ns.saturating_sub(b.total_ns),
                        child_ns: e.child_ns.saturating_sub(b.child_ns),
                    },
                })
                .collect(),
        }
    }

    /// The entry named `name`, if it has been registered.
    pub fn entry(&self, name: &str) -> Option<&SpanEntry> {
        self.entries.iter().find(|e| e.name == name)
    }
}

/// Copies every registered span site.
pub fn span_snapshot() -> SpanSnapshot {
    let reg = registry().lock().expect("span registry poisoned");
    let mut entries: Vec<SpanEntry> = reg
        .iter()
        .map(|s| SpanEntry {
            name: s.name.to_owned(),
            calls: s.calls.load(Relaxed),
            total_ns: s.total_ns.load(Relaxed),
            child_ns: s.child_ns.load(Relaxed),
        })
        .collect();
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    SpanSnapshot { entries }
}

/// Runs `f` with tracing forced on, restoring the previous state after.
/// Used by tests and the profile recorder.
pub fn with_tracing<T>(f: impl FnOnce() -> T) -> T {
    let prev = set_tracing(true);
    let out = f();
    set_tracing(prev);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let prev = set_tracing(false);
        register_span("test.span.disabled");
        let before = span_snapshot();
        {
            let _g = span!("test.span.disabled");
        }
        let delta = span_snapshot().since(&before);
        assert_eq!(delta.entry("test.span.disabled").unwrap().calls, 0);
        set_tracing(prev);
    }

    #[test]
    fn nested_spans_attribute_child_time() {
        with_tracing(|| {
            let before = span_snapshot();
            {
                let _outer = span!("test.span.outer");
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _inner = span!("test.span.outer.inner");
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            let d = span_snapshot().since(&before);
            let outer = d.entry("test.span.outer").unwrap();
            let inner = d.entry("test.span.outer.inner").unwrap();
            assert_eq!(outer.calls, 1);
            assert_eq!(inner.calls, 1);
            assert!(outer.total_ns >= inner.total_ns);
            // Outer's child time is inner's total (recorded on this thread).
            assert!(outer.child_ns >= inner.total_ns);
            assert!(outer.self_ns() <= outer.total_ns - inner.total_ns + 1_000_000);
        });
    }

    #[test]
    fn spans_aggregate_across_scoped_threads() {
        with_tracing(|| {
            register_span("test.span.worker");
            let before = span_snapshot();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for _ in 0..8 {
                            let _g = span!("test.span.worker");
                        }
                    });
                }
            });
            let d = span_snapshot().since(&before);
            assert_eq!(d.entry("test.span.worker").unwrap().calls, 32);
        });
    }
}
