//! Named counters, gauges, and log-scale histograms.
//!
//! A process-wide registry generalizing the original five hard-coded
//! atomics of `wdpt_model::stats`. Call sites use the [`counter!`] /
//! [`gauge!`] / [`histogram!`] macros, which resolve the metric once into a
//! static `OnceLock` and thereafter pay a single relaxed `fetch_add` per
//! event — cheap enough for hot paths, and correct across the worker
//! threads of the parallel evaluator (the metrics are monotone event
//! tallies with no synchronizing role). Snapshots taken while other threads
//! are mid-run are approximate; take them around joined work for exact
//! deltas — or through [`delta_scope`], which serializes such sections
//! process-wide so concurrently running tests cannot perturb each other.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};

/// A monotone named event counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.value.fetch_add(n, Relaxed);
        }
    }

    /// Records one event.
    #[inline]
    pub fn incr(&self) {
        self.value.fetch_add(1, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    /// Zeroes the counter (compatibility with `stats::reset`; tests should
    /// prefer snapshot deltas — the registry is process-wide).
    pub fn reset(&self) {
        self.value.store(0, Relaxed);
    }
}

/// An instantaneous level (queue depth, in-flight requests, busy workers):
/// unlike a [`Counter`] it goes down as well as up, and a snapshot delta
/// keeps the *later* value rather than subtracting.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

impl Gauge {
    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the level outright.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Relaxed);
    }

    /// Moves the level up.
    #[inline]
    pub fn incr(&self) {
        self.value.fetch_add(1, Relaxed);
    }

    /// Moves the level down.
    #[inline]
    pub fn decr(&self) {
        self.value.fetch_sub(1, Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds value 0, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`, and the last bucket absorbs the tail.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket layout and atomics of a histogram, without a registry entry.
/// This is what [`Histogram`] wraps; it is public so dynamically created
/// aggregates (one per plan-cache entry, say) can reuse the layout without
/// leaking `&'static` registrations for values with bounded lifetimes.
#[derive(Debug)]
pub struct RawHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for RawHistogram {
    fn default() -> Self {
        RawHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl RawHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> RawHistogram {
        RawHistogram::default()
    }

    /// Index of the bucket holding `v`: 0 for 0, else `64 - leading_zeros`.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
        self.buckets[Self::bucket_of(v)].fetch_add(1, Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// A point-in-time copy under `name`.
    pub fn snapshot(&self, name: impl Into<String>) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.into(),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
        }
    }
}

/// A log₂-bucketed histogram of `u64` observations (posting-list lengths,
/// bag sizes, per-node answer counts, request latencies, ...), registered
/// process-wide under a static name.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    raw: RawHistogram,
}

impl Histogram {
    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.raw.record(v);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        self.raw.snapshot(self.name)
    }
}

/// Registry of all metrics created so far. Metrics are leaked (`&'static`)
/// so hot paths never touch the registry lock — only first-time
/// registration and snapshots do.
#[derive(Default)]
struct Registry {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Returns the counter named `name`, creating and registering it on first
/// use. Call sites should go through [`counter!`], which caches the result.
pub fn register_counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(c) = reg.counters.iter().find(|c| c.name == name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter {
        name,
        value: AtomicU64::new(0),
    }));
    reg.counters.push(c);
    c
}

/// Returns the gauge named `name`, creating and registering it on first
/// use. Call sites should go through [`gauge!`], which caches the result.
pub fn register_gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(g) = reg.gauges.iter().find(|g| g.name == name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge {
        name,
        value: AtomicI64::new(0),
    }));
    reg.gauges.push(g);
    g
}

/// Returns the histogram named `name`, creating and registering it on first
/// use. Call sites should go through [`histogram!`], which caches the result.
pub fn register_histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(h) = reg.histograms.iter().find(|h| h.name == name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram {
        name,
        raw: RawHistogram::new(),
    }));
    reg.histograms.push(h);
    h
}

/// Resolves a [`Counter`] by name once per call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: std::sync::OnceLock<&'static $crate::metrics::Counter> =
            std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::metrics::register_counter($name))
    }};
}

/// Resolves a [`Gauge`] by name once per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::metrics::register_gauge($name))
    }};
}

/// Resolves a [`Histogram`] by name once per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SITE: std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::metrics::register_histogram($name))
    }};
}

/// Point-in-time value of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    /// Maximum observation ever recorded (not delta-adjustable; a delta
    /// keeps the later snapshot's max).
    pub max: u64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0 < q ≤ 1`),
    /// e.g. `quantile_bound(0.5)` ≈ median. Exact to within the log₂ bucket.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        self.max
    }

    /// The derived `(p50, p90, p99)` bucket bounds — the summary quantiles
    /// every latency surface reports.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.quantile_bound(0.50),
            self.quantile_bound(0.90),
            self.quantile_bound(0.99),
        )
    }

    /// The cumulative bucket view: `(upper_bound, count ≤ upper_bound)`
    /// pairs for every nonempty prefix, ending with `(None, count)` for the
    /// unbounded tail (`+Inf` in Prometheus exposition). Bucket `i ≥ 1`
    /// holds `[2^(i-1), 2^i)`, so its inclusive upper bound is `2^i - 1`;
    /// bucket 0 holds exactly the value 0. Counts are monotone
    /// non-decreasing by construction.
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let highest = self.buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
        let mut out = Vec::with_capacity(highest + 2);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate().take(highest + 1) {
            seen += b;
            let le = if i == 0 {
                0
            } else if i >= 64 {
                // The tail bucket has no finite bound; fold it into +Inf.
                break;
            } else {
                (1u64 << i) - 1
            };
            out.push((Some(le), seen));
        }
        out.push((None, self.count));
        out
    }
}

/// A point-in-time copy of every registered metric, keyed by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `name → value`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `name → level`, sorted by name. Instantaneous, not cumulative: a
    /// delta keeps the later snapshot's level.
    pub gauges: Vec<(String, i64)>,
    /// One entry per histogram, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Counter-wise difference of two snapshots (see [`MetricsSnapshot::since`]).
pub type CounterDelta = Vec<(String, u64)>;

/// Histogram-wise difference of two snapshots.
pub type HistogramDelta = Vec<HistogramSnapshot>;

impl MetricsSnapshot {
    /// Metric-wise saturating difference since `earlier`. Metrics absent
    /// from `earlier` (registered in between) keep their full value.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let base: HashMap<&str, u64> = earlier
            .counters
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| {
                (
                    n.clone(),
                    v.saturating_sub(base.get(n.as_str()).copied().unwrap_or(0)),
                )
            })
            .collect();
        let hbase: HashMap<&str, &HistogramSnapshot> = earlier
            .histograms
            .iter()
            .map(|h| (h.name.as_str(), h))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| match hbase.get(h.name.as_str()) {
                None => h.clone(),
                Some(b) => HistogramSnapshot {
                    name: h.name.clone(),
                    count: h.count.saturating_sub(b.count),
                    sum: h.sum.saturating_sub(b.sum),
                    max: h.max,
                    buckets: h
                        .buckets
                        .iter()
                        .zip(&b.buckets)
                        .map(|(a, b)| a.saturating_sub(*b))
                        .collect(),
                },
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// The value of counter `name` in this snapshot (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The level of gauge `name` in this snapshot (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The snapshot of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Copies every registered metric.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let reg = registry().lock().expect("metrics registry poisoned");
    let mut counters: Vec<(String, u64)> = reg
        .counters
        .iter()
        .map(|c| (c.name.to_owned(), c.get()))
        .collect();
    counters.sort();
    let mut gauges: Vec<(String, i64)> = reg
        .gauges
        .iter()
        .map(|g| (g.name.to_owned(), g.get()))
        .collect();
    gauges.sort();
    let mut histograms: Vec<HistogramSnapshot> =
        reg.histograms.iter().map(|h| h.snapshot()).collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Runs `f` and returns its result together with the metric deltas it
/// produced, holding a process-wide lock for the duration.
///
/// The registry is process-global, so two tests that each "snapshot,
/// mutate, diff" can interleave and see each other's events — historically
/// forcing counter-delta assertions into their own integration-test
/// *processes* (`thread_matrix` and friends). Routing every such section
/// through `delta_scope` serializes them instead: within one process, two
/// scoped sections never overlap, so each delta reflects exactly the work
/// of its own closure (plus any *un*-scoped concurrent recording, which
/// tests sharing a binary should avoid for the counters they assert on).
pub fn delta_scope<T>(f: impl FnOnce() -> T) -> (T, MetricsSnapshot) {
    static SCOPE: Mutex<()> = Mutex::new(());
    // A panic inside an earlier scope poisons the mutex but leaves the
    // registry itself consistent; later scopes can proceed.
    let _serial = SCOPE.lock().unwrap_or_else(|e| e.into_inner());
    let before = metrics_snapshot();
    let out = f();
    let delta = metrics_snapshot().since(&before);
    (out, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let c1 = register_counter("test.metrics.alpha");
        let c2 = register_counter("test.metrics.alpha");
        assert!(std::ptr::eq(c1, c2));
        let before = c1.get();
        counter!("test.metrics.alpha").add(3);
        counter!("test.metrics.alpha").incr();
        assert_eq!(c1.get(), before + 4);
    }

    #[test]
    fn snapshot_since_subtracts_per_name() {
        let c = register_counter("test.metrics.delta");
        let before = metrics_snapshot();
        c.add(7);
        let delta = metrics_snapshot().since(&before);
        assert_eq!(delta.counter("test.metrics.delta"), 7);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(RawHistogram::bucket_of(0), 0);
        assert_eq!(RawHistogram::bucket_of(1), 1);
        assert_eq!(RawHistogram::bucket_of(2), 2);
        assert_eq!(RawHistogram::bucket_of(3), 2);
        assert_eq!(RawHistogram::bucket_of(4), 3);
        assert_eq!(RawHistogram::bucket_of(u64::MAX), 64);
        let h = register_histogram("test.metrics.hist");
        let before = metrics_snapshot();
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        let d = metrics_snapshot().since(&before);
        let hs = d.histogram("test.metrics.hist").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1011);
        assert!(hs.max >= 1000);
        assert_eq!(hs.buckets[0], 1); // the 0
        assert_eq!(hs.buckets[1], 1); // the 1
        assert_eq!(hs.buckets[3], 2); // the 5s ∈ [4,8)
        assert!((hs.mean() - 202.2).abs() < 1e-9);
    }

    #[test]
    fn quantile_bound_walks_buckets() {
        let h = register_histogram("test.metrics.quant");
        let before = metrics_snapshot();
        for _ in 0..90 {
            h.record(2);
        }
        for _ in 0..10 {
            h.record(4096);
        }
        let d = metrics_snapshot().since(&before);
        let hs = d.histogram("test.metrics.quant").unwrap();
        assert_eq!(hs.quantile_bound(0.5), 4); // 2 ∈ [2,4)
        assert!(hs.quantile_bound(0.99) >= 4096);
    }

    #[test]
    fn metrics_aggregate_across_threads() {
        let c = register_counter("test.metrics.threads");
        let before = c.get();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        counter!("test.metrics.threads").incr();
                    }
                });
            }
        });
        assert_eq!(c.get() - before, 4000);
    }
}
