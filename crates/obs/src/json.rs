//! A minimal in-tree JSON value: writer for profile / benchmark output and
//! a recursive-descent parser for the `json_check` smoke-test binary and
//! the `wdpt-serve` wire protocol. No external dependencies; covers exactly
//! the JSON this workspace emits (objects, arrays, strings, finite numbers,
//! booleans, null).
//!
//! [`write_json_line`] / [`read_json_line`] are the one line = one document
//! framing shared by every JSON surface in the workspace: the `--json` mode
//! of the bench binaries, `json_check`, and the query-service protocol.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead, Write};

/// A JSON value. Object keys are kept in a `BTreeMap` so output is
/// deterministic regardless of insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for magnitudes below 2⁵³; beyond that the
    /// nearest representable double, which is fine for event tallies).
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// A float value; non-finite maps to `null` (JSON has no NaN/Inf).
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            // Rust's f64 Display is the shortest representation that
            // round-trips, and integral values print without a dot —
            // both are valid JSON numbers.
            Json::Num(v) if v.is_finite() => write!(f, "{v}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `value` as exactly one newline-terminated line. The writer never
/// emits a raw newline inside a document (strings escape `\n`), so the
/// framing is unambiguous.
pub fn write_json_line<W: Write>(w: &mut W, value: &Json) -> io::Result<()> {
    writeln!(w, "{value}")
}

/// Reads the next newline-delimited JSON document from `r`, skipping blank
/// lines. `Ok(None)` at end of input; a line that fails to parse is an
/// [`io::ErrorKind::InvalidData`] error carrying the parser's message.
pub fn read_json_line<R: BufRead>(r: &mut R) -> io::Result<Option<Json>> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        return Json::parse(trimmed)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                None => return Err("unterminated string".to_string()),
                Some(_) => unreachable!("scan loop stops only on quote or backslash"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_canonical_output() {
        let v = Json::obj([
            ("b", Json::int(3)),
            (
                "a",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::num(1.5)]),
            ),
            ("s", Json::str("x\"y\n")),
        ]);
        assert_eq!(v.to_string(), r#"{"a":[null,true,1.5],"b":3,"s":"x\"y\n"}"#);
    }

    #[test]
    fn parses_what_it_writes() {
        let v = Json::obj([
            ("label", Json::str("eval (tw ≤ 2)")),
            (
                "xs",
                Json::Arr(vec![Json::int(1), Json::int(2), Json::int(4)]),
            ),
            ("secs", Json::Arr(vec![Json::num(0.25), Json::num(1e-9)])),
            ("flag", Json::Bool(false)),
            ("none", Json::Null),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , -2.5e1 , \"a\\u0041\\tb\" ] } ").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("aA\tb"));
    }

    #[test]
    fn line_framing_round_trips_escapes_and_non_ascii() {
        // Strings with every escape class the writer produces, plus
        // non-ASCII (both 2-byte and 4-byte UTF-8) which is written raw.
        let docs = vec![
            Json::obj([
                (
                    "query",
                    Json::str("SELECT ?x WHERE { (?x, \"a\\b\", \"line\nbreak\") }"),
                ),
                ("label", Json::str("naïve τ ≤ 2 — δείγμα 🎶")),
                ("tab", Json::str("a\tb\rc\u{1}d")),
            ]),
            Json::obj([("status", Json::str("ok")), ("answers", Json::int(3))]),
        ];
        let mut buf = Vec::new();
        for d in &docs {
            write_json_line(&mut buf, d).unwrap();
        }
        // Framing: exactly one '\n' per document, none embedded.
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), docs.len());
        let mut r = io::BufReader::new(&buf[..]);
        for d in &docs {
            assert_eq!(read_json_line(&mut r).unwrap().as_ref(), Some(d));
        }
        assert_eq!(read_json_line(&mut r).unwrap(), None);
    }

    #[test]
    fn read_json_line_skips_blanks_and_flags_garbage() {
        let text = "\n  \n{\"a\":1}\nnot json\n";
        let mut r = io::BufReader::new(text.as_bytes());
        assert_eq!(
            read_json_line(&mut r).unwrap(),
            Some(Json::obj([("a", Json::int(1))]))
        );
        let err = read_json_line(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
