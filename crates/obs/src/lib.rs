//! # wdpt-obs — tracing, metrics, and per-query evaluation profiles
//!
//! A std-only (zero-dependency, offline-buildable) observability layer for
//! the WDPT evaluation stack. The paper's claims are *where-does-the-time-go*
//! claims — tractability hinges on which phase dominates (decomposition
//! search, bag materialization, semijoin passes, per-node homomorphism
//! enumeration) — so every perf change should be able to show *which* phase
//! it moved, not just a wall-clock delta. Three pieces:
//!
//! * [`span`] — hierarchical scoped timers ([`span!`] guards) with
//!   thread-local span stacks. Aggregation is per-site into process-wide
//!   relaxed atomics, so the worker threads of `evaluate_parallel`
//!   contribute to the same aggregates and a snapshot taken around joined
//!   work is exact. Tracing is off by default; a disabled [`span!`] costs
//!   one relaxed atomic load (measured < 2% on the `wdpt_eval` bench, see
//!   `EXPERIMENTS.md`).
//! * [`metrics`] — a registry of named counters ([`counter!`]) and
//!   log₂-bucketed histograms ([`histogram!`]) generalizing the five
//!   hard-coded atomics that used to live in `wdpt_model::stats` (that
//!   module remains as a compatibility facade over this registry).
//! * [`profile`] — [`QueryProfile`], a per-query report attached to
//!   WDPT/CQ evaluation results: per-tree-node homomorphism counts,
//!   semijoin reduction factors, decomposition width found and search nodes
//!   visited, and time per phase. Renderable as an indented plain-text
//!   `EXPLAIN ANALYZE` and serializable to JSON via the in-tree [`json`]
//!   writer.
//!
//! Two serving-oriented pieces sit on top: [`expo`] renders a metrics
//! snapshot as Prometheus-style text exposition or JSON (with derived
//! p50/p90/p99), and [`trace`] provides [`RequestTrace`], the stage-timed
//! per-request trace that feeds the `serve.request.*` histograms.

pub mod expo;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod trace;

pub use expo::{render_prometheus, sanitize_name, snapshot_from_json, snapshot_to_json};
pub use json::{read_json_line, write_json_line, Json};
pub use metrics::{
    delta_scope, metrics_snapshot, Counter, CounterDelta, Gauge, HistogramDelta, HistogramSnapshot,
    MetricsSnapshot, RawHistogram,
};
pub use profile::{DecompInfo, NodeEntry, PhaseEntry, ProfileRecorder, QueryProfile};
pub use span::{
    set_tracing, span_snapshot, tracing_enabled, with_tracing, SpanGuard, SpanSnapshot,
};
pub use trace::{GaugeGuard, RequestTrace, Stage};
