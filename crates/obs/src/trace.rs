//! Per-request stage-timed traces for the serving layer.
//!
//! A [`RequestTrace`] rides along with one served request and attributes its
//! wall time to pipeline stages: socket **read** → **admission** checks →
//! **plan** (cache lookup or build) → worker **queue** wait → **eval** →
//! response **respond** write. The connection thread owns the trace and
//! marks stages with [`RequestTrace::stage_done`]; the queue/eval split is
//! measured on the worker side and folded back in with
//! [`RequestTrace::absorb_worker`], clamped so the invariant *sum of stage
//! times ≤ total wall time* holds by construction. [`RequestTrace::record`]
//! publishes the stage times into the `serve.request.*_us` histograms that
//! the `metrics` admin op exposes.

use crate::histogram;
use crate::json::Json;
use std::time::Instant;

/// The pipeline stages of one served request, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Reading and parsing the request line off the socket.
    Read,
    /// Admission control: size caps, symbol budget.
    Admission,
    /// Plan-cache lookup, or the (cancellable) plan build on a miss.
    Plan,
    /// Waiting in the bounded worker queue.
    Queue,
    /// Evaluation proper (backtracking / parallel enumeration).
    Eval,
    /// Serializing and writing the response lines.
    Respond,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 6;

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Read,
        Stage::Admission,
        Stage::Plan,
        Stage::Queue,
        Stage::Eval,
        Stage::Respond,
    ];

    /// Stable lower-case name (used as the JSON key suffix).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Read => "read",
            Stage::Admission => "admission",
            Stage::Plan => "plan",
            Stage::Queue => "queue",
            Stage::Eval => "eval",
            Stage::Respond => "respond",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Read => 0,
            Stage::Admission => 1,
            Stage::Plan => 2,
            Stage::Queue => 3,
            Stage::Eval => 4,
            Stage::Respond => 5,
        }
    }

    fn histogram(self) -> &'static crate::metrics::Histogram {
        match self {
            Stage::Read => histogram!("serve.request.read_us"),
            Stage::Admission => histogram!("serve.request.admission_us"),
            Stage::Plan => histogram!("serve.request.plan_us"),
            Stage::Queue => histogram!("serve.request.queue_us"),
            Stage::Eval => histogram!("serve.request.eval_us"),
            Stage::Respond => histogram!("serve.request.respond_us"),
        }
    }
}

/// Stage-timed trace of one served request. See the module docs for the
/// ownership protocol; the key invariant is that the attributed stage times
/// never sum past the wall-clock total.
#[derive(Debug)]
pub struct RequestTrace {
    started: Instant,
    mark: Instant,
    stage_ns: [u64; STAGE_COUNT],
}

impl Default for RequestTrace {
    fn default() -> Self {
        RequestTrace::start()
    }
}

impl RequestTrace {
    /// Begins a trace; the wall clock and the first stage both start now.
    pub fn start() -> RequestTrace {
        let now = Instant::now();
        RequestTrace {
            started: now,
            mark: now,
            stage_ns: [0; STAGE_COUNT],
        }
    }

    /// Attributes the time since the previous mark to `stage` (accumulating
    /// if the stage was already marked) and advances the mark. Returns the
    /// nanoseconds attributed.
    pub fn stage_done(&mut self, stage: Stage) -> u64 {
        let now = Instant::now();
        let ns = now.duration_since(self.mark).as_nanos() as u64;
        self.stage_ns[stage.index()] += ns;
        self.mark = now;
        ns
    }

    /// Folds worker-measured queue-wait and eval durations into the trace.
    /// Both were sub-intervals of the span since the last mark (the
    /// connection thread marked just before enqueueing), so they are clamped
    /// to that span — preserving `sum of stages ≤ total` even under clock
    /// skew — and the mark advances past the whole span; dispatch overhead
    /// (span − queue − eval) stays unattributed.
    pub fn absorb_worker(&mut self, queue_ns: u64, eval_ns: u64) {
        let now = Instant::now();
        let span = now.duration_since(self.mark).as_nanos() as u64;
        let eval = eval_ns.min(span);
        let queue = queue_ns.min(span - eval);
        self.stage_ns[Stage::Queue.index()] += queue;
        self.stage_ns[Stage::Eval.index()] += eval;
        self.mark = now;
    }

    /// Nanoseconds attributed to `stage` so far.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stage_ns[stage.index()]
    }

    /// Microseconds attributed to `stage` so far.
    pub fn stage_us(&self, stage: Stage) -> u64 {
        self.stage_ns(stage) / 1_000
    }

    /// Sum of all attributed stage times, in nanoseconds. Always ≤
    /// [`RequestTrace::total_ns`].
    pub fn sum_ns(&self) -> u64 {
        self.stage_ns.iter().sum()
    }

    /// Wall-clock time since the trace started, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Publishes the trace into the `serve.request.{stage}_us` histograms
    /// plus `serve.request.total_us`, and returns the total microseconds.
    pub fn record(&self) -> u64 {
        for s in Stage::ALL {
            s.histogram().record(self.stage_us(s));
        }
        let total_us = self.total_ns() / 1_000;
        histogram!("serve.request.total_us").record(total_us);
        total_us
    }

    /// The trace as a JSON object: `{"read_us":..,"admission_us":..,
    /// "plan_us":..,"queue_us":..,"eval_us":..,"respond_us":..,
    /// "total_us":..}` — the shape embedded in `explain` responses and
    /// slowlog entries.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Stage::ALL
            .iter()
            .map(|s| (format!("{}_us", s.name()), Json::int(self.stage_us(*s))))
            .collect();
        pairs.push(("total_us".to_owned(), Json::int(self.total_ns() / 1_000)));
        Json::obj(pairs)
    }
}

/// RAII guard pairing [`Gauge::incr`] with a [`Gauge::decr`] on drop, for
/// live levels like in-flight requests and busy workers that must come back
/// down on every exit path, including panics and early returns.
///
/// [`Gauge::incr`]: crate::metrics::Gauge::incr
/// [`Gauge::decr`]: crate::metrics::Gauge::decr
#[derive(Debug)]
pub struct GaugeGuard {
    gauge: &'static crate::metrics::Gauge,
}

impl GaugeGuard {
    /// Raises `gauge` now; lowers it when the guard drops.
    pub fn raise(gauge: &'static crate::metrics::Gauge) -> GaugeGuard {
        gauge.incr();
        GaugeGuard { gauge }
    }
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.decr();
    }
}

/// Raises the named gauge for the current lexical scope.
#[macro_export]
macro_rules! gauge_scope {
    ($name:expr) => {
        $crate::trace::GaugeGuard::raise($crate::gauge!($name))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::delta_scope;
    use std::time::Duration;

    #[test]
    fn stages_partition_the_wall_clock() {
        let mut t = RequestTrace::start();
        std::thread::sleep(Duration::from_millis(2));
        t.stage_done(Stage::Read);
        t.stage_done(Stage::Admission);
        std::thread::sleep(Duration::from_millis(1));
        t.stage_done(Stage::Plan);
        std::thread::sleep(Duration::from_millis(1));
        t.absorb_worker(300_000, 500_000); // 0.3ms queue + 0.5ms eval ≤ 1ms span
        t.stage_done(Stage::Respond);
        assert!(t.stage_ns(Stage::Read) >= 2_000_000);
        assert_eq!(t.stage_ns(Stage::Queue), 300_000);
        assert_eq!(t.stage_ns(Stage::Eval), 500_000);
        assert!(t.stage_ns(Stage::Queue) <= t.total_ns());
        assert!(t.sum_ns() <= t.total_ns(), "stage sum must not exceed wall");
        // ... and ≈ wall: the only unattributed time is dispatch overhead.
        assert!(t.sum_ns() >= t.total_ns() / 2);
    }

    #[test]
    fn absorb_worker_clamps_to_the_elapsed_span() {
        let mut t = RequestTrace::start();
        std::thread::sleep(Duration::from_millis(1));
        // Worker claims 10s of queue+eval inside a ~1ms span: clamped.
        t.absorb_worker(5_000_000_000, 5_000_000_000);
        assert!(t.sum_ns() <= t.total_ns());
        assert!(t.stage_ns(Stage::Eval) <= t.total_ns());
    }

    #[test]
    fn record_feeds_stage_histograms() {
        let ((), d) = delta_scope(|| {
            let mut t = RequestTrace::start();
            std::thread::sleep(Duration::from_millis(1));
            t.stage_done(Stage::Read);
            t.absorb_worker(200_000, 400_000);
            t.stage_done(Stage::Respond);
            t.record();
        });
        for name in [
            "serve.request.read_us",
            "serve.request.admission_us",
            "serve.request.plan_us",
            "serve.request.queue_us",
            "serve.request.eval_us",
            "serve.request.respond_us",
            "serve.request.total_us",
        ] {
            assert_eq!(d.histogram(name).unwrap().count, 1, "{name}");
        }
        let total = d.histogram("serve.request.total_us").unwrap();
        assert!(total.sum >= 1_000, "total ≥ the 1ms sleep");
    }

    #[test]
    fn trace_json_has_every_stage_and_total() {
        let mut t = RequestTrace::start();
        t.stage_done(Stage::Read);
        let j = t.to_json();
        for s in Stage::ALL {
            assert!(j.get(&format!("{}_us", s.name())).is_some());
        }
        assert!(j.get("total_us").is_some());
    }

    #[test]
    fn gauge_guard_lowers_on_drop_and_panic() {
        let g = crate::metrics::register_gauge("test.trace.inflight");
        {
            let _a = GaugeGuard::raise(g);
            let _b = gauge_scope!("test.trace.inflight");
            assert_eq!(g.get(), 2);
        }
        assert_eq!(g.get(), 0);
        let _ = std::panic::catch_unwind(|| {
            let _g = GaugeGuard::raise(g);
            panic!("boom");
        });
        assert_eq!(g.get(), 0);
    }
}
