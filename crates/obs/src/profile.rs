//! Per-query evaluation profiles.
//!
//! A [`QueryProfile`] is the observability artifact attached to a WDPT/CQ
//! evaluation result: time per phase (from span deltas), event counters and
//! histograms (from metrics deltas), per-tree-node homomorphism tallies, and
//! the decomposition the planner settled on. It renders as an indented
//! plain-text `EXPLAIN ANALYZE` ([`QueryProfile::render`]) and serializes to
//! JSON ([`QueryProfile::to_json`]).
//!
//! The [`ProfileRecorder`] brackets a query: `start` snapshots the span and
//! metric registries and force-enables tracing; `finish` restores the
//! previous tracing state and diffs the snapshots. Because the underlying
//! aggregates are process-wide, deltas are exact only when nothing else runs
//! concurrently — fine for the CLI binaries and benches this is built for.

use crate::json::Json;
use crate::metrics::{metrics_snapshot, HistogramSnapshot, MetricsSnapshot};
use crate::span::{set_tracing, span_snapshot, SpanSnapshot};
use std::time::Instant;

/// One instrumented phase: the delta of one span site over the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEntry {
    /// Dotted span name, e.g. `"cq.structured.semijoin"`.
    pub name: String,
    pub calls: u64,
    /// Wall time inside the phase, nested phases included.
    pub total_ns: u64,
    /// Wall time exclusive of nested phases.
    pub self_ns: u64,
}

/// Per-tree-node data for one WDPT node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEntry {
    /// Preorder id of the node in the pattern tree.
    pub id: usize,
    /// Parent's preorder id; `None` for the root.
    pub parent: Option<usize>,
    /// Depth below the root (root = 0). Drives render indentation.
    pub depth: usize,
    /// Short description of the node, e.g. its atoms or exported variables.
    pub label: String,
    /// Named tallies, e.g. `("homomorphisms", 12)`.
    pub metrics: Vec<(&'static str, u64)>,
}

/// The decomposition the planner found for a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompInfo {
    /// `"treewidth"` or `"hypertree"` (or `"backtrack"` for no plan).
    pub kind: String,
    /// Width of the decomposition found.
    pub width: usize,
    /// Search nodes visited while finding it.
    pub search_nodes: u64,
}

/// A per-query evaluation report.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// What was evaluated, e.g. `"p(D) over figure1"`.
    pub label: String,
    /// End-to-end wall time of the bracketed region.
    pub wall_ns: u64,
    /// Number of answers produced.
    pub answers: u64,
    /// Span deltas with at least one call, sorted by name.
    pub phases: Vec<PhaseEntry>,
    /// Counter deltas with nonzero value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram deltas with at least one observation, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Per-tree-node tallies in preorder (empty for CQ-only profiles).
    pub nodes: Vec<NodeEntry>,
    /// Decomposition found by the planner, when one was searched for.
    pub decomposition: Option<DecompInfo>,
}

/// Brackets one query evaluation; see module docs.
#[derive(Debug)]
pub struct ProfileRecorder {
    label: String,
    started: Instant,
    prev_tracing: bool,
    spans_before: SpanSnapshot,
    metrics_before: MetricsSnapshot,
    nodes: Vec<NodeEntry>,
    decomposition: Option<DecompInfo>,
}

impl ProfileRecorder {
    /// Starts recording: snapshots the registries and enables tracing
    /// (restored by [`finish`](Self::finish)).
    pub fn start(label: impl Into<String>) -> ProfileRecorder {
        let spans_before = span_snapshot();
        let metrics_before = metrics_snapshot();
        let prev_tracing = set_tracing(true);
        ProfileRecorder {
            label: label.into(),
            started: Instant::now(),
            prev_tracing,
            spans_before,
            metrics_before,
            nodes: Vec::new(),
            decomposition: None,
        }
    }

    /// Attaches per-tree-node tallies (preorder).
    pub fn set_nodes(&mut self, nodes: Vec<NodeEntry>) {
        self.nodes = nodes;
    }

    /// Records the decomposition the planner found.
    pub fn set_decomposition(&mut self, info: DecompInfo) {
        self.decomposition = Some(info);
    }

    /// Stops recording, restores the previous tracing state, and builds the
    /// profile from the snapshot deltas.
    pub fn finish(self, answers: u64) -> QueryProfile {
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        set_tracing(self.prev_tracing);
        let span_delta = span_snapshot().since(&self.spans_before);
        let metrics_delta = metrics_snapshot().since(&self.metrics_before);
        let phases = span_delta
            .entries
            .iter()
            .filter(|e| e.calls > 0)
            .map(|e| PhaseEntry {
                name: e.name.clone(),
                calls: e.calls,
                total_ns: e.total_ns,
                self_ns: e.self_ns(),
            })
            .collect();
        let counters = metrics_delta
            .counters
            .into_iter()
            .filter(|(_, v)| *v > 0)
            .collect();
        let histograms = metrics_delta
            .histograms
            .into_iter()
            .filter(|h| h.count > 0)
            .collect();
        QueryProfile {
            label: self.label,
            wall_ns,
            answers,
            phases,
            counters,
            histograms,
            nodes: self.nodes,
            decomposition: self.decomposition,
        }
    }
}

/// `1234567` ns → `"1.23ms"`; picks ns/µs/ms/s to keep 3 significant digits.
fn human_ns(ns: u64) -> String {
    let t = ns as f64;
    if t < 1e3 {
        format!("{ns}ns")
    } else if t < 1e6 {
        format!("{:.2}µs", t / 1e3)
    } else if t < 1e9 {
        format!("{:.2}ms", t / 1e6)
    } else {
        format!("{:.2}s", t / 1e9)
    }
}

impl QueryProfile {
    /// Number of dots in a span name = nesting depth for rendering.
    fn phase_depth(name: &str) -> usize {
        name.matches('.').count()
    }

    /// Renders an indented plain-text `EXPLAIN ANALYZE`-style report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {}  (wall {}, {} answers)",
            self.label,
            human_ns(self.wall_ns),
            self.answers
        );
        if let Some(d) = &self.decomposition {
            let _ = writeln!(
                out,
                "  decomposition: {} width={} search_nodes={}",
                d.kind, d.width, d.search_nodes
            );
        }
        if !self.phases.is_empty() {
            let _ = writeln!(out, "  phases:");
            for p in &self.phases {
                let indent = "  ".repeat(Self::phase_depth(&p.name));
                let _ = writeln!(
                    out,
                    "    {indent}{}  calls={} total={} self={}",
                    p.name,
                    p.calls,
                    human_ns(p.total_ns),
                    human_ns(p.self_ns)
                );
            }
        }
        if !self.nodes.is_empty() {
            let _ = writeln!(out, "  tree:");
            for n in &self.nodes {
                let indent = "  ".repeat(n.depth);
                let mut line = format!("    {indent}[{}] {}", n.id, n.label);
                for (k, v) in &n.metrics {
                    line.push_str(&format!("  {k}={v}"));
                }
                let _ = writeln!(out, "{line}");
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "    {name} = {v}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "  histograms:");
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "    {}  count={} mean={:.1} p50<={} max={}",
                    h.name,
                    h.count,
                    h.mean(),
                    h.quantile_bound(0.5),
                    h.max
                );
            }
        }
        out
    }

    /// Serializes the full profile as a JSON object.
    pub fn to_json(&self) -> Json {
        let phases = self
            .phases
            .iter()
            .map(|p| {
                Json::obj([
                    ("name", Json::str(&p.name)),
                    ("calls", Json::int(p.calls)),
                    ("total_ns", Json::int(p.total_ns)),
                    ("self_ns", Json::int(p.self_ns)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| Json::obj([("name", Json::str(n)), ("value", Json::int(*v))]))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                Json::obj([
                    ("name", Json::str(&h.name)),
                    ("count", Json::int(h.count)),
                    ("sum", Json::int(h.sum)),
                    ("max", Json::int(h.max)),
                    ("mean", Json::num(h.mean())),
                    ("p50_bound", Json::int(h.quantile_bound(0.5))),
                ])
            })
            .collect();
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                Json::obj([
                    ("id", Json::int(n.id as u64)),
                    (
                        "parent",
                        n.parent.map_or(Json::Null, |p| Json::int(p as u64)),
                    ),
                    ("depth", Json::int(n.depth as u64)),
                    ("label", Json::str(&n.label)),
                    (
                        "metrics",
                        Json::obj(n.metrics.iter().map(|(k, v)| (*k, Json::int(*v)))),
                    ),
                ])
            })
            .collect();
        let mut obj = vec![
            ("label", Json::str(&self.label)),
            ("wall_ns", Json::int(self.wall_ns)),
            ("answers", Json::int(self.answers)),
            ("phases", Json::Arr(phases)),
            ("counters", Json::Arr(counters)),
            ("histograms", Json::Arr(histograms)),
            ("nodes", Json::Arr(nodes)),
        ];
        if let Some(d) = &self.decomposition {
            obj.push((
                "decomposition",
                Json::obj([
                    ("kind", Json::str(&d.kind)),
                    ("width", Json::int(d.width as u64)),
                    ("search_nodes", Json::int(d.search_nodes)),
                ]),
            ));
        }
        Json::obj(obj)
    }

    /// The value of counter `name` in this profile (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The phase named `name`, if it fired during the query.
    pub fn phase(&self, name: &str) -> Option<&PhaseEntry> {
        self.phases.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, span};

    #[test]
    fn recorder_diffs_spans_and_counters() {
        let mut rec = ProfileRecorder::start("test profile");
        {
            let _g = span!("test.profile.phase");
            counter!("test.profile.events").add(5);
        }
        rec.set_nodes(vec![NodeEntry {
            id: 0,
            parent: None,
            depth: 0,
            label: "root".into(),
            metrics: vec![("homomorphisms", 3)],
        }]);
        rec.set_decomposition(DecompInfo {
            kind: "treewidth".into(),
            width: 2,
            search_nodes: 7,
        });
        let profile = rec.finish(3);
        assert_eq!(profile.answers, 3);
        assert_eq!(profile.counter("test.profile.events"), 5);
        let phase = profile.phase("test.profile.phase").unwrap();
        assert_eq!(phase.calls, 1);
        assert!(profile.wall_ns >= phase.total_ns);
        assert_eq!(profile.decomposition.as_ref().unwrap().width, 2);
    }

    #[test]
    fn recorder_restores_tracing_state() {
        let prev = crate::span::set_tracing(false);
        let rec = ProfileRecorder::start("test nested");
        assert!(crate::span::tracing_enabled());
        let _ = rec.finish(0);
        assert!(!crate::span::tracing_enabled());
        crate::span::set_tracing(prev);
    }

    #[test]
    fn render_and_json_cover_all_sections() {
        let mut rec = ProfileRecorder::start("render test");
        {
            let _g = span!("test.render.outer");
            let _h = span!("test.render.outer.inner");
            crate::histogram!("test.render.sizes").record(9);
        }
        rec.set_nodes(vec![
            NodeEntry {
                id: 0,
                parent: None,
                depth: 0,
                label: "root {x}".into(),
                metrics: vec![("homomorphisms", 4)],
            },
            NodeEntry {
                id: 1,
                parent: Some(0),
                depth: 1,
                label: "opt {y}".into(),
                metrics: vec![("homomorphisms", 2)],
            },
        ]);
        let profile = rec.finish(4);
        let text = profile.render();
        assert!(text.contains("render test"));
        assert!(text.contains("test.render.outer"));
        assert!(text.contains("[1] opt {y}  homomorphisms=2"));
        assert!(text.contains("test.render.sizes"));

        let json = profile.to_json();
        let parsed = Json::parse(&json.to_string()).expect("profile JSON parses");
        assert_eq!(parsed.get("answers").unwrap().as_num(), Some(4.0));
        let nodes = parsed.get("nodes").unwrap().as_arr().unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(
            nodes[1]
                .get("metrics")
                .unwrap()
                .get("homomorphisms")
                .unwrap()
                .as_num(),
            Some(2.0)
        );
    }
}
