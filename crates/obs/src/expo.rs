//! Metrics exposition: rendering a [`MetricsSnapshot`] as Prometheus-style
//! text and as a [`Json`] document (with derived p50/p90/p99), plus the
//! inverse JSON decoding so scrapers and tests can round-trip snapshots.
//!
//! The text format follows the Prometheus exposition conventions: one
//! `# TYPE` line per metric family, histograms as cumulative
//! `name_bucket{le="..."}` series ending in `le="+Inf"`, plus `name_sum` and
//! `name_count`. Metric names in this workspace are dotted
//! (`serve.request.total_us`); [`sanitize_name`] maps them onto the
//! Prometheus charset by replacing every byte outside `[a-zA-Z0-9_:]` with
//! an underscore.

use crate::json::Json;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

/// Maps an internal dotted metric name onto the Prometheus name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other byte becomes `_`, and a name
/// that would start with a digit (or is empty) gains a leading `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, b) in name.bytes().enumerate() {
        let ok = b == b'_' || b == b':' || b.is_ascii_alphabetic() || (i > 0 && b.is_ascii_digit());
        if i == 0 && b.is_ascii_digit() {
            out.push('_');
            out.push(b as char);
        } else if ok {
            out.push(b as char);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format. Counters
/// and gauges are one sample each; every histogram becomes a cumulative
/// `_bucket{le="..."}` series (log₂ bounds, ending in `+Inf`) plus `_sum`
/// and `_count` samples.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for h in &snap.histograms {
        let n = sanitize_name(&h.name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        for (le, cum) in h.cumulative() {
            match le {
                Some(b) => {
                    let _ = writeln!(out, "{n}_bucket{{le=\"{b}\"}} {cum}");
                }
                None => {
                    let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cum}");
                }
            }
        }
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

fn histogram_to_json(h: &HistogramSnapshot) -> Json {
    let (p50, p90, p99) = h.percentiles();
    let buckets = h
        .cumulative()
        .into_iter()
        .map(|(le, cum)| {
            Json::obj([
                ("le", le.map_or(Json::Null, Json::int)),
                ("count", Json::int(cum)),
            ])
        })
        .collect();
    Json::obj([
        ("count", Json::int(h.count)),
        ("sum", Json::int(h.sum)),
        ("max", Json::int(h.max)),
        ("mean", Json::num(h.mean())),
        ("p50", Json::int(p50)),
        ("p90", Json::int(p90)),
        ("p99", Json::int(p99)),
        ("buckets", Json::Arr(buckets)),
    ])
}

/// Renders a snapshot as a JSON document:
/// `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,max,mean,
/// p50,p90,p99,buckets:[{le,count},..]}}}`. Bucket counts are cumulative,
/// matching the text exposition; `le:null` is the `+Inf` tail.
pub fn snapshot_to_json(snap: &MetricsSnapshot) -> Json {
    let counters = Json::obj(
        snap.counters
            .iter()
            .map(|(n, v)| (n.clone(), Json::int(*v))),
    );
    let gauges = Json::obj(snap.gauges.iter().map(|(n, v)| {
        let j = if *v >= 0 {
            Json::int(*v as u64)
        } else {
            Json::num(*v as f64)
        };
        (n.clone(), j)
    }));
    let histograms = Json::obj(
        snap.histograms
            .iter()
            .map(|h| (h.name.clone(), histogram_to_json(h))),
    );
    Json::obj([
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

fn num_field(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn histogram_from_json(name: &str, j: &Json) -> Result<HistogramSnapshot, String> {
    let count = num_field(j, "count")? as u64;
    let sum = num_field(j, "sum")? as u64;
    let max = num_field(j, "max")? as u64;
    let pairs = j
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("histogram '{name}' missing buckets"))?;
    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
    let mut prev = 0u64;
    let mut finite_cum = 0u64;
    for p in pairs {
        let cum = num_field(p, "count")? as u64;
        if cum < prev {
            return Err(format!("histogram '{name}' buckets not cumulative"));
        }
        match p.get("le") {
            Some(Json::Null) => {} // +Inf tail; handled below via `count`
            Some(le) => {
                let bound = le
                    .as_num()
                    .ok_or_else(|| format!("histogram '{name}' bad le"))?
                    as u64;
                // le=0 is bucket 0; le=2^i−1 is bucket i.
                let idx = if bound == 0 {
                    0
                } else {
                    (64 - (bound + 1).leading_zeros() - 1) as usize
                };
                if idx >= HISTOGRAM_BUCKETS {
                    return Err(format!("histogram '{name}' le out of range"));
                }
                buckets[idx] = cum - prev;
                finite_cum = cum;
            }
            None => return Err(format!("histogram '{name}' bucket missing le")),
        }
        prev = cum;
    }
    // Whatever the finite buckets don't account for sits in the tail.
    buckets[HISTOGRAM_BUCKETS - 1] = count.saturating_sub(finite_cum);
    Ok(HistogramSnapshot {
        name: name.to_owned(),
        count,
        sum,
        max,
        buckets,
    })
}

/// Decodes a snapshot previously written by [`snapshot_to_json`]. Derived
/// fields (`mean`, percentiles) are recomputed from the buckets, so
/// `snapshot_from_json(&snapshot_to_json(s)) == Ok(s)` for any snapshot
/// whose tallies fit in an `f64` mantissa (all realistic event counts).
pub fn snapshot_from_json(j: &Json) -> Result<MetricsSnapshot, String> {
    let mut snap = MetricsSnapshot::default();
    if let Some(Json::Obj(m)) = j.get("counters") {
        for (n, v) in m {
            let v = v
                .as_num()
                .ok_or_else(|| format!("counter '{n}' not numeric"))?;
            snap.counters.push((n.clone(), v as u64));
        }
    }
    if let Some(Json::Obj(m)) = j.get("gauges") {
        for (n, v) in m {
            let v = v
                .as_num()
                .ok_or_else(|| format!("gauge '{n}' not numeric"))?;
            snap.gauges.push((n.clone(), v as i64));
        }
    }
    if let Some(Json::Obj(m)) = j.get("histograms") {
        for (n, v) in m {
            snap.histograms.push(histogram_from_json(n, v)?);
        }
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{delta_scope, metrics_snapshot};
    use crate::metrics::{register_counter, register_gauge, register_histogram};

    #[test]
    fn sanitize_maps_onto_prometheus_charset() {
        assert_eq!(
            sanitize_name("serve.request.total_us"),
            "serve_request_total_us"
        );
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(sanitize_name("naïve"), "na__ve"); // two-byte UTF-8 → two underscores
    }

    #[test]
    fn exposition_has_types_cumulative_buckets_and_inf() {
        let (_, d) = delta_scope(|| {
            register_counter("test.expo.reqs").add(3);
            register_gauge("test.expo.depth").set(5);
            let h = register_histogram("test.expo.lat");
            for v in [0u64, 1, 5, 5, 1000] {
                h.record(v);
            }
        });
        let text = render_prometheus(&d);
        assert!(text.contains("# TYPE test_expo_reqs counter"));
        assert!(text.contains("test_expo_reqs 3"));
        assert!(text.contains("# TYPE test_expo_depth gauge"));
        assert!(text.contains("test_expo_depth 5"));
        assert!(text.contains("# TYPE test_expo_lat histogram"));
        assert!(text.contains("test_expo_lat_bucket{le=\"0\"} 1"));
        assert!(text.contains("test_expo_lat_bucket{le=\"1\"} 2"));
        assert!(text.contains("test_expo_lat_bucket{le=\"7\"} 4")); // 5s ∈ [4,8)
        assert!(text.contains("test_expo_lat_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("test_expo_lat_sum 1011"));
        assert!(text.contains("test_expo_lat_count 5"));
        // Cumulative counts along each histogram's bucket series never drop.
        let mut last: Option<(String, u64)> = None;
        for line in text.lines() {
            if let Some((name, rest)) = line.split_once("_bucket{le=\"") {
                let cum: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
                if let Some((ref pn, pc)) = last {
                    if pn == name {
                        assert!(cum >= pc, "bucket series for {name} not monotone");
                    }
                }
                last = Some((name.to_owned(), cum));
            }
        }
    }

    #[test]
    fn json_round_trips_counters_gauges_histograms() {
        let (_, d) = delta_scope(|| {
            register_counter("test.expo.rt.c").add(41);
            register_gauge("test.expo.rt.g").set(-7);
            let h = register_histogram("test.expo.rt.h");
            for v in [0u64, 3, 3, 900, u64::MAX] {
                h.record(v);
            }
        });
        let j = snapshot_to_json(&d);
        let text = j.to_string();
        let parsed = Json::parse(&text).unwrap();
        let back = snapshot_from_json(&parsed).unwrap();
        assert_eq!(back.counter("test.expo.rt.c"), 41);
        assert_eq!(back.gauge("test.expo.rt.g"), -7);
        let orig = d.histogram("test.expo.rt.h").unwrap();
        let rt = back.histogram("test.expo.rt.h").unwrap();
        // max is u64::MAX, which doesn't survive f64; compare the rest.
        assert_eq!(rt.count, orig.count);
        assert_eq!(rt.sum, orig.sum);
        assert_eq!(rt.buckets, orig.buckets);
        // The tail observation landed in the +Inf-only bucket.
        assert_eq!(rt.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn json_carries_derived_percentiles() {
        let (_, d) = delta_scope(|| {
            let h = register_histogram("test.expo.pct");
            for _ in 0..90 {
                h.record(2);
            }
            for _ in 0..10 {
                h.record(4096);
            }
        });
        let j = snapshot_to_json(&d);
        let h = j.get("histograms").unwrap().get("test.expo.pct").unwrap();
        assert_eq!(h.get("p50").unwrap().as_num(), Some(4.0));
        assert!(h.get("p99").unwrap().as_num().unwrap() >= 4096.0);
        assert_eq!(h.get("count").unwrap().as_num(), Some(100.0));
    }

    #[test]
    fn from_json_rejects_non_cumulative_buckets() {
        let bad = Json::parse(
            r#"{"histograms":{"h":{"count":2,"sum":3,"max":2,
                "buckets":[{"le":0,"count":2},{"le":1,"count":1},{"le":null,"count":2}]}}}"#
                .replace('\n', "")
                .trim(),
        )
        .unwrap();
        assert!(snapshot_from_json(&bad).is_err());
    }

    #[test]
    fn full_registry_snapshot_renders_without_panic() {
        // Whatever other tests registered: rendering must never panic and
        // every histogram series must end in +Inf.
        let snap = metrics_snapshot();
        let text = render_prometheus(&snap);
        for h in &snap.histograms {
            let n = sanitize_name(&h.name);
            assert!(text.contains(&format!("{n}_bucket{{le=\"+Inf\"}}")));
        }
    }
}
