//! Property tests for the cardinality estimator over LCG-generated
//! relations: exact on duplicate-free and uniform columns, and bounded by
//! the observed posting-length extremes under skew.

use std::collections::BTreeSet;
use wdpt_model::parse::{parse_atoms, parse_database};
use wdpt_model::{Interner, Term};
use wdpt_plan::{est_matches, StatsCatalog};

/// Knuth's MMIX linear congruential generator — deterministic, std-only.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }

    fn gen_range(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

#[test]
fn exact_on_duplicate_free_columns() {
    for seed in 0..20u64 {
        let mut rng = Lcg::new(seed);
        let rows = 1 + rng.gen_range(200);
        // Column 0 is a key: every value distinct.
        let spec: Vec<String> = (0..rows)
            .map(|r| format!("r(k{r},v{})", rng.gen_range(8)))
            .collect();
        let mut i = Interner::new();
        let db = parse_database(&mut i, &spec.join(" ")).unwrap();
        let stats = StatsCatalog::build(&db);
        let atoms = parse_atoms(&mut i, "r(?x,?y)").unwrap();
        let bound: BTreeSet<_> = [i.var("x")].into();
        // rows / distinct = rows / rows = 1, and every key matches exactly
        // one tuple: the estimate is exact, not just bounded.
        assert_eq!(
            est_matches(&stats, &atoms[0], &bound),
            1.0,
            "seed {seed}, rows {rows}"
        );
        assert_eq!(
            est_matches(&stats, &atoms[0], &BTreeSet::new()),
            rows as f64
        );
    }
}

#[test]
fn exact_on_uniform_columns() {
    for seed in 0..20u64 {
        let mut rng = Lcg::new(seed ^ 0xDEAD);
        let distinct = 1 + rng.gen_range(12);
        let per_value = 1 + rng.gen_range(12);
        // Each of `distinct` values occurs exactly `per_value` times; pad
        // column 1 with a key so rows stay unique.
        let mut spec = Vec::new();
        for d in 0..distinct {
            for k in 0..per_value {
                spec.push(format!("r(v{d},u{d}_{k})"));
            }
        }
        let mut i = Interner::new();
        let db = parse_database(&mut i, &spec.join(" ")).unwrap();
        let stats = StatsCatalog::build(&db);
        let atoms = parse_atoms(&mut i, "r(?x,?y)").unwrap();
        let bound: BTreeSet<_> = [i.var("x")].into();
        // Uniformity holds exactly, so the mean IS every posting length.
        assert_eq!(
            est_matches(&stats, &atoms[0], &bound),
            per_value as f64,
            "seed {seed}"
        );
    }
}

#[test]
fn bounded_by_posting_extremes_under_skew() {
    for seed in 0..20u64 {
        let mut rng = Lcg::new(seed ^ 0xBEEF);
        // Zipf-ish skew: value v{j} drawn with weight ~1/(j+1) by rejection
        // on a quadratic ramp — hot head, long tail.
        let rows = 50 + rng.gen_range(300);
        let universe = 2 + rng.gen_range(30);
        let spec: Vec<String> = (0..rows)
            .map(|r| {
                let a = rng.gen_range(universe);
                let b = rng.gen_range(universe);
                format!("r(v{},u{r})", a.min(b))
            })
            .collect();
        let mut i = Interner::new();
        let db = parse_database(&mut i, &spec.join(" ")).unwrap();
        let stats = StatsCatalog::build(&db);
        let rel = db.relation(i.pred("r")).unwrap();
        // Ground-truth posting lengths of column 0.
        let mut counts = std::collections::HashMap::new();
        for t in rel.tuples() {
            *counts.entry(t[0]).or_insert(0u64) += 1;
        }
        let min_posting = *counts.values().min().unwrap();
        let max_posting = *counts.values().max().unwrap();
        let atoms = parse_atoms(&mut i, "r(?x,?y)").unwrap();
        let bound: BTreeSet<_> = [i.var("x")].into();
        let est = est_matches(&stats, &atoms[0], &bound);
        // The mean-posting estimate can never leave the min/max envelope,
        // and the catalog's own max_posting agrees with ground truth.
        assert!(
            est >= min_posting as f64 && est <= max_posting as f64,
            "seed {seed}: est {est} outside [{min_posting}, {max_posting}]"
        );
        let cs = &stats.relation(i.pred("r")).unwrap().columns[0];
        assert_eq!(cs.max_posting, max_posting);
        assert_eq!(cs.distinct, counts.len() as u64);
        // Constant lookups agree with per-value ground truth on average:
        // summing the estimate over the universe recovers the row count.
        let mut total = 0.0;
        for &c in counts.keys() {
            let mut atom = atoms[0].clone();
            atom.args[0] = Term::Const(c);
            total += est_matches(&stats, &atom, &BTreeSet::new());
        }
        assert!((total - rows as f64).abs() < 1e-6 * rows as f64);
    }
}
