//! `wdpt-plan`: cost-based join planning for wdPT evaluation.
//!
//! Three pieces, composed bottom-up:
//!
//! 1. **Statistics** ([`stats`]): a [`StatsCatalog`] summarizes one
//!    database version — row counts, per-column distinct counts, and a
//!    posting-length sketch — stamped with a monotone epoch so cached
//!    plans can detect staleness.
//! 2. **Cost model** ([`cost`]): [`est_matches`] estimates the tuples an
//!    atom matches given a bound-variable set, and [`order_cost`] folds
//!    that into the expected backtracking nodes of a whole atom order —
//!    the exact quantity the engine's `cq.nodes_expanded` counter
//!    observes.
//! 3. **Enumeration** ([`enumerate`]): greedy, left-deep DP, and bushy
//!    strategies each produce a [`NodeOrder`] per wdPT node; an
//!    [`ExecPlan`] collects one per node. Exponential enumerators are
//!    gated by atom count and poll a `CancelToken` so planning respects
//!    request deadlines.
//!
//! The crate deliberately depends only on `wdpt-model`: it plans *one
//! node's atom set at a time* given the ancestor-bound variables, and the
//! layers that know the tree shape (`wdpt-core`, `wdpt-serve`) assemble
//! per-node orders into an [`ExecPlan`].

pub mod cost;
pub mod enumerate;
pub mod stats;

pub use cost::{est_matches, order_cost, var_domain, OrderCost};
pub use enumerate::{
    plan_bushy, plan_dp, plan_greedy, plan_node, ExecPlan, NodeOrder, Strategy, MAX_BUSHY_ATOMS,
    MAX_DP_ATOMS,
};
pub use stats::{ColumnStats, RelationStats, StatsCatalog, SKETCH_BUCKETS};
