//! The cost model: expected backtracking work of an atom order.
//!
//! The backtracking engine expands one search node per (partial mapping ×
//! atom selection), so the cost of executing atoms in order `a_1 … a_n` is
//!
//! ```text
//!   nodes(order) = Σ_{d=1}^{n} Π_{j<d} m_j
//! ```
//!
//! where `m_j` is the expected number of tuples matching atom `a_j` once
//! the atoms before it (and the node's inherited ancestor variables) have
//! bound its join variables. `m_j` comes from the statistics catalog under
//! independence and uniformity assumptions: a relation of `r` rows with a
//! bound column of `d` distinct values matches `r/d` tuples in
//! expectation. The uniformity assumption is exactly what skewed data
//! violates — which is why the serving layer compares these estimates
//! against observed `nodes_expanded` and re-plans on sustained divergence.

use crate::stats::StatsCatalog;
use std::collections::BTreeSet;
use wdpt_model::{Atom, Term, Var};

/// Expected number of tuples matching `atom` given that the variables in
/// `bound` already carry values. Exact (`rows`) for unconstrained atoms
/// and `0` for relations absent from the catalog; fractional values mean
/// "less than one match expected".
pub fn est_matches(stats: &StatsCatalog, atom: &Atom, bound: &BTreeSet<Var>) -> f64 {
    let Some(rs) = stats.relation(atom.pred) else {
        return 0.0;
    };
    let mut est = rs.rows as f64;
    let mut seen_here: BTreeSet<Var> = BTreeSet::new();
    for (col, term) in atom.args.iter().enumerate() {
        let constrained = match term {
            Term::Const(_) => true,
            // A repeated variable inside the atom is an equality
            // constraint on its second occurrence even when unbound.
            Term::Var(v) => bound.contains(v) || !seen_here.insert(*v),
        };
        if constrained {
            let distinct = rs.columns.get(col).map_or(1, |c| c.distinct).max(1);
            est /= distinct as f64;
        }
    }
    est
}

/// Estimated cost and output size of executing `atoms` in the given order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderCost {
    /// Expected backtracking nodes expanded (`Σ_d Π_{j<d} m_j`).
    pub nodes: f64,
    /// Expected result tuples (`Π_j m_j`).
    pub rows: f64,
}

/// Costs the order `atoms[order[0]], atoms[order[1]], …` starting from the
/// already-bound variable set `bound0` (a wdPT node's inherited ancestor
/// variables). `order` must be a permutation of `0..atoms.len()`.
pub fn order_cost(
    stats: &StatsCatalog,
    atoms: &[Atom],
    order: &[usize],
    bound0: &BTreeSet<Var>,
) -> OrderCost {
    debug_assert_eq!(order.len(), atoms.len());
    let mut bound = bound0.clone();
    let mut frontier = 1.0f64;
    let mut nodes = 0.0f64;
    for &i in order {
        let atom = &atoms[i];
        nodes += frontier;
        frontier *= est_matches(stats, atom, &bound);
        bound.extend(atom.vars());
    }
    OrderCost {
        nodes,
        rows: frontier,
    }
}

/// Expected domain size of a join variable over `atoms`: the smallest
/// distinct count among the columns it occurs in (the tightest of its
/// occurrences bounds the join's value universe). Used by the bushy
/// enumerator's join-selectivity estimate. Returns `None` when the
/// variable occurs in no catalogued column.
pub fn var_domain(stats: &StatsCatalog, atoms: &[Atom], v: Var) -> Option<u64> {
    let mut best: Option<u64> = None;
    for atom in atoms {
        let Some(rs) = stats.relation(atom.pred) else {
            continue;
        };
        for (col, term) in atom.args.iter().enumerate() {
            if *term == Term::Var(v) {
                let d = rs.columns.get(col).map_or(0, |c| c.distinct);
                best = Some(best.map_or(d, |b| b.min(d)));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_model::parse::{parse_atoms, parse_database};
    use wdpt_model::Interner;

    #[test]
    fn unbound_atom_estimates_relation_size() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(a,b) e(b,c) e(c,d)").unwrap();
        let stats = StatsCatalog::build(&db);
        let atoms = parse_atoms(&mut i, "e(?x,?y)").unwrap();
        assert_eq!(est_matches(&stats, &atoms[0], &BTreeSet::new()), 3.0);
    }

    #[test]
    fn bound_column_divides_by_distinct_count() {
        let mut i = Interner::new();
        // Column 0 has 2 distinct values over 4 rows.
        let db = parse_database(&mut i, "e(a,1) e(a,2) e(b,3) e(b,4)").unwrap();
        let stats = StatsCatalog::build(&db);
        let atoms = parse_atoms(&mut i, "e(?x,?y)").unwrap();
        let bound: BTreeSet<_> = [i.var("x")].into();
        assert_eq!(est_matches(&stats, &atoms[0], &bound), 2.0);
    }

    #[test]
    fn constants_and_repeated_vars_constrain() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "r(a,a) r(a,b) r(b,a) r(b,b)").unwrap();
        let stats = StatsCatalog::build(&db);
        let with_const = parse_atoms(&mut i, "r(a,?y)").unwrap();
        assert_eq!(est_matches(&stats, &with_const[0], &BTreeSet::new()), 2.0);
        let diagonal = parse_atoms(&mut i, "r(?x,?x)").unwrap();
        // 4 rows / 2 distinct in the second column: 2 expected.
        assert_eq!(est_matches(&stats, &diagonal[0], &BTreeSet::new()), 2.0);
    }

    #[test]
    fn order_cost_sums_prefix_products() {
        let mut i = Interner::new();
        // small: 2 rows; fan: 8 rows over 2 distinct x (mean fan-out 4).
        let db = parse_database(
            &mut i,
            "small(a) small(b) \
             fan(a,1) fan(a,2) fan(a,3) fan(a,4) fan(b,5) fan(b,6) fan(b,7) fan(b,8)",
        )
        .unwrap();
        let stats = StatsCatalog::build(&db);
        let atoms = parse_atoms(&mut i, "small(?x), fan(?x,?y)").unwrap();
        let c = order_cost(&stats, &atoms, &[0, 1], &BTreeSet::new());
        // 1 (pick small) + 2 (pick fan per small binding); 2×4 rows out.
        assert_eq!(c.nodes, 3.0);
        assert_eq!(c.rows, 8.0);
        let rev = order_cost(&stats, &atoms, &[1, 0], &BTreeSet::new());
        // 1 (pick fan) + 8 (pick small per fan row); same output size.
        assert_eq!(rev.nodes, 9.0);
        assert_eq!(rev.rows, 8.0);
    }

    #[test]
    fn var_domain_takes_tightest_occurrence() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(a,1) e(b,2) e(c,3) f(1) f(2)").unwrap();
        let stats = StatsCatalog::build(&db);
        let atoms = parse_atoms(&mut i, "e(?x,?y), f(?y)").unwrap();
        assert_eq!(var_domain(&stats, &atoms, i.var("y")), Some(2));
        assert_eq!(var_domain(&stats, &atoms, i.var("x")), Some(3));
        assert_eq!(var_domain(&stats, &atoms, i.var("z")), None);
    }
}
