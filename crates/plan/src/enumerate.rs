//! Join-order enumeration: greedy, left-deep DP, and bushy DP.
//!
//! All three strategies produce the same artifact — a [`NodeOrder`], a
//! static atom permutation for one wdPT node — so their estimates are
//! directly comparable: whatever search shape a strategy explores
//! internally, its final cost is [`order_cost`] of the linearized order,
//! which is exactly what the backtracking engine will pay. `Auto` runs
//! every strategy whose gate admits the node and keeps the cheapest order.
//!
//! The DP enumerators are exponential in the atom count (`O(2ⁿ·n)`
//! left-deep, `O(3ⁿ)` bushy), so both are gated to small `n` and poll the
//! request's [`CancelToken`] between subsets — an adversarial query cannot
//! ride out its deadline inside the planner.

use crate::cost::{est_matches, order_cost, var_domain, OrderCost};
use crate::stats::StatsCatalog;
use std::collections::BTreeSet;
use wdpt_model::{Atom, CancelToken, Cancelled, Var};

/// Join-order enumeration strategy. `Auto` picks per node by estimated
/// cost; the other three force one enumerator (ablations, re-planning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// Cost-based selection among the gated strategies, per node.
    #[default]
    Auto,
    /// Greedy smallest-estimated-matches-first. Linear, never gated.
    Greedy,
    /// Left-deep dynamic programming over atom subsets (Held–Karp).
    Dp,
    /// Bushy dynamic programming over connected sub-joins, linearized.
    Bushy,
}

impl Strategy {
    /// The flag/metric spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::Auto => "auto",
            Strategy::Greedy => "greedy",
            Strategy::Dp => "dp",
            Strategy::Bushy => "bushy",
        }
    }

    /// Parses the flag spelling.
    pub fn parse(s: &str) -> Option<Strategy> {
        match s {
            "auto" => Some(Strategy::Auto),
            "greedy" => Some(Strategy::Greedy),
            "dp" => Some(Strategy::Dp),
            "bushy" => Some(Strategy::Bushy),
            _ => None,
        }
    }

    /// The next concrete strategy in the re-planning rotation
    /// (`greedy → dp → bushy → greedy`); `Auto` rotates to `Dp` since an
    /// auto-planned entry already had the greedy choice available.
    pub fn rotate(self) -> Strategy {
        match self {
            Strategy::Auto | Strategy::Greedy => Strategy::Dp,
            Strategy::Dp => Strategy::Bushy,
            Strategy::Bushy => Strategy::Greedy,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Largest atom count the left-deep DP enumerates (`O(2ⁿ·n²)` time,
/// `O(2ⁿ)` space); beyond it [`plan_node`] falls back to greedy.
pub const MAX_DP_ATOMS: usize = 13;

/// Largest atom count the bushy DP enumerates (`O(3ⁿ)` subset-partition
/// pairs); beyond it [`plan_node`] falls back to greedy.
pub const MAX_BUSHY_ATOMS: usize = 10;

/// The planned execution order of one wdPT node: a static atom
/// permutation plus the cost model's view of it.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOrder {
    /// Permutation of `0..atoms.len()`: position `d` holds the index of
    /// the atom executed at depth `d`.
    pub order: Vec<usize>,
    /// Which enumerator produced the order (under `Auto`, the winner).
    pub chosen: Strategy,
    /// Estimated backtracking nodes for the order.
    pub est_nodes: f64,
    /// Estimated result rows of the node's local join.
    pub est_rows: f64,
}

/// A full per-wdPT-node plan: one [`NodeOrder`] per tree node, indexed by
/// preorder node id, stamped with the statistics epoch it was costed
/// under.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPlan {
    /// The strategy the plan was requested with (possibly `Auto`).
    pub strategy: Strategy,
    /// Per-node orders, indexed by wdPT preorder node id.
    pub nodes: Vec<NodeOrder>,
    /// [`StatsCatalog::epoch`] of the catalog the plan was costed against.
    pub stats_epoch: u64,
}

impl ExecPlan {
    /// Total estimated backtracking nodes, summed over the tree's nodes.
    /// Each node's estimate counts one execution; under evaluation a child
    /// node runs once per ancestor context, so this is the one-pass lower
    /// bound the re-planner compares observed work against.
    pub fn est_nodes(&self) -> f64 {
        self.nodes.iter().map(|n| n.est_nodes).sum()
    }
}

fn finish(
    stats: &StatsCatalog,
    atoms: &[Atom],
    bound0: &BTreeSet<Var>,
    order: Vec<usize>,
    chosen: Strategy,
) -> NodeOrder {
    let OrderCost { nodes, rows } = order_cost(stats, atoms, &order, bound0);
    NodeOrder {
        order,
        chosen,
        est_nodes: nodes,
        est_rows: rows,
    }
}

/// Greedy enumeration: at each step take the unprocessed atom with the
/// smallest expected match count under the bindings accumulated so far.
/// This is the static-planning analogue of the engine's dynamic
/// most-constrained heuristic, minus its bound-count-first tie-break —
/// selectivity alone decides, which is what lets a selective unbound atom
/// run before a bound-but-fanning one.
pub fn plan_greedy(stats: &StatsCatalog, atoms: &[Atom], bound0: &BTreeSet<Var>) -> NodeOrder {
    let n = atoms.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound = bound0.clone();
    for _ in 0..n {
        let next = (0..n)
            .filter(|&i| !used[i])
            .min_by(|&a, &b| {
                let ea = est_matches(stats, &atoms[a], &bound);
                let eb = est_matches(stats, &atoms[b], &bound);
                ea.total_cmp(&eb)
            })
            .expect("an unused atom remains");
        used[next] = true;
        bound.extend(atoms[next].vars());
        order.push(next);
    }
    finish(stats, atoms, bound0, order, Strategy::Greedy)
}

/// How many DP states to process between cancel-token polls.
const POLL_STRIDE: usize = 64;

/// Left-deep dynamic programming (Held–Karp over atom subsets): for every
/// subset `S` the cheapest order ending anywhere, extended one atom at a
/// time. The cost recurrence mirrors the engine exactly: appending atom
/// `a` to a prefix with `rows(S)` partial mappings adds `rows(S)` search
/// nodes and multiplies the frontier by `est_matches(a, vars(S))` — the
/// `(cost, rows)` of a subset depend on the *set* alone, not the order
/// within it, which is the Markov property the DP needs.
///
/// Falls back to [`plan_greedy`] above [`MAX_DP_ATOMS`]. Polls `token`
/// every [`POLL_STRIDE`] subsets.
pub fn plan_dp(
    stats: &StatsCatalog,
    atoms: &[Atom],
    bound0: &BTreeSet<Var>,
    token: &CancelToken,
) -> Result<NodeOrder, Cancelled> {
    let n = atoms.len();
    if n > MAX_DP_ATOMS {
        return Ok(plan_greedy(stats, atoms, bound0));
    }
    token.check()?;
    if n == 0 {
        return Ok(finish(stats, atoms, bound0, Vec::new(), Strategy::Dp));
    }
    #[derive(Clone, Copy)]
    struct State {
        nodes: f64,
        rows: f64,
        last: u8,
    }
    let full = 1usize << n;
    let mut best: Vec<Option<State>> = vec![None; full];
    best[0] = Some(State {
        nodes: 0.0,
        rows: 1.0,
        last: u8::MAX,
    });
    for s in 0..full {
        if s % POLL_STRIDE == 0 {
            token.check()?;
        }
        let Some(cur) = best[s] else { continue };
        // Variables bound after processing subset `s`.
        let mut bound = bound0.clone();
        for (i, atom) in atoms.iter().enumerate() {
            if s & (1 << i) != 0 {
                bound.extend(atom.vars());
            }
        }
        for (i, atom) in atoms.iter().enumerate() {
            if s & (1 << i) != 0 {
                continue;
            }
            let t = s | (1 << i);
            let nodes = cur.nodes + cur.rows;
            let rows = cur.rows * est_matches(stats, atom, &bound);
            let better = match &best[t] {
                None => true,
                Some(old) => (nodes, rows) < (old.nodes, old.rows),
            };
            if better {
                best[t] = Some(State {
                    nodes,
                    rows,
                    last: i as u8,
                });
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut s = full - 1;
    while s != 0 {
        let st = best[s].expect("every reachable subset has a state");
        order.push(st.last as usize);
        s &= !(1 << st.last);
    }
    order.reverse();
    Ok(finish(stats, atoms, bound0, order, Strategy::Dp))
}

/// A bushy join tree over atom indices, linearized left-to-right.
#[derive(Clone)]
enum Tree {
    Leaf(usize),
    Join(Box<Tree>, Box<Tree>),
}

impl Tree {
    fn leaves(&self, out: &mut Vec<usize>) {
        match self {
            Tree::Leaf(i) => out.push(*i),
            Tree::Join(l, r) => {
                l.leaves(out);
                r.leaves(out);
            }
        }
    }
}

/// Bushy dynamic programming: the cheapest join *tree* per atom subset,
/// combining every partition of a subset into two non-empty halves with
/// `cost(S) = cost(L) + cost(R) + rows(L)·rows(R)·sel(L,R)`, where the
/// selectivity is `Π 1/|dom(v)|` over the join variables shared between
/// the halves. The winning tree is linearized (cheaper subtree first) into
/// a static order and re-costed with [`order_cost`], so bushy's final
/// estimate is comparable with the other strategies' — the engine executes
/// one atom at a time regardless of the shape that found the order.
///
/// Falls back to [`plan_greedy`] above [`MAX_BUSHY_ATOMS`]. Polls `token`
/// every [`POLL_STRIDE`] subsets.
pub fn plan_bushy(
    stats: &StatsCatalog,
    atoms: &[Atom],
    bound0: &BTreeSet<Var>,
    token: &CancelToken,
) -> Result<NodeOrder, Cancelled> {
    let n = atoms.len();
    if n > MAX_BUSHY_ATOMS {
        return Ok(plan_greedy(stats, atoms, bound0));
    }
    token.check()?;
    if n == 0 {
        return Ok(finish(stats, atoms, bound0, Vec::new(), Strategy::Bushy));
    }
    struct State {
        cost: f64,
        rows: f64,
        tree: Tree,
    }
    let full = 1usize << n;
    let mut best: Vec<Option<State>> = (0..full).map(|_| None).collect();
    for (i, atom) in atoms.iter().enumerate() {
        let rows = est_matches(stats, atom, bound0);
        best[1 << i] = Some(State {
            cost: rows,
            rows,
            tree: Tree::Leaf(i),
        });
    }
    // Free (not ancestor-bound) variables per atom and per subset; join
    // selectivity only applies to variables genuinely joined here.
    let vars_of: Vec<BTreeSet<Var>> = atoms
        .iter()
        .map(|a| a.var_set().difference(bound0).copied().collect())
        .collect();
    let subset_vars = |s: usize| -> BTreeSet<Var> {
        (0..n)
            .filter(|i| s & (1 << i) != 0)
            .flat_map(|i| vars_of[i].iter().copied())
            .collect()
    };
    for s in 1..full {
        if s % POLL_STRIDE == 0 {
            token.check()?;
        }
        if s.count_ones() < 2 {
            continue;
        }
        // Enumerate unordered partitions of `s` into two non-empty halves
        // (the `l < r` filter visits each pair once).
        let mut l = (s - 1) & s;
        while l != 0 {
            let r = s & !l;
            if l < r {
                let candidate = match (&best[l], &best[r]) {
                    (Some(ls), Some(rs)) => {
                        let l_vars = subset_vars(l);
                        let r_vars = subset_vars(r);
                        let sel: f64 = l_vars
                            .intersection(&r_vars)
                            .map(|&v| 1.0 / var_domain(stats, atoms, v).unwrap_or(1).max(1) as f64)
                            .product();
                        let rows = ls.rows * rs.rows * sel;
                        let cost = ls.cost + rs.cost + rows;
                        // Cheaper-to-produce side first: the linearized
                        // order executes left before right.
                        let (first, second) = if ls.cost <= rs.cost { (l, r) } else { (r, l) };
                        Some((cost, rows, first, second))
                    }
                    _ => None,
                };
                if let Some((cost, rows, first, second)) = candidate {
                    let better = match &best[s] {
                        None => true,
                        Some(old) => cost < old.cost,
                    };
                    if better {
                        let lt = best[first].as_ref().expect("half has a state").tree.clone();
                        let rt = best[second]
                            .as_ref()
                            .expect("half has a state")
                            .tree
                            .clone();
                        best[s] = Some(State {
                            cost,
                            rows,
                            tree: Tree::Join(Box::new(lt), Box::new(rt)),
                        });
                    }
                }
            }
            l = (l - 1) & s;
        }
    }
    let mut order = Vec::with_capacity(n);
    best[full - 1]
        .as_ref()
        .expect("the full subset is always joinable")
        .tree
        .leaves(&mut order);
    Ok(finish(stats, atoms, bound0, order, Strategy::Bushy))
}

/// Plans one wdPT node under `strategy`: the node's `atoms` with the
/// ancestor variables `bound0` treated as already bound. `Auto` runs every
/// enumerator whose gate admits the node and keeps the cheapest order
/// (ties favor the cheaper enumerator).
pub fn plan_node(
    stats: &StatsCatalog,
    atoms: &[Atom],
    bound0: &BTreeSet<Var>,
    strategy: Strategy,
    token: &CancelToken,
) -> Result<NodeOrder, Cancelled> {
    let _span = wdpt_obs::span!("plan.enumerate");
    match strategy {
        Strategy::Greedy => Ok(plan_greedy(stats, atoms, bound0)),
        Strategy::Dp => plan_dp(stats, atoms, bound0, token),
        Strategy::Bushy => plan_bushy(stats, atoms, bound0, token),
        Strategy::Auto => {
            let mut best = plan_greedy(stats, atoms, bound0);
            if atoms.len() <= MAX_DP_ATOMS {
                let dp = plan_dp(stats, atoms, bound0, token)?;
                if dp.est_nodes < best.est_nodes {
                    best = dp;
                }
            }
            if atoms.len() <= MAX_BUSHY_ATOMS {
                let bushy = plan_bushy(stats, atoms, bound0, token)?;
                if bushy.est_nodes < best.est_nodes {
                    best = bushy;
                }
            }
            Ok(best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_model::parse::{parse_atoms, parse_database};
    use wdpt_model::{Database, Interner};

    /// A skewed fixture where greedy's step-by-step choice is beaten by
    /// the DPs' global view: `small` (few rows) fans out hugely through
    /// `fan`, while starting from `filter` keeps the frontier at 1.
    fn skewed(i: &mut Interner) -> Database {
        let mut spec = String::new();
        for j in 0..4 {
            spec.push_str(&format!("small(s{j}) "));
        }
        for j in 0..4 {
            for k in 0..64 {
                spec.push_str(&format!("fan(s{j},y{k}) "));
            }
        }
        spec.push_str("filter(y0) ");
        parse_database(i, &spec).unwrap()
    }

    #[test]
    fn all_strategies_return_permutations() {
        let mut i = Interner::new();
        let db = skewed(&mut i);
        let stats = StatsCatalog::build(&db);
        let atoms = parse_atoms(&mut i, "small(?x), fan(?x,?y), filter(?y)").unwrap();
        let b0 = BTreeSet::new();
        let token = CancelToken::new();
        for no in [
            plan_greedy(&stats, &atoms, &b0),
            plan_dp(&stats, &atoms, &b0, &token).unwrap(),
            plan_bushy(&stats, &atoms, &b0, &token).unwrap(),
            plan_node(&stats, &atoms, &b0, Strategy::Auto, &token).unwrap(),
        ] {
            let mut sorted = no.order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "{no:?}");
            assert!(no.est_nodes >= 1.0);
        }
    }

    #[test]
    fn dp_finds_the_optimal_left_deep_order() {
        let mut i = Interner::new();
        let db = skewed(&mut i);
        let stats = StatsCatalog::build(&db);
        let atoms = parse_atoms(&mut i, "small(?x), fan(?x,?y), filter(?y)").unwrap();
        let b0 = BTreeSet::new();
        let token = CancelToken::new();
        let dp = plan_dp(&stats, &atoms, &b0, &token).unwrap();
        // filter (1 expected row) must lead; the two completions tie.
        assert_eq!(dp.order[0], 2);
        let greedy = plan_greedy(&stats, &atoms, &b0);
        assert!(dp.est_nodes <= greedy.est_nodes);
        // DP is exhaustive over left-deep orders: nothing beats it.
        let perms = [
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        for p in perms {
            assert!(
                dp.est_nodes <= order_cost(&stats, &atoms, &p, &b0).nodes + 1e-9,
                "order {p:?} beats DP"
            );
        }
    }

    #[test]
    fn bushy_matches_dp_on_chain_queries_and_is_valid() {
        let mut i = Interner::new();
        let db = skewed(&mut i);
        let stats = StatsCatalog::build(&db);
        let atoms = parse_atoms(&mut i, "small(?x), fan(?x,?y), filter(?y)").unwrap();
        let b0 = BTreeSet::new();
        let token = CancelToken::new();
        let bushy = plan_bushy(&stats, &atoms, &b0, &token).unwrap();
        let dp = plan_dp(&stats, &atoms, &b0, &token).unwrap();
        // On a 3-atom chain every bushy tree is left-deep, so the costs
        // agree once linearized.
        assert!((bushy.est_nodes - dp.est_nodes).abs() < 1e-6);
    }

    #[test]
    fn ancestor_bound_vars_change_the_order() {
        let mut i = Interner::new();
        let db = skewed(&mut i);
        let stats = StatsCatalog::build(&db);
        let atoms = parse_atoms(&mut i, "fan(?x,?y), small(?x)").unwrap();
        let token = CancelToken::new();
        // Unbound: small (4 rows) before fan.
        let free = plan_dp(&stats, &atoms, &BTreeSet::new(), &token).unwrap();
        assert_eq!(free.order, vec![1, 0]);
        // With ?y inherited from an ancestor, fan is bound to ~4 rows and
        // its x binding makes small a containment check — fan first wins.
        let bound: BTreeSet<_> = [i.var("y")].into();
        let anchored = plan_dp(&stats, &atoms, &bound, &token).unwrap();
        assert_eq!(anchored.order, vec![0, 1]);
    }

    #[test]
    fn cancelled_token_aborts_dp_and_bushy() {
        let mut i = Interner::new();
        let db = skewed(&mut i);
        let stats = StatsCatalog::build(&db);
        // Enough atoms that the subset loops actually run.
        let atoms = parse_atoms(
            &mut i,
            "fan(?a,?b), fan(?b,?c), fan(?c,?d), fan(?d,?e), fan(?e,?f), fan(?f,?g)",
        )
        .unwrap();
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            plan_dp(&stats, &atoms, &BTreeSet::new(), &token),
            Err(Cancelled)
        );
        assert_eq!(
            plan_bushy(&stats, &atoms, &BTreeSet::new(), &token),
            Err(Cancelled)
        );
        assert_eq!(
            plan_node(&stats, &atoms, &BTreeSet::new(), Strategy::Auto, &token),
            Err(Cancelled)
        );
    }

    #[test]
    fn oversized_nodes_fall_back_to_greedy() {
        let mut i = Interner::new();
        let db = skewed(&mut i);
        let stats = StatsCatalog::build(&db);
        let spec: Vec<String> = (0..MAX_DP_ATOMS + 1)
            .map(|j| format!("fan(?v{j},?v{})", j + 1))
            .collect();
        let atoms = parse_atoms(&mut i, &spec.join(", ")).unwrap();
        let token = CancelToken::new();
        let dp = plan_dp(&stats, &atoms, &BTreeSet::new(), &token).unwrap();
        assert_eq!(dp.chosen, Strategy::Greedy);
        let bushy = plan_bushy(&stats, &atoms, &BTreeSet::new(), &token).unwrap();
        assert_eq!(bushy.chosen, Strategy::Greedy);
    }

    #[test]
    fn strategy_parse_rotate_roundtrip() {
        for s in [
            Strategy::Auto,
            Strategy::Greedy,
            Strategy::Dp,
            Strategy::Bushy,
        ] {
            assert_eq!(Strategy::parse(s.as_str()), Some(s));
        }
        assert_eq!(Strategy::parse("nope"), None);
        // The rotation cycles through every concrete strategy.
        let mut s = Strategy::Greedy;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            seen.insert(s);
            s = s.rotate();
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(s, Strategy::Greedy);
    }
}
