//! The cardinality-statistics catalog: per-relation and per-column counts
//! the cost model estimates with.
//!
//! A [`StatsCatalog`] is a pure summary of one [`Database`] version: row
//! counts, per-column distinct counts, and a log₂ posting-length sketch per
//! column. It is built in one pass over the relations at load/reload/delta
//! time and is immutable afterwards — the serving layer pairs each
//! `Arc<Database>` with the `Arc<StatsCatalog>` built from it and swaps
//! both together, so a plan can never mix estimates from one data version
//! with execution against another.
//!
//! Every catalog carries a process-unique **epoch**. Cached plans remember
//! the epoch they were costed under; a lookup that observes a newer epoch
//! knows its orderings were chosen for stale statistics and re-plans.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use wdpt_model::{Const, Database, Pred, Relation};

/// Buckets of the posting-length sketch: bucket `b` counts the distinct
/// column values whose posting list has length in `[2^b, 2^{b+1})`.
pub const SKETCH_BUCKETS: usize = 32;

/// Per-column statistics of one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Distinct values in the column.
    pub distinct: u64,
    /// Longest posting list (occurrences of the most frequent value).
    pub max_posting: u64,
    /// Log₂ histogram of posting-list lengths over the distinct values.
    pub sketch: [u32; SKETCH_BUCKETS],
}

impl ColumnStats {
    /// Mean posting-list length: `rows / distinct`. Exact when every value
    /// occurs equally often; an underestimate for hot values under skew
    /// (bounded above by [`ColumnStats::max_posting`]).
    pub fn mean_posting(&self, rows: u64) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            rows as f64 / self.distinct as f64
        }
    }

    /// Ratio of the heaviest posting list to the mean — the column's skew
    /// factor. `1.0` on uniform columns.
    pub fn skew(&self, rows: u64) -> f64 {
        let mean = self.mean_posting(rows);
        if mean <= 0.0 {
            1.0
        } else {
            self.max_posting as f64 / mean
        }
    }
}

/// Statistics of one relation: its row count and one [`ColumnStats`] per
/// column.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStats {
    /// Tuples in the relation.
    pub rows: u64,
    /// Per-column stats, indexed by column position.
    pub columns: Vec<ColumnStats>,
}

fn column_stats(rel: &Relation, col: usize) -> ColumnStats {
    let mut sketch = [0u32; SKETCH_BUCKETS];
    let mut max_posting = 0u64;
    let mut distinct = 0u64;
    let mut tally = |n: u64| {
        distinct += 1;
        max_posting = max_posting.max(n);
        let b = (64 - n.max(1).leading_zeros() as usize - 1).min(SKETCH_BUCKETS - 1);
        sketch[b] += 1;
    };
    // Posting-list lengths are exactly what the sketch summarizes, and the
    // relation can stream them without materializing anything: a built hash
    // index iterates its lists, and a lazy columnar relation walks the
    // serialized key directory in place. Only a plain owned relation with
    // no index yet falls back to a hash-count over the tuples — never force
    // an index build or a column decode just for statistics.
    if !rel.scan_posting_lens(col, |_, n| tally(u64::from(n))) {
        let mut counts: HashMap<Const, u64> = HashMap::new();
        for t in rel.tuples() {
            *counts.entry(t[col]).or_insert(0) += 1;
        }
        counts.into_values().for_each(tally);
    }
    ColumnStats {
        distinct,
        max_posting,
        sketch,
    }
}

/// Process-wide epoch source; every built catalog gets the next value.
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// An immutable statistics snapshot of one database version.
#[derive(Debug)]
pub struct StatsCatalog {
    epoch: u64,
    relations: HashMap<Pred, RelationStats>,
}

impl StatsCatalog {
    /// Builds the catalog in one pass over `db`'s relations. Cost is
    /// `O(size(db))` — a hash-count per column — and is paid once per
    /// load/reload/delta-apply, off the query path.
    pub fn build(db: &Database) -> StatsCatalog {
        let _span = wdpt_obs::span!("plan.stats.build");
        let relations = db
            .relations()
            .map(|(pred, rel)| {
                let columns = (0..rel.arity()).map(|c| column_stats(rel, c)).collect();
                (
                    pred,
                    RelationStats {
                        rows: rel.len() as u64,
                        columns,
                    },
                )
            })
            .collect();
        StatsCatalog {
            epoch: EPOCH.fetch_add(1, Relaxed) + 1,
            relations,
        }
    }

    /// An empty catalog (no relations) with a fresh epoch; estimates all
    /// come out zero. Useful as a placeholder where no database exists.
    pub fn empty() -> StatsCatalog {
        StatsCatalog {
            epoch: EPOCH.fetch_add(1, Relaxed) + 1,
            relations: HashMap::new(),
        }
    }

    /// The process-unique epoch this catalog was built at. Strictly
    /// monotone across builds, so `plan_epoch != catalog.epoch()` detects
    /// staleness in either direction.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stats for `pred`, if the relation exists.
    pub fn relation(&self, pred: Pred) -> Option<&RelationStats> {
        self.relations.get(&pred)
    }

    /// Number of relations summarized.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff no relation is summarized.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_model::parse::parse_database;
    use wdpt_model::Interner;

    #[test]
    fn counts_rows_distinct_and_max_posting() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(a,x) e(a,y) e(a,z) e(b,x)").unwrap();
        let cat = StatsCatalog::build(&db);
        let rs = cat.relation(i.pred("e")).unwrap();
        assert_eq!(rs.rows, 4);
        assert_eq!(rs.columns[0].distinct, 2); // a, b
        assert_eq!(rs.columns[0].max_posting, 3); // a occurs 3×
        assert_eq!(rs.columns[1].distinct, 3); // x, y, z
        assert_eq!(rs.columns[1].max_posting, 2); // x occurs 2×
        assert!((rs.columns[0].mean_posting(rs.rows) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sketch_buckets_by_log2_posting_length() {
        let mut i = Interner::new();
        // Column 0: one value with 4 postings (bucket 2), two with 1
        // (bucket 0).
        let db = parse_database(&mut i, "r(h,1) r(h,2) r(h,3) r(h,4) r(u,5) r(v,6)").unwrap();
        let cat = StatsCatalog::build(&db);
        let c0 = &cat.relation(i.pred("r")).unwrap().columns[0];
        assert_eq!(c0.sketch[0], 2);
        assert_eq!(c0.sketch[2], 1);
        assert!((c0.skew(6) - 2.0).abs() < 1e-9); // max 4 / mean 2
    }

    #[test]
    fn matches_lazily_built_index_when_present() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(a,x) e(a,y) e(b,x)").unwrap();
        let fresh = StatsCatalog::build(&db);
        db.relation(i.pred("e")).unwrap().build_all_indexes();
        let indexed = StatsCatalog::build(&db);
        assert_eq!(
            fresh.relation(i.pred("e")).unwrap(),
            indexed.relation(i.pred("e")).unwrap()
        );
    }

    #[test]
    fn epochs_are_unique_and_monotone() {
        let db = Database::new();
        let a = StatsCatalog::build(&db);
        let b = StatsCatalog::build(&db);
        let c = StatsCatalog::empty();
        assert!(a.epoch() < b.epoch());
        assert!(b.epoch() < c.epoch());
    }
}
