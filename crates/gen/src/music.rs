//! The paper's motivating scenario at scale: a music catalog with optional
//! data.
//!
//! Example 1 queries a database of bands and records where ratings and
//! formation years are only *sometimes* present — the archetypal
//! semistructured workload that CQs handle poorly and WDPTs handle well.
//! [`music_catalog`] generates such a catalog of arbitrary size with
//! controlled optional-field coverage; the benchmark harness sweeps its
//! size for the Table 1 experiments and the examples use it for realistic
//! demonstrations.

use crate::db::rng;
use wdpt_model::{Database, Interner};

/// Shape parameters for the generated catalog.
#[derive(Debug, Clone, Copy)]
pub struct MusicParams {
    /// Number of bands.
    pub bands: usize,
    /// Records per band.
    pub records_per_band: usize,
    /// Probability that a record has an `nme_rating` triple.
    pub rating_probability: f64,
    /// Probability that a band has a `formed_in` triple.
    pub formed_in_probability: f64,
    /// Fraction of records published after 2010.
    pub recent_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MusicParams {
    fn default() -> Self {
        MusicParams {
            bands: 50,
            records_per_band: 4,
            rating_probability: 0.5,
            formed_in_probability: 0.5,
            recent_fraction: 0.7,
            seed: 0xCAFE,
        }
    }
}

/// Generates the catalog as a relational database over the binary schema of
/// Example 8: `rec_by(record, band)`, `publ(record, era)`,
/// `nme_rating(record, rating)`, `formed_in(band, year)`.
pub fn music_catalog(interner: &mut Interner, params: MusicParams) -> Database {
    let mut r = rng(params.seed);
    let rec_by = interner.pred("rec_by");
    let publ = interner.pred("publ");
    let nme = interner.pred("nme_rating");
    let formed = interner.pred("formed_in");
    let after = interner.constant("after_2010");
    let before = interner.constant("before_2010");
    let mut db = Database::new();
    for b in 0..params.bands {
        let band = interner.constant(&format!("band{b}"));
        if r.gen_bool(params.formed_in_probability) {
            let year = interner.constant(&format!("{}", 1960 + r.gen_range(0..60)));
            db.insert(formed, vec![band, year]);
        }
        for t in 0..params.records_per_band {
            let record = interner.constant(&format!("record{b}_{t}"));
            db.insert(rec_by, vec![record, band]);
            let era = if r.gen_bool(params.recent_fraction) {
                after
            } else {
                before
            };
            db.insert(publ, vec![record, era]);
            if r.gen_bool(params.rating_probability) {
                let rating = interner.constant(&format!("{}", 1 + r.gen_range(0..10)));
                db.insert(nme, vec![record, rating]);
            }
        }
    }
    db
}

/// The same catalog rendered as an RDF triple store over the reserved
/// `triple(subject, predicate, object)` relation — the schema that
/// `wdpt-sparql` queries compile to, and the default dataset `wdpt-serve`
/// loads with `--gen-music`. Predicate names of the binary schema become
/// predicate *constants* here: `rec_by(r, b)` ⇒ `triple(r, rec_by, b)`.
/// Same seed ⇒ the same catalog as [`music_catalog`], fact for fact.
pub fn music_triples(interner: &mut Interner, params: MusicParams) -> wdpt_sparql::TripleStore {
    let mut r = rng(params.seed);
    let mut ts = wdpt_sparql::TripleStore::new();
    for b in 0..params.bands {
        let band = format!("band{b}");
        if r.gen_bool(params.formed_in_probability) {
            let year = format!("{}", 1960 + r.gen_range(0..60));
            ts.insert_str(interner, &band, "formed_in", &year);
        }
        for t in 0..params.records_per_band {
            let record = format!("record{b}_{t}");
            ts.insert_str(interner, &record, "rec_by", &band);
            let era = if r.gen_bool(params.recent_fraction) {
                "after_2010"
            } else {
                "before_2010"
            };
            ts.insert_str(interner, &record, "publ", era);
            if r.gen_bool(params.rating_probability) {
                let rating = format!("{}", 1 + r.gen_range(0..10));
                ts.insert_str(interner, &record, "nme_rating", &rating);
            }
        }
    }
    ts
}

/// The Figure 1 WDPT over the binary music schema (Example 8 rendering),
/// with all four variables free.
pub fn figure1_wdpt(interner: &mut Interner) -> wdpt_core::Wdpt {
    use wdpt_model::Atom;
    let rec_by = interner.pred("rec_by");
    let publ = interner.pred("publ");
    let nme = interner.pred("nme_rating");
    let formed = interner.pred("formed_in");
    let after = interner.constant("after_2010");
    let (x, y, z, z2) = (
        interner.var("x"),
        interner.var("y"),
        interner.var("z"),
        interner.var("z2"),
    );
    let mut b = wdpt_core::WdptBuilder::new(vec![
        Atom::new(rec_by, vec![x.into(), y.into()]),
        Atom::new(publ, vec![x.into(), after.into()]),
    ]);
    b.child(0, vec![Atom::new(nme, vec![x.into(), z.into()])]);
    b.child(0, vec![Atom::new(formed, vec![y.into(), z2.into()])]);
    b.build(vec![x, y, z, z2])
        .expect("Figure 1 is well-designed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_core::{evaluate, Engine};

    #[test]
    fn catalog_size_matches_params() {
        let mut i = Interner::new();
        let db = music_catalog(
            &mut i,
            MusicParams {
                bands: 10,
                records_per_band: 3,
                rating_probability: 1.0,
                formed_in_probability: 1.0,
                recent_fraction: 1.0,
                seed: 1,
            },
        );
        // 10 formed_in + 30 rec_by + 30 publ + 30 ratings.
        assert_eq!(db.size(), 100);
    }

    #[test]
    fn figure1_query_over_catalog() {
        let mut i = Interner::new();
        let db = music_catalog(
            &mut i,
            MusicParams {
                bands: 8,
                records_per_band: 2,
                rating_probability: 0.5,
                formed_in_probability: 0.5,
                recent_fraction: 1.0,
                seed: 3,
            },
        );
        let p = figure1_wdpt(&mut i);
        let answers = evaluate(&p, &db);
        // Every record is recent, so one answer per record.
        assert_eq!(answers.len(), 16);
        // Answers where the optional parts matched have larger domains.
        assert!(answers.iter().any(|m| m.len() > 2));
        assert!(answers.iter().any(|m| m.len() == 4) || answers.iter().any(|m| m.len() >= 2));
        // Cross-check a few answers with the tractable decision procedure.
        for h in answers.iter().take(5) {
            assert!(wdpt_core::eval_bounded_interface(&p, &db, h, Engine::Tw(1)));
        }
    }

    #[test]
    fn triple_catalog_matches_binary_catalog() {
        let mut i = Interner::new();
        let params = MusicParams {
            bands: 8,
            records_per_band: 2,
            ..Default::default()
        };
        let db = music_catalog(&mut i, params);
        let ts = music_triples(&mut i, params);
        // Fact for fact: each binary fact corresponds to one triple.
        assert_eq!(db.size(), ts.len());
        // The Figure 1 query in SPARQL form over the triple store yields
        // exactly the relational WDPT's answers over the binary catalog.
        let p_rel = figure1_wdpt(&mut i);
        let rel_answers = evaluate(&p_rel, &db);
        let q = wdpt_sparql::parse_query(
            &mut i,
            r#"(((?x, rec_by, ?y) AND (?x, publ, "after_2010"))
                 OPT (?x, nme_rating, ?z)) OPT (?y, formed_in, ?z2)"#,
        )
        .unwrap();
        let sparql_answers = q.evaluate(&ts, &mut i).unwrap();
        assert_eq!(sparql_answers, rel_answers);
    }

    #[test]
    fn optional_fields_are_really_optional() {
        let mut i = Interner::new();
        let db = music_catalog(
            &mut i,
            MusicParams {
                bands: 20,
                records_per_band: 1,
                rating_probability: 0.0,
                formed_in_probability: 0.0,
                recent_fraction: 1.0,
                seed: 9,
            },
        );
        let p = figure1_wdpt(&mut i);
        let answers = evaluate(&p, &db);
        assert_eq!(answers.len(), 20);
        assert!(answers.iter().all(|m| m.len() == 2));
    }
}
