//! A tiny deterministic PRNG, std-only.
//!
//! Every generator in this crate (and the differential tests at the
//! workspace root) must be reproducible from a seed without external
//! dependencies. [`Lcg`] is the 64-bit linear congruential generator with
//! Knuth's MMIX constants that the `crates/core` tests already use inline;
//! the high 32 bits of each step feed the public methods, which mirror the
//! small slice of the `rand::Rng` API the workload generators need.

/// Deterministic 64-bit linear congruential generator.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Seeds the generator. Two `Lcg`s with equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        // Scramble the seed once so small seeds (0, 1, 2, …) do not start
        // with strongly correlated low-entropy states.
        let mut rng = Lcg {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        rng.step();
        rng
    }

    fn step(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }

    /// The next 64 pseudo-random bits (two LCG steps; the low half of a
    /// single step is too regular to expose).
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.step() >> 32;
        let lo = self.step() >> 32;
        (hi << 32) | lo
    }

    /// A uniform `usize` (the full 64-bit range on 64-bit targets).
    pub fn gen_usize(&mut self) -> usize {
        self.next_u64() as usize
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 bits of mantissa: uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Lcg::new(1);
        let mut b = Lcg::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = Lcg::new(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.gen_range(2..7);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut r = Lcg::new(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((350..=650).contains(&heads), "heads = {heads}");
    }
}
