//! Streaming synthetic N-Triples for ingest benchmarks.
//!
//! The music generator materializes its catalog as an in-memory
//! [`wdpt_model::Database`] before serialization, which caps it far below
//! the 100M-triple catalogs the bulk loader targets. This generator instead
//! streams triples straight to any `io::Write` — memory stays constant no
//! matter the size — and is deterministic for a given [`SynthParams`], so
//! CI can regenerate identical inputs when diffing snapshots across
//! `--threads` settings.
//!
//! The symbol universe is sized relative to the triple count (see
//! [`SynthParams::sized`]): enough distinct subjects and objects that the
//! interner and posting indexes do real work, with Zipf-free uniform reuse
//! so duplicate *symbols* are common but duplicate *triples* stay rare.

use crate::rng::Lcg;
use std::io::{self, Write};

/// Shape parameters for the synthetic stream.
#[derive(Debug, Clone, Copy)]
pub struct SynthParams {
    /// Triples to emit.
    pub triples: u64,
    /// Distinct subject IRIs drawn uniformly.
    pub subjects: u64,
    /// Distinct predicate IRIs drawn uniformly.
    pub preds: u64,
    /// Distinct object IRIs drawn uniformly.
    pub objects: u64,
    /// RNG seed.
    pub seed: u64,
    /// Skew knob for the planner benchmarks, in tenths: 0 keeps the draw
    /// uniform; at `skew = k`, `k/10` of the triples re-aim their
    /// *predicate* at `p0` (subject and object stay uniform, so the
    /// triples stay distinct), producing the heavy-hitter posting list
    /// whose cost the statistics catalog must see.
    pub skew: u64,
}

impl SynthParams {
    /// A universe scaled for ingest benchmarks: one distinct subject per 8
    /// triples, one distinct object per 16, and 64 predicates — at 100M
    /// triples that is ~19M distinct symbols, which is what stresses the
    /// interning pipeline rather than raw text throughput.
    pub fn sized(triples: u64) -> SynthParams {
        SynthParams {
            triples,
            subjects: (triples / 8).max(1),
            preds: 64.min(triples.max(1)),
            objects: (triples / 16).max(1),
            seed: 0xCAFE,
            skew: 0,
        }
    }

    /// `sized`, with `skew` tenths of the stream collapsed onto the
    /// heavy-hitter symbols (clamped to 10 = everything).
    pub fn sized_skewed(triples: u64, skew: u64) -> SynthParams {
        SynthParams {
            skew: skew.min(10),
            ..SynthParams::sized(triples)
        }
    }
}

/// Streams `params.triples` synthetic triples to `w` as lenient N-Triples,
/// returning the number written. Output is a pure function of `params`.
pub fn write_synth_nt<W: Write>(w: &mut W, params: SynthParams) -> io::Result<u64> {
    let mut r = Lcg::new(params.seed);
    let subjects = params.subjects.max(1) as usize;
    let preds = params.preds.max(1) as usize;
    let objects = params.objects.max(1) as usize;
    let mut line = String::with_capacity(64);
    let skew = params.skew.min(10);
    for _ in 0..params.triples {
        let s = r.gen_range(0..subjects);
        let mut p = r.gen_range(0..preds);
        let o = r.gen_range(0..objects);
        // Heavy-hitter re-aim: `skew` tenths of the stream collapse the
        // predicate onto <p0>, so its posting list dominates while the
        // subject/object marginals — and triple distinctness — stay
        // uniform (collapsing all three components would dedup away).
        if skew > 0 && r.gen_range(0..10) < skew as usize {
            p = 0;
        }
        line.clear();
        use std::fmt::Write as _;
        let _ = writeln!(line, "<s{s}> <p{p}> <o{o}> .");
        w.write_all(line.as_bytes())?;
    }
    Ok(params.triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(params: SynthParams) -> Vec<u8> {
        let mut out = Vec::new();
        write_synth_nt(&mut out, params).unwrap();
        out
    }

    #[test]
    fn output_is_deterministic_and_line_counted() {
        let p = SynthParams::sized(1000);
        let a = generate(p);
        let b = generate(p);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&c| c == b'\n').count(), 1000);
    }

    #[test]
    fn seed_changes_the_stream() {
        let p = SynthParams::sized(100);
        let q = SynthParams { seed: 1, ..p };
        assert_ne!(generate(p), generate(q));
    }

    #[test]
    fn lines_are_well_formed_triples() {
        let text = String::from_utf8(generate(SynthParams::sized(50))).unwrap();
        for line in text.lines() {
            let toks: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(toks.len(), 4, "bad line {line:?}");
            assert!(toks[0].starts_with("<s") && toks[0].ends_with('>'));
            assert!(toks[1].starts_with("<p") && toks[1].ends_with('>'));
            assert!(toks[2].starts_with("<o") && toks[2].ends_with('>'));
            assert_eq!(toks[3], ".");
        }
    }

    /// The skew knob must concentrate predicate mass on <p0> roughly in
    /// proportion to `skew`/10 — while keeping the triples themselves
    /// near-distinct — and skew 0 must reproduce the old uniform stream
    /// byte-for-byte.
    #[test]
    fn skew_concentrates_the_predicate_on_heavy_hitters() {
        let uniform = SynthParams::sized(2000);
        assert_eq!(
            generate(uniform),
            generate(SynthParams::sized_skewed(2000, 0))
        );
        let text = String::from_utf8(generate(SynthParams::sized_skewed(2000, 8))).unwrap();
        let hot = text
            .lines()
            .filter(|l| l.split_whitespace().nth(1) == Some("<p0>"))
            .count();
        assert_eq!(text.lines().count(), 2000);
        // 8/10 of 2000 draws re-aim (plus the uniform draws that land on
        // p0 anyway); a wide band keeps this robust to the LCG.
        assert!(
            (1400..=1900).contains(&hot),
            "expected ~1600 heavy-hitter predicates, got {hot}"
        );
        // Distinctness survives the skew — the dedup the loader applies
        // must not collapse the skewed mass away.
        let distinct: std::collections::BTreeSet<&str> = text.lines().collect();
        assert!(
            distinct.len() > 1500,
            "skewed triples must stay near-distinct, got {}",
            distinct.len()
        );
    }

    #[test]
    fn tiny_universes_are_clamped_not_divided_to_zero() {
        let p = SynthParams::sized(3);
        assert!(p.subjects >= 1 && p.objects >= 1 && p.preds >= 1);
        let out = generate(p);
        assert_eq!(out.iter().filter(|&&c| c == b'\n').count(), 3);
    }
}
