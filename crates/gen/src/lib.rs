//! # wdpt-gen — workload generators and hardness reductions
//!
//! Parameterized instance families for the experiments that regenerate the
//! paper's tables and figures (see `DESIGN.md`, experiments E1–E11):
//!
//! * [`rng`] — the deterministic std-only PRNG every generator seeds from.
//! * [`db`] — random graph databases, path/grid graphs, and deterministic
//!   seeding helpers.
//! * [`trees`] — WDPT families with controlled class membership: chain and
//!   star trees inside `ℓ-TW(k) ∩ BI(c)` (the LogCFL column of Table 1),
//!   wide-interface trees inside `g-TW(k) ∖ BI(c)` (Proposition 2(2)), and
//!   random well-designed trees for differential testing.
//! * [`reductions`] — the Proposition 3 reduction from 3-colorability
//!   (hard instances for EVAL under global tractability) and the Theorem 5
//!   flavored instances showing local tractability alone does not help.
//! * [`music`] — the paper's motivating scenario at scale: an RDF music
//!   catalog with optional ratings and formation years.
//! * [`synth`] — streaming synthetic N-Triples at ingest-benchmark scale
//!   (100M triples without materializing anything in memory).

pub mod db;
pub mod music;
pub mod reductions;
pub mod rng;
pub mod synth;
pub mod trees;

pub use db::{path_graph_db, random_graph_db};
pub use music::{music_catalog, music_triples};
pub use reductions::{three_col_instance, ThreeColInstance};
pub use rng::Lcg;
pub use synth::{write_synth_nt, SynthParams};
pub use trees::{chain_wdpt, random_wdpt, star_wdpt, wide_interface_wdpt};
