//! Hardness reductions from the paper, as reusable instance builders.
//!
//! The central one is Proposition 3: 3-COLORABILITY reduces to
//! EVAL(g-TW(1)). Given an undirected graph `G = (V, E)`:
//!
//! * `D = {c(1,1), c(2,2), c(3,3)}`;
//! * the WDPT's root carries `c(u_i, u_i)` for every vertex plus `c(x, x)`;
//! * for every edge `e_j = {v, w}` and every color `κ ∈ {1,2,3}` a child
//!   carries `c(u_v, κ), c(u_w, κ), c(x_j^κ, x_j^κ)`;
//! * free variables: `x` and all `x_j^κ`; the candidate answer is
//!   `h = {x ↦ 1}`.
//!
//! `h ∈ p(D)` iff some coloring of the `u_i` leaves **every** child
//! non-extendable — i.e. iff `G` is 3-colorable. The instances are in
//! `g-TW(1)` (and `g-HW(1)`), so they realize the NP-hardness of exact
//! evaluation under global tractability, while PARTIAL-EVAL and MAX-EVAL on
//! the same instances stay polynomial (Theorems 8 and 9) — exactly the
//! Table 1 contrast.

use wdpt_core::{Wdpt, WdptBuilder};
use wdpt_model::{Atom, Database, Interner, Mapping, Var};

/// A Proposition 3 instance: the WDPT, the 3-element database, and the
/// candidate mapping `h = {x ↦ 1}`.
#[derive(Debug, Clone)]
pub struct ThreeColInstance {
    /// The reduction WDPT (in `g-TW(1)`).
    pub wdpt: Wdpt,
    /// The fixed database `{c(1,1), c(2,2), c(3,3)}`.
    pub db: Database,
    /// The candidate answer `{x ↦ 1}`.
    pub candidate: Mapping,
}

/// Builds the Proposition 3 instance for graph `(n, edges)` (vertices
/// `0..n`).
pub fn three_col_instance(
    interner: &mut Interner,
    n: usize,
    edges: &[(usize, usize)],
) -> ThreeColInstance {
    let c = interner.pred("c");
    let colors: Vec<_> = (1..=3).map(|k| interner.constant(&k.to_string())).collect();
    let mut db = Database::new();
    for &col in &colors {
        db.insert(c, vec![col, col]);
    }
    let x = interner.var("x");
    let us: Vec<Var> = (0..n).map(|j| interner.var(&format!("u{j}"))).collect();
    let mut root: Vec<Atom> = us
        .iter()
        .map(|&u| Atom::new(c, vec![u.into(), u.into()]))
        .collect();
    root.push(Atom::new(c, vec![x.into(), x.into()]));
    let mut b = WdptBuilder::new(root);
    let mut free = vec![x];
    for (j, &(v, w)) in edges.iter().enumerate() {
        for (kidx, &col) in colors.iter().enumerate() {
            let xjk = interner.var(&format!("x_{j}_{kidx}"));
            b.child(
                0,
                vec![
                    Atom::new(c, vec![us[v].into(), col.into()]),
                    Atom::new(c, vec![us[w].into(), col.into()]),
                    Atom::new(c, vec![xjk.into(), xjk.into()]),
                ],
            );
            free.push(xjk);
        }
    }
    let wdpt = b.build(free).expect("reduction tree is well-designed");
    let candidate = Mapping::from_pairs(vec![(x, colors[0])]);
    ThreeColInstance {
        wdpt,
        db,
        candidate,
    }
}

/// Reference 3-colorability check by brute force (for validating the
/// reduction in tests and experiments).
pub fn is_three_colorable(n: usize, edges: &[(usize, usize)]) -> bool {
    let mut coloring = vec![0u8; n];
    fn rec(i: usize, n: usize, edges: &[(usize, usize)], coloring: &mut [u8]) -> bool {
        if i == n {
            return true;
        }
        for c in 1..=3u8 {
            coloring[i] = c;
            let ok = edges.iter().all(|&(a, b)| {
                a != i && b != i || {
                    let other = if a == i { b } else { a };
                    other >= i || coloring[other] != c
                }
            });
            if ok && rec(i + 1, n, edges, coloring) {
                return true;
            }
        }
        coloring[i] = 0;
        false
    }
    rec(0, n, edges, &mut coloring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_core::{eval_decide, is_globally_in, partial_eval_decide, Engine, WidthKind};

    #[test]
    fn instances_are_globally_tractable() {
        let mut i = Interner::new();
        let inst = three_col_instance(&mut i, 3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(is_globally_in(&inst.wdpt, WidthKind::Tw, 1));
        assert!(is_globally_in(&inst.wdpt, WidthKind::Hw, 1));
    }

    #[test]
    fn reduction_is_correct_on_small_graphs() {
        let cases: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (3, vec![(0, 1), (1, 2), (0, 2)]), // K3: yes
            (4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]), // K4: no
            (4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]), // C4: yes
            (1, vec![]),                       // trivial
        ];
        for (n, edges) in cases {
            let mut i = Interner::new();
            let inst = three_col_instance(&mut i, n, &edges);
            let expected = is_three_colorable(n, &edges);
            assert_eq!(
                eval_decide(&inst.wdpt, &inst.db, &inst.candidate),
                expected,
                "reduction disagreed on n={n}, edges={edges:?}"
            );
        }
    }

    #[test]
    fn partial_eval_is_trivially_yes_on_these_instances() {
        // The Table 1 contrast: the same instance is easy for PARTIAL-EVAL.
        let mut i = Interner::new();
        let inst = three_col_instance(&mut i, 4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!(partial_eval_decide(
            &inst.wdpt,
            &inst.db,
            &inst.candidate,
            Engine::Tw(1)
        ));
        // …even though exact EVAL says no (K4 is not 3-colorable).
        assert!(!eval_decide(&inst.wdpt, &inst.db, &inst.candidate));
    }

    #[test]
    fn brute_force_reference_is_sane() {
        assert!(is_three_colorable(3, &[(0, 1), (1, 2), (0, 2)]));
        assert!(!is_three_colorable(
            4,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        ));
        assert!(is_three_colorable(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]));
    }
}

/// A literal of a ∃X∀Y 3-CNF QBF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QbfLit {
    /// Positive/negative occurrence of the existential variable `x_i`.
    X(usize, bool),
    /// Positive/negative occurrence of the universal variable `y_i`.
    Y(usize, bool),
}

/// A Σ₂ᵖ-hardness instance (Theorem 1): an ∃X∀Y CNF formula reduced to
/// EVAL over a WDPT with projection.
#[derive(Debug, Clone)]
pub struct QbfInstance {
    /// The reduction WDPT.
    pub wdpt: Wdpt,
    /// The fixed Boolean database.
    pub db: Database,
    /// The candidate answer; `h ∈ p(D)` iff the formula is valid.
    pub candidate: Mapping,
}

/// Reduces validity of `∃x_1…x_n ∀Y ⋀_j C_j` to EVAL (the Σ₂ᵖ-complete
/// general case of Theorem 1).
///
/// Construction: the root carries `bool(u_i)` for every existential
/// variable (the database holds `bool(0)`, `bool(1)`) plus a free anchor
/// `anchor(x)`. For every clause `C_j` a child carries `is0(u_i)`/`is1(u_i)`
/// for each X-literal of the clause (the values falsifying it), satisfiable
/// `is0/is1` atoms over fresh existential variables for each Y-literal, and
/// a fresh free variable `x_j`. The child is extendable iff `C_j` can be
/// falsified given the chosen X-assignment; maximality then forces the new
/// free variable `x_j`, destroying the candidate answer `h = {x ↦ a}`.
/// Hence `h ∈ p(D)` iff some X-assignment leaves every clause
/// unfalsifiable — validity of the QBF.
pub fn qbf_instance(interner: &mut Interner, n_x: usize, clauses: &[Vec<QbfLit>]) -> QbfInstance {
    let boolp = interner.pred("bool");
    let is0 = interner.pred("is0");
    let is1 = interner.pred("is1");
    let anchor = interner.pred("anchor");
    let zero = interner.constant("0");
    let one = interner.constant("1");
    let a = interner.constant("a");
    let mut db = Database::new();
    db.insert(boolp, vec![zero]);
    db.insert(boolp, vec![one]);
    db.insert(is0, vec![zero]);
    db.insert(is1, vec![one]);
    db.insert(anchor, vec![a]);

    let x = interner.var("x");
    let us: Vec<Var> = (0..n_x).map(|i| interner.var(&format!("u{i}"))).collect();
    let mut root: Vec<Atom> = us
        .iter()
        .map(|&u| Atom::new(boolp, vec![u.into()]))
        .collect();
    root.push(Atom::new(anchor, vec![x.into()]));
    let mut b = WdptBuilder::new(root);
    let mut free = vec![x];
    for (j, clause) in clauses.iter().enumerate() {
        let mut atoms = Vec::new();
        for lit in clause.iter() {
            match *lit {
                // Positive literal is false when the variable is 0.
                QbfLit::X(i, positive) => {
                    assert!(i < n_x, "X index out of range");
                    let pred = if positive { is0 } else { is1 };
                    atoms.push(Atom::new(pred, vec![us[i].into()]));
                }
                QbfLit::Y(i, positive) => {
                    // The falsifying value for a universal variable can
                    // always be picked, but all occurrences of y_i within
                    // the clause must agree (tautologies like y ∨ ¬y are
                    // never falsifiable): one existential per (clause, y).
                    let w = interner.var(&format!("w_{j}_{i}"));
                    let pred = if positive { is0 } else { is1 };
                    atoms.push(Atom::new(pred, vec![w.into()]));
                }
            }
        }
        let xj = interner.var(&format!("xc{j}"));
        atoms.push(Atom::new(anchor, vec![xj.into()]));
        b.child(0, atoms);
        free.push(xj);
    }
    let wdpt = b.build(free).expect("reduction tree is well-designed");
    let candidate = Mapping::from_pairs(vec![(x, a)]);
    QbfInstance {
        wdpt,
        db,
        candidate,
    }
}

/// Brute-force ∃X∀Y CNF validity check (reference for tests).
pub fn qbf_valid(n_x: usize, n_y: usize, clauses: &[Vec<QbfLit>]) -> bool {
    let eval_clause = |clause: &[QbfLit], sx: u64, sy: u64| -> bool {
        clause.iter().any(|&l| match l {
            QbfLit::X(i, pos) => ((sx >> i) & 1 == 1) == pos,
            QbfLit::Y(i, pos) => ((sy >> i) & 1 == 1) == pos,
        })
    };
    (0..(1u64 << n_x))
        .any(|sx| (0..(1u64 << n_y)).all(|sy| clauses.iter().all(|c| eval_clause(c, sx, sy))))
}

#[cfg(test)]
mod qbf_tests {
    use super::*;
    use wdpt_core::eval_decide;

    #[test]
    fn reduction_matches_brute_force_on_random_formulas() {
        let mut state = 0xfeed_beefu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for case in 0..40 {
            let n_x = 1 + next() % 3;
            let n_y = 1 + next() % 3;
            let n_clauses = 1 + next() % 4;
            let clauses: Vec<Vec<QbfLit>> = (0..n_clauses)
                .map(|_| {
                    (0..(1 + next() % 3))
                        .map(|_| {
                            if next() % 2 == 0 {
                                QbfLit::X(next() % n_x, next() % 2 == 0)
                            } else {
                                QbfLit::Y(next() % n_y, next() % 2 == 0)
                            }
                        })
                        .collect()
                })
                .collect();
            let expected = qbf_valid(n_x, n_y, &clauses);
            let mut i = Interner::new();
            let inst = qbf_instance(&mut i, n_x, &clauses);
            assert_eq!(
                eval_decide(&inst.wdpt, &inst.db, &inst.candidate),
                expected,
                "case {case}: clauses {clauses:?}"
            );
        }
    }

    #[test]
    fn known_valid_and_invalid_formulas() {
        // ∃x ∀y (x ∨ y) ∧ (x ∨ ¬y): valid via x = 1.
        let clauses = vec![
            vec![QbfLit::X(0, true), QbfLit::Y(0, true)],
            vec![QbfLit::X(0, true), QbfLit::Y(0, false)],
        ];
        assert!(qbf_valid(1, 1, &clauses));
        let mut i = Interner::new();
        let inst = qbf_instance(&mut i, 1, &clauses);
        assert!(eval_decide(&inst.wdpt, &inst.db, &inst.candidate));
        // ∃x ∀y (y): invalid (pure-universal clause).
        let clauses = vec![vec![QbfLit::Y(0, true)]];
        assert!(!qbf_valid(1, 1, &clauses));
        let mut i = Interner::new();
        let inst = qbf_instance(&mut i, 1, &clauses);
        assert!(!eval_decide(&inst.wdpt, &inst.db, &inst.candidate));
    }
}
