//! Random and structured databases.

use crate::rng::Lcg;
use wdpt_model::{Const, Database, Interner, Pred};

/// Deterministic RNG from a seed (all generators in this crate are
/// reproducible).
pub fn rng(seed: u64) -> Lcg {
    Lcg::new(seed)
}

/// Interns the constants `c0 … c{n-1}`.
pub fn domain(interner: &mut Interner, n: usize) -> Vec<Const> {
    (0..n)
        .map(|j| interner.constant(&format!("c{j}")))
        .collect()
}

/// A directed path graph `e(c0,c1), …, e(c{n-1},c{n})`.
pub fn path_graph_db(interner: &mut Interner, n: usize) -> (Database, Pred) {
    let e = interner.pred("e");
    let dom = domain(interner, n + 1);
    let mut db = Database::new();
    for w in dom.windows(2) {
        db.insert(e, vec![w[0], w[1]]);
    }
    (db, e)
}

/// A random directed graph over `dom_size` constants with `edges` edges
/// (duplicates collapse), predicate `e/2`.
pub fn random_graph_db(
    interner: &mut Interner,
    dom_size: usize,
    edges: usize,
    seed: u64,
) -> (Database, Pred) {
    let e = interner.pred("e");
    let dom = domain(interner, dom_size);
    let mut r = rng(seed);
    let mut db = Database::new();
    for _ in 0..edges {
        let a = dom[r.gen_range(0..dom.len())];
        let b = dom[r.gen_range(0..dom.len())];
        db.insert(e, vec![a, b]);
    }
    (db, e)
}

/// A random undirected simple graph as an adjacency list, for the
/// 3-colorability reduction. Edge probability `p` (Erdős–Rényi).
pub fn random_undirected_graph(n: usize, p: f64, seed: u64) -> Vec<(usize, usize)> {
    let mut r = rng(seed);
    let mut edges = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            if r.gen_bool(p) {
                edges.push((a, b));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_has_n_edges() {
        let mut i = Interner::new();
        let (db, _) = path_graph_db(&mut i, 5);
        assert_eq!(db.size(), 5);
        assert_eq!(db.active_domain().len(), 6);
    }

    #[test]
    fn random_graph_is_reproducible() {
        let mut i1 = Interner::new();
        let mut i2 = Interner::new();
        let (db1, _) = random_graph_db(&mut i1, 10, 30, 7);
        let (db2, _) = random_graph_db(&mut i2, 10, 30, 7);
        assert_eq!(db1.size(), db2.size());
        assert_eq!(db1.display(&i1), db2.display(&i2));
    }

    #[test]
    fn random_undirected_graph_respects_probability_extremes() {
        assert!(random_undirected_graph(6, 0.0, 1).is_empty());
        assert_eq!(random_undirected_graph(6, 1.0, 1).len(), 15);
    }
}
