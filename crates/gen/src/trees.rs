//! WDPT families with controlled class membership.

use crate::rng::Lcg;
use wdpt_core::{Wdpt, WdptBuilder};
use wdpt_model::{Atom, Interner, Var};

/// A chain-shaped WDPT of `depth` nodes: node `i` carries
/// `e(?y{i-1}, ?y{i})` (the root carries `e(?y0, ?y1)`), every other node
/// optional below the previous one. Free variables: all `?y{i}` — a
/// projection-free tree in `ℓ-TW(1) ∩ BI(1)` and `g-TW(1)`; with
/// `project_prefix < depth+1` only the first variables stay free, giving a
/// tree with projection in the same classes.
pub fn chain_wdpt(interner: &mut Interner, depth: usize, project_prefix: Option<usize>) -> Wdpt {
    assert!(depth >= 1);
    let e = interner.pred("e");
    let ys: Vec<Var> = (0..=depth)
        .map(|j| interner.var(&format!("y{j}")))
        .collect();
    let mut b = WdptBuilder::new(vec![Atom::new(e, vec![ys[0].into(), ys[1].into()])]);
    let mut prev = 0;
    for j in 1..depth {
        prev = b.child(
            prev,
            vec![Atom::new(e, vec![ys[j].into(), ys[j + 1].into()])],
        );
    }
    let free: Vec<Var> = match project_prefix {
        Some(k) => ys.iter().copied().take(k).collect(),
        None => ys.clone(),
    };
    b.build(free).expect("chain is well-designed")
}

/// A star-shaped WDPT: root `a(?x, ?u)` with `branches` children
/// `e(?u, ?z{i})` — each branch optional, all sharing only the existential
/// `?u` with the root. In `ℓ-TW(1) ∩ BI(1)` and `g-TW(1)`. Free variables:
/// `?x` and all `?z{i}`.
pub fn star_wdpt(interner: &mut Interner, branches: usize) -> Wdpt {
    let a = interner.pred("a");
    let e = interner.pred("e");
    let x = interner.var("x");
    let u = interner.var("u");
    let mut b = WdptBuilder::new(vec![Atom::new(a, vec![x.into(), u.into()])]);
    let mut free = vec![x];
    for j in 0..branches {
        let z = interner.var(&format!("z{j}"));
        b.child(0, vec![Atom::new(e, vec![u.into(), z.into()])]);
        free.push(z);
    }
    b.build(free).expect("star is well-designed")
}

/// Proposition 2(2)'s witness family: a two-node tree whose root and child
/// both carry the path `e(?u0,?u1), …, e(?u{n-1},?u{n})` — globally in
/// `TW(1)` yet sharing `n+1` variables across the edge, hence outside every
/// `BI(c)` for `c ≤ n`.
pub fn wide_interface_wdpt(interner: &mut Interner, n: usize) -> Wdpt {
    assert!(n >= 1);
    let e = interner.pred("e");
    let us: Vec<Var> = (0..=n).map(|j| interner.var(&format!("u{j}"))).collect();
    let path: Vec<Atom> = us
        .windows(2)
        .map(|w| Atom::new(e, vec![w[0].into(), w[1].into()]))
        .collect();
    let mut b = WdptBuilder::new(path.clone());
    b.child(0, path);
    b.build(vec![us[0]]).expect("well-designed")
}

/// A random well-designed tree for differential testing: `nodes` nodes,
/// each carrying 1–2 binary atoms over a fresh variable plus one variable
/// inherited from the parent (guaranteeing well-designedness by
/// construction). Roughly half of the variables are free.
pub fn random_wdpt(interner: &mut Interner, nodes: usize, r: &mut Lcg) -> Wdpt {
    assert!(nodes >= 1);
    let e = interner.pred("e");
    let f = interner.pred("f");
    let mut node_var: Vec<Var> = Vec::with_capacity(nodes);
    let v0 = interner.var("v0");
    node_var.push(v0);
    let mut b = WdptBuilder::new(vec![Atom::new(e, vec![v0.into(), v0.into()])]);
    let mut all_vars = vec![v0];
    for j in 1..nodes {
        let parent = r.gen_range(0..j);
        let fresh = interner.var(&format!("v{j}"));
        let inherited = node_var[parent];
        let pred = if r.gen_bool(0.5) { e } else { f };
        let mut atoms = vec![Atom::new(pred, vec![inherited.into(), fresh.into()])];
        if r.gen_bool(0.4) {
            atoms.push(Atom::new(e, vec![fresh.into(), fresh.into()]));
        }
        b.child(parent, atoms);
        node_var.push(fresh);
        all_vars.push(fresh);
    }
    let free: Vec<Var> = all_vars
        .into_iter()
        .enumerate()
        .filter(|(idx, _)| idx % 2 == 0)
        .map(|(_, v)| v)
        .collect();
    b.build(free)
        .expect("construction keeps occurrences connected")
}

/// A "clique chain": a path-shaped WDPT whose node `j` carries the star
/// `e(?v{j+1}, ?v{i})` for all `i ≤ j` — locally `TW(1)` (each label is a
/// star), but the full-tree CQ is the `(m+1)`-clique, so the family has
/// unbounded interface and is **not** globally tractable. The deepest node
/// carries `g(?v{m}, ?w)` with free variable `?w`: deciding whether
/// `{w ↦ a}` is a partial answer forces a clique query — the NP-hard cell
/// of Table 1's PARTIAL-EVAL row (Proposition 1).
pub fn clique_chain_wdpt(interner: &mut Interner, m: usize) -> Wdpt {
    assert!(m >= 1);
    let e = interner.pred("e");
    let g = interner.pred("g");
    let vs: Vec<Var> = (0..=m).map(|j| interner.var(&format!("v{j}"))).collect();
    let w = interner.var("w");
    let mut b = WdptBuilder::new(vec![Atom::new(e, vec![vs[0].into(), vs[1].into()])]);
    let mut prev = 0;
    for j in 2..=m {
        let atoms: Vec<Atom> = (0..j)
            .map(|i| Atom::new(e, vec![vs[j].into(), vs[i].into()]))
            .collect();
        prev = b.child(prev, atoms);
    }
    b.child(prev, vec![Atom::new(g, vec![vs[m].into(), w.into()])]);
    b.build(vec![w]).expect("clique chain is well-designed")
}

/// A single-node WDPT whose body is the `m`-clique pattern over `e/2`
/// (both edge directions): the right-hand side of the NP-hard CQ
/// containment/subsumption family.
pub fn clique_pattern_wdpt(interner: &mut Interner, m: usize) -> Wdpt {
    let e = interner.pred("e");
    let vs: Vec<Var> = (0..m).map(|j| interner.var(&format!("k{j}"))).collect();
    let mut atoms = Vec::new();
    for a in 0..m {
        for bq in 0..m {
            if a != bq {
                atoms.push(Atom::new(e, vec![vs[a].into(), vs[bq].into()]));
            }
        }
    }
    WdptBuilder::new(atoms)
        .build(Vec::new())
        .expect("single node")
}

/// A single-node Boolean WDPT whose body is a random symmetric graph
/// pattern on `n` variables with about `edges` undirected edges — the
/// left-hand side of the hard subsumption family (checking whether the
/// clique pattern maps into it is exactly clique-finding).
pub fn random_graph_pattern_wdpt(
    interner: &mut Interner,
    n: usize,
    edges: usize,
    r: &mut Lcg,
) -> Wdpt {
    let e = interner.pred("e");
    let vs: Vec<Var> = (0..n).map(|j| interner.var(&format!("g{j}"))).collect();
    let mut atoms = vec![Atom::new(e, vec![vs[0].into(), vs[1 % n].into()])];
    for _ in 0..edges {
        let a = r.gen_range(0..n);
        let bq = r.gen_range(0..n);
        if a != bq {
            atoms.push(Atom::new(e, vec![vs[a].into(), vs[bq].into()]));
            atoms.push(Atom::new(e, vec![vs[bq].into(), vs[a].into()]));
        }
    }
    WdptBuilder::new(atoms)
        .build(Vec::new())
        .expect("single node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_core::{
        has_bounded_interface, interface_width, is_globally_in, is_locally_in, WidthKind,
    };

    #[test]
    fn chain_classification() {
        let mut i = Interner::new();
        let p = chain_wdpt(&mut i, 5, None);
        assert_eq!(p.node_count(), 5);
        assert!(p.is_projection_free());
        assert!(is_locally_in(&p, WidthKind::Tw, 1));
        assert!(has_bounded_interface(&p, 1));
        assert!(is_globally_in(&p, WidthKind::Tw, 1));
    }

    #[test]
    fn chain_with_projection() {
        let mut i = Interner::new();
        let p = chain_wdpt(&mut i, 4, Some(2));
        assert!(!p.is_projection_free());
        assert_eq!(p.free_vars().len(), 2);
    }

    #[test]
    fn star_classification() {
        let mut i = Interner::new();
        let p = star_wdpt(&mut i, 6);
        assert_eq!(p.node_count(), 7);
        assert!(is_locally_in(&p, WidthKind::Tw, 1));
        assert!(has_bounded_interface(&p, 1));
        assert_eq!(p.free_vars().len(), 7);
    }

    #[test]
    fn wide_interface_witness() {
        let mut i = Interner::new();
        let n = 5;
        let p = wide_interface_wdpt(&mut i, n);
        assert!(is_globally_in(&p, WidthKind::Tw, 1));
        assert_eq!(interface_width(&p), n + 1);
        assert!(!has_bounded_interface(&p, n));
    }

    #[test]
    fn random_trees_are_well_designed() {
        let mut r = crate::db::rng(42);
        for _ in 0..20 {
            let mut i = Interner::new();
            let p = random_wdpt(&mut i, 1 + r.gen_range(0..8), &mut r);
            assert!(p.node_count() >= 1);
            // building succeeded ⇒ well-designed; also sanity-check classes
            assert!(is_locally_in(&p, WidthKind::Tw, 1));
        }
    }
}
