//! Measures interleaved load/query cost: alternating `Database::insert`
//! with one indexed point probe per insert. With incremental index
//! maintenance the whole loop is linear in the number of tuples; a store
//! that discards its indexes on every insert rebuilds them on the next
//! probe and the loop degenerates to quadratic. The numbers from this
//! example (run against the seed revision and against HEAD) are recorded
//! in `EXPERIMENTS.md`.

use std::time::Instant;
use wdpt_model::{Const, Database, Interner};

fn main() {
    let mut i = Interner::new();
    let e = i.pred("e");
    for n in [2_000usize, 8_000, 32_000] {
        let consts: Vec<Const> = (0..n).map(|j| i.constant(&format!("c{j}"))).collect();
        let mut db = Database::new();
        let start = Instant::now();
        let mut hits = 0usize;
        for j in 0..n {
            db.insert(e, vec![consts[j], consts[j * 7 % n]]);
            let pat = [Some(consts[j / 2]), None];
            hits += db.relation(e).unwrap().matching(&pat).count();
        }
        println!(
            "n={n:>6}  interleaved insert+probe: {:>12.1?}  ({hits} probe hits)",
            start.elapsed()
        );
    }
}
