//! # wdpt-model — relational substrate
//!
//! The data model underlying the WDPT reproduction of Barceló & Pichler,
//! *Efficient Evaluation and Approximation of Well-designed Pattern Trees*
//! (PODS 2015).
//!
//! The paper studies pattern trees over **arbitrary relational schemas**
//! (Section 2): countably infinite disjoint sets of constants **U** and
//! variables **X**, relational atoms `R(v̄)` over a schema `σ`, databases as
//! finite sets of ground atoms, and *partial mappings* `h : X → U` ordered by
//! subsumption `⊑`. This crate provides exactly those objects:
//!
//! * [`Interner`] — a string interner giving stable integer ids to variable
//!   names, constant names, and predicate names.
//! * [`Term`], [`Var`], [`Const`], [`Pred`] — terms and predicate symbols.
//! * [`Atom`] — a relational atom `R(v̄)` over variables and constants.
//! * [`Database`] — a set of ground atoms with per-column hash indexes and an
//!   active-domain view.
//! * [`Mapping`] — a partial mapping `X → U` with the subsumption order
//!   (`h ⊑ h'` iff `h'` extends `h`), the central comparison of the paper.
//! * [`parse`] — a tiny text format (`edge(?x, ?y)`, `c("Swim", 2)`) used by
//!   tests, examples and generators.
//! * [`stats`] — process-wide engine counters (index builds/probes, tuples
//!   scanned, nodes expanded) that make the hot path observable.
//! * [`cancel`] — cooperative cancellation tokens with optional deadlines,
//!   polled by the evaluation loops (one relaxed load per backtrack step).

pub mod atom;
pub mod cancel;
pub mod columnar;
pub mod database;
pub mod interner;
pub mod mapping;
pub mod parse;
pub mod stats;
pub mod term;

pub use atom::Atom;
pub use cancel::{CancelToken, Cancelled};
pub use columnar::{ColumnSlices, ColumnarRelation};
pub use database::{row_id, ColumnIndex, Database, Relation, TooManyRows};
pub use interner::{Interner, SymbolSpace};
pub use mapping::Mapping;
pub use stats::StatsSnapshot;
pub use term::{Const, Pred, Term, Var};
