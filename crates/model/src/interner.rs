//! String interner shared by variables, constants, and predicate symbols.
//!
//! All identifiers in a query/database universe are interned once and
//! referred to by dense `u32` ids afterwards, so that comparisons, hashing,
//! and copying of terms are cheap (see the typed wrappers in [`crate::term`]).
//! Each kind (variable / constant / predicate) has its own namespace: the
//! variable `x` and the constant `x` receive independent ids.

use std::collections::HashMap;
use std::fmt;

/// The three disjoint namespaces managed by an [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Space {
    Var,
    Const,
    Pred,
}

/// Interns strings for one "universe" of queries and databases.
///
/// Structures from `wdpt-model` and the crates above it only store ids; an
/// `Interner` is needed to create them from names and to render them back.
/// Typical usage keeps one `Interner` per test / example / benchmark run.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    /// `(namespace, name)` per id — the namespace is kept so
    /// [`Interner::truncate`] can remove the matching lookup entries.
    names: Vec<(Space, String)>,
    lookup: HashMap<(Space, String), u32>,
    fresh_counter: u64,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, space: Space, name: &str) -> u32 {
        if let Some(&id) = self.lookup.get(&(space, name.to_owned())) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push((space, name.to_owned()));
        self.lookup.insert((space, name.to_owned()), id);
        id
    }

    /// Rolls the interner back to its first `len` symbols, forgetting every
    /// id allocated since (`fresh_counter` is left alone, so fresh names
    /// stay unique across a rollback). Intended for rejecting a request
    /// whose symbols should not be retained: the caller must ensure no id
    /// `≥ len` outlives the call — typically by holding the interner lock
    /// across intern-check-rollback and discarding the parsed structures.
    pub fn truncate(&mut self, len: usize) {
        while self.names.len() > len {
            let entry = self.names.pop().expect("len checked");
            self.lookup.remove(&entry);
        }
    }

    /// Interns a variable name and returns its [`crate::term::Var`] id.
    pub fn var(&mut self, name: &str) -> crate::term::Var {
        crate::term::Var(self.intern(Space::Var, name))
    }

    /// Interns a constant name and returns its [`crate::term::Const`] id.
    pub fn constant(&mut self, name: &str) -> crate::term::Const {
        crate::term::Const(self.intern(Space::Const, name))
    }

    /// Interns a predicate name and returns its [`crate::term::Pred`] id.
    pub fn pred(&mut self, name: &str) -> crate::term::Pred {
        crate::term::Pred(self.intern(Space::Pred, name))
    }

    /// Returns a fresh constant guaranteed not to collide with any constant
    /// interned so far. Used for "freezing" variables when building canonical
    /// databases (Chandra–Merlin containment, subsumption tests).
    pub fn fresh_const(&mut self, hint: &str) -> crate::term::Const {
        loop {
            let candidate = format!("\u{2022}{}#{}", hint, self.fresh_counter);
            self.fresh_counter += 1;
            if !self.lookup.contains_key(&(Space::Const, candidate.clone())) {
                return self.constant(&candidate);
            }
        }
    }

    /// Returns a fresh variable guaranteed not to collide with any variable
    /// interned so far.
    pub fn fresh_var(&mut self, hint: &str) -> crate::term::Var {
        loop {
            let candidate = format!("\u{2022}{}#{}", hint, self.fresh_counter);
            self.fresh_counter += 1;
            if !self.lookup.contains_key(&(Space::Var, candidate.clone())) {
                return self.var(&candidate);
            }
        }
    }

    /// Resolves any interned id back to its name.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize].1
    }

    /// Renders a variable.
    pub fn var_name(&self, v: crate::term::Var) -> &str {
        self.name(v.0)
    }

    /// Renders a constant.
    pub fn const_name(&self, c: crate::term::Const) -> &str {
        self.name(c.0)
    }

    /// Renders a predicate symbol.
    pub fn pred_name(&self, p: crate::term::Pred) -> &str {
        self.name(p.0)
    }

    /// Number of interned symbols across all namespaces.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Helper joining interned display of a list of items.
pub(crate) fn join_display<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
    let mut out = String::new();
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&f(item));
    }
    out
}

impl fmt::Display for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interner({} symbols)", self.names.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.var("x");
        let b = i.var("x");
        assert_eq!(a, b);
        assert_eq!(i.var_name(a), "x");
    }

    #[test]
    fn namespaces_are_disjoint() {
        let mut i = Interner::new();
        let v = i.var("x");
        let c = i.constant("x");
        let p = i.pred("x");
        // Ids live in one arena but the lookups are independent.
        assert_eq!(i.var_name(v), "x");
        assert_eq!(i.const_name(c), "x");
        assert_eq!(i.pred_name(p), "x");
        assert_ne!(v.0, c.0);
        assert_ne!(c.0, p.0);
    }

    #[test]
    fn fresh_constants_never_collide() {
        let mut i = Interner::new();
        let c1 = i.fresh_const("x");
        let c2 = i.fresh_const("x");
        assert_ne!(c1, c2);
    }

    #[test]
    fn fresh_vars_never_collide() {
        let mut i = Interner::new();
        let v1 = i.fresh_var("v");
        let v2 = i.fresh_var("v");
        assert_ne!(v1, v2);
        assert!(i.len() >= 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn truncate_rolls_back_ids_and_lookups() {
        let mut i = Interner::new();
        let v = i.var("x");
        let len = i.len();
        let c = i.constant("rolled");
        let p = i.pred("back");
        assert_eq!(i.len(), len + 2);

        i.truncate(len);
        assert_eq!(i.len(), len);
        // Surviving ids are untouched.
        assert_eq!(i.var_name(v), "x");
        assert_eq!(i.var("x"), v);
        // Rolled-back names re-intern from scratch, reusing the freed id
        // range — and in a different namespace order, so stale ids from
        // before the rollback must not be used (they are not).
        let p2 = i.pred("back");
        let c2 = i.constant("rolled");
        assert_eq!(p2.0, c.0);
        assert_eq!(c2.0, p.0);
        assert_eq!(i.pred_name(p2), "back");
        assert_eq!(i.const_name(c2), "rolled");
    }

    #[test]
    fn truncate_keeps_fresh_names_unique() {
        let mut i = Interner::new();
        let len = i.len();
        let f1 = i.fresh_const("s");
        let n1 = i.const_name(f1).to_string();
        i.truncate(len);
        let f2 = i.fresh_const("s");
        assert_ne!(n1, i.const_name(f2), "fresh counter must survive rollback");
    }
}
