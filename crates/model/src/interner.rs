//! String interner shared by variables, constants, and predicate symbols.
//!
//! All identifiers in a query/database universe are interned once and
//! referred to by dense `u32` ids afterwards, so that comparisons, hashing,
//! and copying of terms are cheap (see the typed wrappers in [`crate::term`]).
//! Each kind (variable / constant / predicate) has its own namespace: the
//! variable `x` and the constant `x` receive independent ids.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, the interner's lookup hash. Symbol names are short (tens of
/// bytes) and the map is rebuilt wholesale on every snapshot decode, where
/// SipHash's per-byte cost was the single largest line item of a v2 cold
/// start. FNV is deterministic, which also keeps decode timing stable; the
/// interner is not exposed to adversarial key sets large enough for
/// collision flooding to matter (ids cap at `u32`).
#[derive(Default)]
pub struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv1a>>;

/// FNV-1a over a symbol's namespace tag and name bytes — the key the
/// interner's lookup table is organized around.
fn sym_hash(space: Space, name: &str) -> u64 {
    let mut h = Fnv1a::default();
    h.write(&[space as u8]);
    h.write(name.as_bytes());
    h.finish()
}

/// The three disjoint namespaces managed by an [`Interner`].
///
/// Public so that storage layers (the `wdpt-store` snapshot format) can
/// serialize and reconstruct an interner symbol-for-symbol via
/// [`Interner::symbols`] and [`Interner::from_symbols`].
///
/// The derived `Ord` (declaration order: `Var < Const < Pred`) is part of
/// the canonical symbol order used by [`Interner::extend_canonical`] and is
/// therefore load-bearing for snapshot determinism — do not reorder the
/// variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SymbolSpace {
    /// The variable namespace (**X** in the paper).
    Var,
    /// The constant namespace (**U** in the paper).
    Const,
    /// The predicate-symbol namespace (the schema `σ`).
    Pred,
}

use SymbolSpace as Space;

/// Interns strings for one "universe" of queries and databases.
///
/// Structures from `wdpt-model` and the crates above it only store ids; an
/// `Interner` is needed to create them from names and to render them back.
/// Typical usage keeps one `Interner` per test / example / benchmark run.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    /// `(namespace, name)` per id — the namespace is kept so
    /// [`Interner::truncate`] can remove the matching lookup entries.
    names: Vec<(Space, String)>,
    /// `sym_hash → id`, verified against `names` on every probe (the map
    /// never owns a second copy of a name, which is what makes rebuilding
    /// it from a 100k-symbol snapshot dictionary cheap). A hash shared by
    /// two *different* symbols parks the later ids in `overflow`.
    lookup: FnvMap<u64, u32>,
    /// Ids displaced by a 64-bit hash collision, scanned linearly. In
    /// practice empty; it exists so correctness never rests on FNV being
    /// collision-free.
    overflow: Vec<(u64, u32)>,
    fresh_counter: u64,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// True iff `id` names exactly `(space, name)`.
    fn is_entry(&self, id: u32, space: Space, name: &str) -> bool {
        let (s, n) = &self.names[id as usize];
        *s == space && n == name
    }

    fn probe(&self, hash: u64, space: Space, name: &str) -> Option<u32> {
        match self.lookup.get(&hash) {
            Some(&id) if self.is_entry(id, space, name) => Some(id),
            // A populated slot that names something else (or a probe miss
            // entirely) can still match through the collision overflow.
            _ => self
                .overflow
                .iter()
                .find(|&&(h, id)| h == hash && self.is_entry(id, space, name))
                .map(|&(_, id)| id),
        }
    }

    fn intern(&mut self, space: Space, name: &str) -> u32 {
        let hash = sym_hash(space, name);
        if let Some(id) = self.probe(hash, space, name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push((space, name.to_owned()));
        if let Some(&displaced) = self.lookup.get(&hash) {
            debug_assert_ne!(displaced, id);
            self.overflow.push((hash, id));
        } else {
            self.lookup.insert(hash, id);
        }
        id
    }

    /// Looks up the id of an already-interned symbol without interning it.
    /// This is the read-only probe the `wdpt-store` bulk loader uses when
    /// building its local-to-global remap tables.
    pub fn lookup_id(&self, space: SymbolSpace, name: &str) -> Option<u32> {
        self.probe(sym_hash(space, name), space, name)
    }

    /// Extends the interner with every candidate symbol that is not interned
    /// yet, assigning the new ids in **canonical order**: namespace first
    /// (`Var < Const < Pred`), then lexicographic by name bytes. Duplicates
    /// among the candidates are fine — each symbol is interned once.
    ///
    /// This is the merge step of two-pass parallel interning (the
    /// `wdpt-store` bulk loader): parse workers collect symbols into
    /// per-worker local dictionaries, and this constructor folds their union
    /// into the global interner. Because the ids depend only on the *set* of
    /// new symbols (plus the interner's prior state), the result — and hence
    /// snapshot bytes — is identical across worker counts and scheduling
    /// orders. Returns how many symbols were appended.
    pub fn extend_canonical<'a, I>(&mut self, candidates: I) -> usize
    where
        I: IntoIterator<Item = (SymbolSpace, &'a str)>,
    {
        let mut fresh: Vec<(SymbolSpace, &str)> = candidates.into_iter().collect();
        fresh.sort_unstable();
        fresh.dedup();
        let mut appended = 0usize;
        for (space, name) in fresh {
            if self.lookup_id(space, name).is_none() {
                self.intern(space, name);
                appended += 1;
            }
        }
        appended
    }

    /// Rolls the interner back to its first `len` symbols, forgetting every
    /// id allocated since (`fresh_counter` is left alone, so fresh names
    /// stay unique across a rollback). Intended for rejecting a request
    /// whose symbols should not be retained: the caller must ensure no id
    /// `≥ len` outlives the call — typically by holding the interner lock
    /// across intern-check-rollback and discarding the parsed structures.
    pub fn truncate(&mut self, len: usize) {
        while self.names.len() > len {
            let id = u32::try_from(self.names.len() - 1).expect("ids fit u32");
            let (space, name) = self.names.pop().expect("len checked");
            let hash = sym_hash(space, &name);
            if let Some(pos) = self.overflow.iter().position(|&e| e == (hash, id)) {
                self.overflow.swap_remove(pos);
            } else {
                self.lookup.remove(&hash);
                // Promote a colliding survivor (if any) into the map slot.
                if let Some(pos) = self.overflow.iter().position(|&(h, _)| h == hash) {
                    let (_, survivor) = self.overflow.swap_remove(pos);
                    self.lookup.insert(hash, survivor);
                }
            }
        }
    }

    /// Interns a variable name and returns its [`crate::term::Var`] id.
    pub fn var(&mut self, name: &str) -> crate::term::Var {
        crate::term::Var(self.intern(Space::Var, name))
    }

    /// Interns a constant name and returns its [`crate::term::Const`] id.
    pub fn constant(&mut self, name: &str) -> crate::term::Const {
        crate::term::Const(self.intern(Space::Const, name))
    }

    /// Interns a predicate name and returns its [`crate::term::Pred`] id.
    pub fn pred(&mut self, name: &str) -> crate::term::Pred {
        crate::term::Pred(self.intern(Space::Pred, name))
    }

    /// Returns a fresh constant guaranteed not to collide with any constant
    /// interned so far. Used for "freezing" variables when building canonical
    /// databases (Chandra–Merlin containment, subsumption tests).
    pub fn fresh_const(&mut self, hint: &str) -> crate::term::Const {
        loop {
            let candidate = format!("\u{2022}{}#{}", hint, self.fresh_counter);
            self.fresh_counter += 1;
            if self.lookup_id(Space::Const, &candidate).is_none() {
                return self.constant(&candidate);
            }
        }
    }

    /// Returns a fresh variable guaranteed not to collide with any variable
    /// interned so far.
    pub fn fresh_var(&mut self, hint: &str) -> crate::term::Var {
        loop {
            let candidate = format!("\u{2022}{}#{}", hint, self.fresh_counter);
            self.fresh_counter += 1;
            if self.lookup_id(Space::Var, &candidate).is_none() {
                return self.var(&candidate);
            }
        }
    }

    /// Resolves any interned id back to its name.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize].1
    }

    /// Renders a variable.
    pub fn var_name(&self, v: crate::term::Var) -> &str {
        self.name(v.0)
    }

    /// Renders a constant.
    pub fn const_name(&self, c: crate::term::Const) -> &str {
        self.name(c.0)
    }

    /// Renders a predicate symbol.
    pub fn pred_name(&self, p: crate::term::Pred) -> &str {
        self.name(p.0)
    }

    /// Number of interned symbols across all namespaces.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over every interned symbol in **id order**: the symbol with
    /// id `k` is the `k`-th item. This is the serialization hook used by the
    /// `wdpt-store` snapshot dictionary.
    pub fn symbols(&self) -> impl Iterator<Item = (SymbolSpace, &str)> + '_ {
        self.names.iter().map(|(space, name)| (*space, &**name))
    }

    /// The namespace of an interned id, or `None` for an id that was never
    /// allocated. Lets deserializers validate that a stored id really names
    /// a constant / predicate before wrapping it in a typed term.
    pub fn symbol_space(&self, id: u32) -> Option<SymbolSpace> {
        self.names.get(id as usize).map(|(space, _)| *space)
    }

    /// The fresh-name counter (see [`Interner::fresh_const`]); serialized so
    /// that fresh names minted after a reload cannot collide with fresh
    /// names minted before the snapshot was taken.
    pub fn fresh_counter(&self) -> u64 {
        self.fresh_counter
    }

    /// Raises the fresh-name counter to at least `counter` (never lowers
    /// it). Applying a delta snapshot adopts the writer's counter so fresh
    /// names minted after the apply cannot collide with fresh names minted
    /// before the delta was written; lowering is refused because it could
    /// reintroduce exactly that collision.
    pub fn raise_fresh_counter(&mut self, counter: u64) {
        self.fresh_counter = self.fresh_counter.max(counter);
    }

    /// Reconstructs an interner from a symbol listing (as produced by
    /// [`Interner::symbols`]) and a fresh-name counter: the `k`-th listed
    /// symbol receives id `k`, exactly reversing serialization. Returns
    /// `None` if a `(namespace, name)` pair repeats — a malformed listing
    /// that could not have come from a real interner.
    pub fn from_symbols<I>(symbols: I, fresh_counter: u64) -> Option<Interner>
    where
        I: IntoIterator<Item = (SymbolSpace, String)>,
    {
        let symbols = symbols.into_iter();
        let mut out = Interner::new();
        // Pre-size both sides: snapshot decode hands over the full symbol
        // listing at once, and incremental rehashing of a 100k-entry map
        // would otherwise dominate the cold-start cost.
        let n = symbols.size_hint().0;
        out.names.reserve(n);
        out.lookup.reserve(n);
        for (space, name) in symbols {
            let id = u32::try_from(out.names.len()).ok()?;
            let hash = sym_hash(space, &name);
            if out.probe(hash, space, &name).is_some() {
                return None;
            }
            out.names.push((space, name));
            if out.lookup.contains_key(&hash) {
                out.overflow.push((hash, id));
            } else {
                out.lookup.insert(hash, id);
            }
        }
        out.fresh_counter = fresh_counter;
        Some(out)
    }
}

/// Helper joining interned display of a list of items.
pub(crate) fn join_display<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
    let mut out = String::new();
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&f(item));
    }
    out
}

impl fmt::Display for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interner({} symbols)", self.names.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.var("x");
        let b = i.var("x");
        assert_eq!(a, b);
        assert_eq!(i.var_name(a), "x");
    }

    #[test]
    fn namespaces_are_disjoint() {
        let mut i = Interner::new();
        let v = i.var("x");
        let c = i.constant("x");
        let p = i.pred("x");
        // Ids live in one arena but the lookups are independent.
        assert_eq!(i.var_name(v), "x");
        assert_eq!(i.const_name(c), "x");
        assert_eq!(i.pred_name(p), "x");
        assert_ne!(v.0, c.0);
        assert_ne!(c.0, p.0);
    }

    #[test]
    fn fresh_constants_never_collide() {
        let mut i = Interner::new();
        let c1 = i.fresh_const("x");
        let c2 = i.fresh_const("x");
        assert_ne!(c1, c2);
    }

    #[test]
    fn fresh_vars_never_collide() {
        let mut i = Interner::new();
        let v1 = i.fresh_var("v");
        let v2 = i.fresh_var("v");
        assert_ne!(v1, v2);
        assert!(i.len() >= 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn truncate_rolls_back_ids_and_lookups() {
        let mut i = Interner::new();
        let v = i.var("x");
        let len = i.len();
        let c = i.constant("rolled");
        let p = i.pred("back");
        assert_eq!(i.len(), len + 2);

        i.truncate(len);
        assert_eq!(i.len(), len);
        // Surviving ids are untouched.
        assert_eq!(i.var_name(v), "x");
        assert_eq!(i.var("x"), v);
        // Rolled-back names re-intern from scratch, reusing the freed id
        // range — and in a different namespace order, so stale ids from
        // before the rollback must not be used (they are not).
        let p2 = i.pred("back");
        let c2 = i.constant("rolled");
        assert_eq!(p2.0, c.0);
        assert_eq!(c2.0, p.0);
        assert_eq!(i.pred_name(p2), "back");
        assert_eq!(i.const_name(c2), "rolled");
    }

    #[test]
    fn symbols_round_trip_through_from_symbols() {
        let mut i = Interner::new();
        let v = i.var("x");
        let c = i.constant("x");
        let p = i.pred("edge");
        let f = i.fresh_const("frozen");
        let listing: Vec<(SymbolSpace, String)> = i
            .symbols()
            .map(|(space, name)| (space, name.to_owned()))
            .collect();
        let back = Interner::from_symbols(listing, i.fresh_counter()).unwrap();
        assert_eq!(back.len(), i.len());
        assert_eq!(back.fresh_counter(), i.fresh_counter());
        assert_eq!(back.var_name(v), "x");
        assert_eq!(back.const_name(c), "x");
        assert_eq!(back.pred_name(p), "edge");
        assert_eq!(back.const_name(f), i.const_name(f));
        // Re-interning resolves to the original ids, and namespaces survive.
        let mut back = back;
        assert_eq!(back.var("x"), v);
        assert_eq!(back.constant("x"), c);
        assert_eq!(back.pred("edge"), p);
        assert_eq!(back.symbol_space(v.0), Some(SymbolSpace::Var));
        assert_eq!(back.symbol_space(p.0), Some(SymbolSpace::Pred));
        assert_eq!(back.symbol_space(u32::MAX), None);
    }

    #[test]
    fn from_symbols_rejects_duplicates() {
        let dup = vec![
            (SymbolSpace::Const, "a".to_owned()),
            (SymbolSpace::Const, "a".to_owned()),
        ];
        assert!(Interner::from_symbols(dup, 0).is_none());
        // Same name in different namespaces is fine.
        let ok = vec![
            (SymbolSpace::Const, "a".to_owned()),
            (SymbolSpace::Pred, "a".to_owned()),
        ];
        assert!(Interner::from_symbols(ok, 0).is_some());
    }

    #[test]
    fn extend_canonical_assigns_namespace_then_name_order() {
        let mut i = Interner::new();
        let appended = i.extend_canonical(vec![
            (SymbolSpace::Pred, "edge"),
            (SymbolSpace::Const, "b"),
            (SymbolSpace::Const, "a"),
            (SymbolSpace::Var, "x"),
            (SymbolSpace::Const, "a"), // duplicate candidate
        ]);
        assert_eq!(appended, 4);
        let listing: Vec<(SymbolSpace, String)> =
            i.symbols().map(|(s, n)| (s, n.to_owned())).collect();
        assert_eq!(
            listing,
            vec![
                (SymbolSpace::Var, "x".to_owned()),
                (SymbolSpace::Const, "a".to_owned()),
                (SymbolSpace::Const, "b".to_owned()),
                (SymbolSpace::Pred, "edge".to_owned()),
            ]
        );
    }

    #[test]
    fn extend_canonical_appends_after_existing_ids() {
        let mut i = Interner::new();
        let p = i.pred("zz");
        let appended = i.extend_canonical(vec![
            (SymbolSpace::Pred, "zz"), // already interned: kept, not moved
            (SymbolSpace::Pred, "aa"),
        ]);
        assert_eq!(appended, 1);
        assert_eq!(i.pred("zz"), p, "existing ids must not change");
        assert_eq!(i.lookup_id(SymbolSpace::Pred, "aa"), Some(p.0 + 1));
        assert_eq!(i.lookup_id(SymbolSpace::Pred, "absent"), None);
        assert_eq!(i.lookup_id(SymbolSpace::Const, "zz"), None);
    }

    /// The determinism property two-pass parallel interning rests on: for a
    /// fixed symbol multiset, `extend_canonical` yields the same interner no
    /// matter how the symbols were partitioned among workers, in what order
    /// each partition emitted them, or how often a symbol repeats — and it
    /// matches a serial interner whose symbols were pre-sorted canonically.
    #[test]
    fn extend_canonical_is_partition_independent() {
        let mut rng = 0xC0FFEEu64;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        for round in 0..20 {
            // A random multiset of symbols across all three namespaces.
            let n = 1 + (next() % 60) as usize;
            let symbols: Vec<(SymbolSpace, String)> = (0..n)
                .map(|_| {
                    let space = match next() % 3 {
                        0 => SymbolSpace::Var,
                        1 => SymbolSpace::Const,
                        _ => SymbolSpace::Pred,
                    };
                    (space, format!("s{}", next() % 40))
                })
                .collect();

            // Serial reference: sort canonically, intern one at a time.
            let mut reference = Interner::new();
            let mut sorted: Vec<(SymbolSpace, &str)> =
                symbols.iter().map(|(s, n)| (*s, n.as_str())).collect();
            sorted.sort_unstable();
            sorted.dedup();
            for (space, name) in sorted {
                match space {
                    SymbolSpace::Var => reference.var(name).0,
                    SymbolSpace::Const => reference.constant(name).0,
                    SymbolSpace::Pred => reference.pred(name).0,
                };
            }

            // Random partition into "worker" dictionaries, each shuffled.
            let workers = 1 + (next() % 7) as usize;
            let mut parts: Vec<Vec<(SymbolSpace, &str)>> = vec![Vec::new(); workers];
            for (space, name) in &symbols {
                parts[(next() % workers as u64) as usize].push((*space, name.as_str()));
            }
            for part in &mut parts {
                for k in (1..part.len()).rev() {
                    part.swap(k, (next() % (k as u64 + 1)) as usize);
                }
            }
            let mut merged = Interner::new();
            merged.extend_canonical(parts.into_iter().flatten());

            let a: Vec<_> = reference.symbols().collect();
            let b: Vec<_> = merged.symbols().collect();
            assert_eq!(a, b, "round {round}: partitioning changed the ids");
        }
    }

    #[test]
    fn truncate_keeps_fresh_names_unique() {
        let mut i = Interner::new();
        let len = i.len();
        let f1 = i.fresh_const("s");
        let n1 = i.const_name(f1).to_string();
        i.truncate(len);
        let f2 = i.fresh_const("s");
        assert_ne!(n1, i.const_name(f2), "fresh counter must survive rollback");
    }
}
