//! Cooperative cancellation for long-running evaluations.
//!
//! The backtracking search is worst-case exponential, so a resident query
//! service needs a way to bound a pathological query's runtime. A
//! [`CancelToken`] is a cheaply clonable handle shared between the caller
//! (who cancels, or attaches a deadline) and the evaluation loops (who
//! poll). The hot-path cost mirrors the disabled-tracing fast path of
//! `wdpt-obs`: one relaxed atomic load per backtrack step. Deadlines are
//! folded into that same flag — the clock is only consulted every
//! [`DEADLINE_POLL_MASK`]+1 steps, and an expired deadline stores into the
//! cancelled flag so every other thread sharing the token sees it at the
//! next load.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Evaluation stopped early: the token was cancelled or its deadline
/// passed. Carries no payload — the caller holding the token knows which.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("evaluation cancelled (deadline exceeded or caller cancelled)")
    }
}

impl std::error::Error for Cancelled {}

/// Poll the clock once per this many steps (power of two minus one, used
/// as a mask). At typical backtrack rates this bounds deadline overshoot
/// to well under a millisecond while keeping `Instant::now` off the hot
/// path.
const DEADLINE_POLL_MASK: u32 = 1023;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation flag with an optional deadline.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally expires `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            }),
        }
    }

    /// A shared token that never cancels — what the plain (non-`try_`)
    /// entry points thread through the same loops at zero branch cost
    /// beyond the relaxed load.
    pub fn never() -> &'static CancelToken {
        static NEVER: OnceLock<CancelToken> = OnceLock::new();
        NEVER.get_or_init(CancelToken::new)
    }

    /// Requests cancellation; every holder of the token observes it at its
    /// next poll.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Relaxed);
    }

    /// One relaxed load; does not consult the clock.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Relaxed)
    }

    /// The instant after which the token expires, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Checks the deadline against the clock now (not amortized), latching
    /// an expiry into the cancelled flag. Returns the cancelled state.
    pub fn poll_deadline(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.cancelled.store(true, Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The per-step poll for hot loops: a relaxed flag load every call,
    /// plus a clock check every [`DEADLINE_POLL_MASK`]+1 calls (amortized
    /// via the caller-owned `steps` counter).
    #[inline]
    pub fn should_stop(&self, steps: &mut u32) -> bool {
        if self.is_cancelled() {
            return true;
        }
        *steps = steps.wrapping_add(1);
        if *steps & DEADLINE_POLL_MASK == 0 {
            self.poll_deadline()
        } else {
            false
        }
    }

    /// `Err(Cancelled)` iff the token is cancelled or expired (consults
    /// the clock — use at loop boundaries, not per step).
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.poll_deadline() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        let mut steps = 0;
        for _ in 0..5000 {
            assert!(!t.should_stop(&mut steps));
        }
    }

    #[test]
    fn cancel_is_seen_by_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel();
        assert!(u.is_cancelled());
        assert_eq!(u.check(), Err(Cancelled));
        let mut steps = 0;
        assert!(u.should_stop(&mut steps));
    }

    #[test]
    fn expired_deadline_latches() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        // The flag itself is not set until a clock poll happens.
        assert!(t.poll_deadline());
        // ... after which the amortization-free path sees it too.
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(Cancelled));
    }

    #[test]
    fn should_stop_reaches_the_clock() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        let mut steps = 0;
        let mut stopped = false;
        for _ in 0..=DEADLINE_POLL_MASK {
            if t.should_stop(&mut steps) {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "deadline was never polled within one mask period");
    }

    #[test]
    fn never_token_never_stops() {
        let t = CancelToken::never();
        assert!(!t.poll_deadline());
        assert!(t.check().is_ok());
    }
}
