//! A tiny text format for atoms, databases, and mappings.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! atoms   := atom ((',')? atom)*
//! atom    := ident '(' term (',' term)* ')'   |   ident '(' ')'
//! term    := '?' ident            // variable
//!          | ident                // constant (bare)
//!          | '"' (char|esc)* '"'  // constant (quoted, may contain spaces)
//! esc     := '\"' | '\\' | '\n' | '\t' | '\r'
//!          | '\u' hex{4} | '\U' hex{8}
//! ident   := [A-Za-z0-9_.'-]+
//! ```
//!
//! Examples: `edge(?x, ?y)`, `published(?x, "after_2010")`,
//! `c(1, 1) c(2, 2) c(3, 3)`.
//!
//! This format exists so that tests, examples, and generators can state
//! queries and databases at the same granularity the paper does.

use crate::atom::Atom;
use crate::database::Database;
use crate::interner::Interner;
use crate::mapping::Mapping;
use crate::term::Term;
use std::fmt;

/// Error produced by the parser, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Decodes the backslash escapes of a quoted constant — `\"`, `\\`, `\n`,
/// `\t`, `\r`, `\uXXXX`, and `\UXXXXXXXX` (the same repertoire the
/// N-Triples dialect accepts in literals). `raw` is the text between the
/// quotes with escapes intact; escape-free input borrows instead of
/// allocating. Error offsets are byte positions relative to `raw`.
///
/// Shared by [`Cursor::quoted`] here and by the string-level facts parser
/// in `wdpt-store`'s bulk loader, so the serial and parallel loading paths
/// cannot drift on what an escape means.
pub fn unescape(raw: &str) -> Result<std::borrow::Cow<'_, str>, ParseError> {
    if !raw.contains('\\') {
        return Ok(std::borrow::Cow::Borrowed(raw));
    }
    let err = |at: usize, message: String| ParseError { at, message };
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.char_indices();
    while let Some((at, c)) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        let Some((_, esc)) = chars.next() else {
            return Err(err(at, "dangling escape at end of string".into()));
        };
        match esc {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            'r' => out.push('\r'),
            'u' | 'U' => {
                let digits = if esc == 'u' { 4 } else { 8 };
                let mut code = 0u32;
                for _ in 0..digits {
                    let d = chars
                        .next()
                        .and_then(|(_, h)| h.to_digit(16))
                        .ok_or_else(|| {
                            err(at, format!("\\{esc} escape needs {digits} hex digits"))
                        })?;
                    code = code
                        .checked_mul(16)
                        .and_then(|c| c.checked_add(d))
                        .ok_or_else(|| err(at, format!("\\{esc} escape out of range")))?;
                }
                let decoded = char::from_u32(code)
                    .ok_or_else(|| err(at, format!("\\{esc} escape is not a scalar value")))?;
                out.push(decoded);
            }
            other => return Err(err(at, format!("unknown escape '\\{other}'"))),
        }
    }
    Ok(std::borrow::Cow::Owned(out))
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    fn eof(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.rest().chars().next()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected '{c}'")))
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let is_ident = |c: char| c.is_alphanumeric() || "_.'-".contains(c);
        while self.rest().chars().next().is_some_and(is_ident) {
            self.bump();
        }
        if self.pos == start {
            Err(self.error("expected identifier"))
        } else {
            Ok(&self.src[start..self.pos])
        }
    }

    fn quoted(&mut self) -> Result<std::borrow::Cow<'a, str>, ParseError> {
        self.expect('"')?;
        let start = self.pos;
        let mut escaped = false;
        while let Some(c) = self.rest().chars().next() {
            if escaped {
                escaped = false;
                self.bump();
                continue;
            }
            match c {
                '\\' => {
                    escaped = true;
                    self.bump();
                }
                '"' => {
                    let raw = &self.src[start..self.pos];
                    self.bump();
                    return unescape(raw).map_err(|e| ParseError {
                        at: start + e.at,
                        message: e.message,
                    });
                }
                _ => {
                    self.bump();
                }
            }
        }
        Err(self.error("unterminated string literal"))
    }

    fn term(&mut self, interner: &mut Interner) -> Result<Term, ParseError> {
        match self.peek() {
            Some('?') => {
                self.bump();
                Ok(Term::Var(interner.var(self.ident()?)))
            }
            Some('"') => Ok(Term::Const(interner.constant(&self.quoted()?))),
            Some(_) => Ok(Term::Const(interner.constant(self.ident()?))),
            None => Err(self.error("expected term")),
        }
    }

    fn atom(&mut self, interner: &mut Interner) -> Result<Atom, ParseError> {
        let pred = interner.pred(self.ident()?);
        self.expect('(')?;
        let mut args = Vec::new();
        if self.peek() != Some(')') {
            loop {
                args.push(self.term(interner)?);
                match self.peek() {
                    Some(',') => {
                        self.bump();
                    }
                    Some(')') => break,
                    _ => return Err(self.error("expected ',' or ')'")),
                }
            }
        }
        self.expect(')')?;
        Ok(Atom::new(pred, args))
    }
}

/// Parses a single atom like `edge(?x, a)`.
pub fn parse_atom(interner: &mut Interner, src: &str) -> Result<Atom, ParseError> {
    let mut c = Cursor::new(src);
    let atom = c.atom(interner)?;
    if !c.eof() {
        return Err(c.error("trailing input after atom"));
    }
    Ok(atom)
}

/// Parses a whitespace/comma-separated sequence of atoms.
pub fn parse_atoms(interner: &mut Interner, src: &str) -> Result<Vec<Atom>, ParseError> {
    let mut c = Cursor::new(src);
    let mut atoms = Vec::new();
    while !c.eof() {
        atoms.push(c.atom(interner)?);
        if c.peek() == Some(',') {
            c.bump();
        }
    }
    Ok(atoms)
}

/// Parses a sequence of *ground* atoms into a [`Database`].
pub fn parse_database(interner: &mut Interner, src: &str) -> Result<Database, ParseError> {
    let atoms = parse_atoms(interner, src)?;
    let mut db = Database::new();
    for a in &atoms {
        if !a.is_ground() {
            return Err(ParseError {
                at: 0,
                message: format!("database atom contains a variable: {}", a.display(interner)),
            });
        }
        db.insert_atom(a);
    }
    Ok(db)
}

/// Parses a mapping like `?x -> Swim, ?y -> Caribou` (also accepts `↦` and
/// `=` as the arrow). The empty string yields the empty mapping.
pub fn parse_mapping(interner: &mut Interner, src: &str) -> Result<Mapping, ParseError> {
    let mut c = Cursor::new(src);
    let mut m = Mapping::empty();
    while !c.eof() {
        c.expect('?')?;
        let v = interner.var(c.ident()?);
        c.skip_ws();
        // Accept "->", "↦", or "=".
        match c.peek() {
            Some('-') => {
                c.bump();
                c.expect('>')?;
            }
            Some('↦') | Some('=') => {
                c.bump();
            }
            _ => return Err(c.error("expected '->', '↦', or '='")),
        }
        let value = match c.peek() {
            Some('"') => c.quoted()?,
            _ => std::borrow::Cow::Borrowed(c.ident()?),
        };
        let cst = interner.constant(&value);
        if !m.insert(v, cst) {
            return Err(c.error("conflicting binding in mapping"));
        }
        if c.peek() == Some(',') {
            c.bump();
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_atom() {
        let mut i = Interner::new();
        let a = parse_atom(&mut i, "edge(?x, ?y)").unwrap();
        assert_eq!(a.arity(), 2);
        assert_eq!(a.var_set().len(), 2);
        assert_eq!(a.display(&i), "edge(?x, ?y)");
    }

    #[test]
    fn parses_quoted_constants() {
        let mut i = Interner::new();
        let a = parse_atom(&mut i, r#"published(?x, "after 2010")"#).unwrap();
        assert_eq!(a.display(&i), "published(?x, after 2010)");
        assert_eq!(a.var_set().len(), 1);
    }

    #[test]
    fn quoted_constants_decode_escapes() {
        let mut i = Interner::new();
        let a = parse_atom(&mut i, r#"p("say \"hi\" (now))")"#).unwrap();
        let c = i.constant("say \"hi\" (now))");
        assert_eq!(a.args[0], Term::Const(c));
        // Escape-free quoted constants are unchanged.
        let b = parse_atom(&mut i, r#"p("plain text")"#).unwrap();
        assert_eq!(b.args[0], Term::Const(i.constant("plain text")));
    }

    #[test]
    fn bad_escapes_are_errors_with_offsets() {
        let mut i = Interner::new();
        for src in [
            r#"p("\q")"#,
            r#"p("\u12")"#,
            r#"p("\UFFFFFFFF")"#,
            "p(\"x\\",
        ] {
            assert!(parse_atom(&mut i, src).is_err(), "accepted {src:?}");
        }
        let err = parse_atom(&mut i, r#"p("ab\q")"#).unwrap_err();
        assert!(err.message.contains("escape"), "{err}");
        assert_eq!(err.at, 5, "offset should point at the backslash");
    }

    #[test]
    fn unescape_borrows_when_escape_free() {
        assert!(matches!(
            unescape("no escapes here").unwrap(),
            std::borrow::Cow::Borrowed(_)
        ));
        assert_eq!(unescape(r#"a\\bA"#).unwrap(), "a\\bA");
    }

    #[test]
    fn parses_nullary_atom() {
        let mut i = Interner::new();
        let a = parse_atom(&mut i, "p()").unwrap();
        assert_eq!(a.arity(), 0);
    }

    #[test]
    fn parses_atom_list_with_and_without_commas() {
        let mut i = Interner::new();
        let atoms = parse_atoms(&mut i, "e(?x,?y), e(?y,?z) e(?z,?x)").unwrap();
        assert_eq!(atoms.len(), 3);
    }

    #[test]
    fn parses_database() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "c(1,1) c(2,2), c(3,3)").unwrap();
        assert_eq!(db.size(), 3);
        assert_eq!(db.active_domain().len(), 3);
    }

    #[test]
    fn database_rejects_variables() {
        let mut i = Interner::new();
        assert!(parse_database(&mut i, "c(?x, 1)").is_err());
    }

    #[test]
    fn parses_mapping() {
        let mut i = Interner::new();
        let m = parse_mapping(&mut i, "?x -> Swim, ?y -> Caribou").unwrap();
        assert_eq!(m.len(), 2);
        let x = i.var("x");
        let swim = i.constant("Swim");
        assert_eq!(m.get(x), Some(swim));
    }

    #[test]
    fn parses_empty_mapping() {
        let mut i = Interner::new();
        assert!(parse_mapping(&mut i, "  ").unwrap().is_empty());
    }

    #[test]
    fn mapping_rejects_conflicts() {
        let mut i = Interner::new();
        assert!(parse_mapping(&mut i, "?x -> a, ?x -> b").is_err());
    }

    #[test]
    fn error_on_trailing_garbage() {
        let mut i = Interner::new();
        assert!(parse_atom(&mut i, "e(?x) junk").is_err());
    }

    #[test]
    fn error_reports_offset() {
        let mut i = Interner::new();
        let err = parse_atom(&mut i, "e(?x").unwrap_err();
        assert!(err.at >= 4, "offset was {}", err.at);
        assert!(err.to_string().contains("parse error"));
    }
}
