//! Relational atoms `R(v̄)`.

use crate::interner::Interner;
use crate::mapping::Mapping;
use crate::term::{Const, Pred, Term, Var};
use std::collections::BTreeSet;

/// A relational atom `R(v̄)` over a schema: a predicate symbol applied to a
/// tuple of terms (variables and constants).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The predicate symbol `R`.
    pub pred: Pred,
    /// The argument tuple `v̄`.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom from a predicate and argument terms.
    pub fn new(pred: Pred, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Iterates over the variables occurring in the atom (with repetitions).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// The set of distinct variables in the atom.
    pub fn var_set(&self) -> BTreeSet<Var> {
        self.vars().collect()
    }

    /// True iff the atom is ground (contains no variables).
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_var())
    }

    /// Applies a partial mapping to the atom, replacing every variable in the
    /// mapping's domain by its image. Variables outside the domain remain.
    pub fn apply(&self, h: &Mapping) -> Atom {
        Atom {
            pred: self.pred,
            args: self
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => match h.get(*v) {
                        Some(c) => Term::Const(c),
                        None => *t,
                    },
                    Term::Const(_) => *t,
                })
                .collect(),
        }
    }

    /// Converts a ground atom into its constant tuple; `None` if not ground.
    pub fn ground_tuple(&self) -> Option<Vec<Const>> {
        self.args.iter().map(|t| t.as_const()).collect()
    }

    /// Renders the atom using `interner`, e.g. `edge(?x, a)`.
    pub fn display(&self, interner: &Interner) -> String {
        format!(
            "{}({})",
            interner.pred_name(self.pred),
            crate::interner::join_display(&self.args, |t| t.display(interner))
        )
    }
}

/// The set of distinct variables occurring in a slice of atoms.
pub fn vars_of_atoms(atoms: &[Atom]) -> BTreeSet<Var> {
    atoms.iter().flat_map(|a| a.vars()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Interner, Atom) {
        let mut i = Interner::new();
        let e = i.pred("edge");
        let x = i.var("x");
        let a = i.constant("a");
        let atom = Atom::new(e, vec![x.into(), a.into()]);
        (i, atom)
    }

    #[test]
    fn arity_and_vars() {
        let (_, atom) = setup();
        assert_eq!(atom.arity(), 2);
        assert_eq!(atom.var_set().len(), 1);
        assert!(!atom.is_ground());
    }

    #[test]
    fn apply_mapping_grounds_atom() {
        let (mut i, atom) = setup();
        let x = i.var("x");
        let b = i.constant("b");
        let h = Mapping::from_pairs(vec![(x, b)]);
        let g = atom.apply(&h);
        assert!(g.is_ground());
        assert_eq!(g.ground_tuple().unwrap().len(), 2);
    }

    #[test]
    fn apply_leaves_unmapped_vars() {
        let (mut i, atom) = setup();
        let y = i.var("y");
        let b = i.constant("b");
        let h = Mapping::from_pairs(vec![(y, b)]);
        let g = atom.apply(&h);
        assert!(!g.is_ground());
        assert_eq!(g, atom);
    }

    #[test]
    fn display_format() {
        let (i, atom) = setup();
        assert_eq!(atom.display(&i), "edge(?x, a)");
    }

    #[test]
    fn vars_of_atoms_dedups() {
        let mut i = Interner::new();
        let e = i.pred("e");
        let x = i.var("x");
        let y = i.var("y");
        let a1 = Atom::new(e, vec![x.into(), y.into()]);
        let a2 = Atom::new(e, vec![y.into(), x.into()]);
        assert_eq!(vars_of_atoms(&[a1, a2]).len(), 2);
    }
}
