//! Databases: finite sets of ground atoms with per-column indexes.
//!
//! A database `D` over schema `σ` is a set of ground relational atoms
//! (Section 2 of the paper). [`Database`] stores one [`Relation`] per
//! predicate; each relation keeps its tuples densely plus lazily-built
//! per-column hash indexes that the CQ engines use for index-nested-loop
//! matching.
//!
//! Indexes live behind [`OnceLock`]s, so a fully-loaded `Database` is
//! [`Sync`] and can be shared by reference across the worker threads of the
//! parallel WDPT evaluator; concurrent lazy index builds are safe (one
//! thread wins, the others reuse its index). Inserting into a relation
//! whose indexes are already built updates them **incrementally** — the
//! seed version discarded every index on every insert, which made
//! interleaved load/query workloads rebuild an O(n) index per insert
//! (quadratic overall).

use crate::atom::Atom;
use crate::interner::Interner;
use crate::stats;
use crate::term::{Const, Pred};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::OnceLock;
use wdpt_obs::histogram;

/// Iterator adapter that tallies how many candidate tuples pass through it
/// and flushes the tally as **one** batched counter update on drop. The
/// match iterators sit on the innermost loops of every engine, so paying a
/// relaxed `fetch_add` per tuple (as the seed did via `inspect`) is
/// measurable; a local `u64` increment is not.
struct CountScans<I> {
    inner: I,
    scanned: u64,
}

impl<I> CountScans<I> {
    fn new(inner: I) -> Self {
        CountScans { inner, scanned: 0 }
    }
}

impl<I: Iterator> Iterator for CountScans<I> {
    type Item = I::Item;

    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        let item = self.inner.next();
        if item.is_some() {
            self.scanned += 1;
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<I> Drop for CountScans<I> {
    fn drop(&mut self) {
        stats::record_tuples_scanned(self.scanned);
    }
}

/// One column's posting index: constant → ascending tuple indices.
pub type ColumnIndex = HashMap<Const, Vec<u32>>;

/// A relation decomposed by [`Relation::into_parts`]: arity, sorted
/// tuples, and whichever column indexes were already built.
pub type RelationParts = (usize, Vec<Box<[Const]>>, Vec<Option<ColumnIndex>>);

/// A relation outgrew the `u32` row-id space: posting lists, snapshot row
/// counts, and delta row remaps all address tuples by `u32`, so row
/// `u32::MAX + 1` cannot be represented. Surfaced as a typed error by
/// [`Database::try_insert`] and the `wdpt-store` bulk paths instead of the
/// silent `as u32` wrap-around the seed had, which would alias row ids past
/// 4Gi tuples and corrupt every index built afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooManyRows {
    /// The row id (= prior tuple count) that did not fit in a `u32`.
    pub rows: u64,
}

impl std::fmt::Display for TooManyRows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "relation row id {} exceeds the u32 index space",
            self.rows
        )
    }
}

impl std::error::Error for TooManyRows {}

/// Checked conversion of a tuple position into the `u32` row-id space used
/// by every posting list and snapshot field.
pub fn row_id(row: usize) -> Result<u32, TooManyRows> {
    u32::try_from(row).map_err(|_| TooManyRows { rows: row as u64 })
}

/// The extension of a single predicate: a set of constant tuples.
///
/// A relation is either **owned** (its tuple block was built eagerly — the
/// insert, bulk-load, and v1 snapshot paths) or **lazy** (a zero-copy
/// [`ColumnarRelation`] view into a shared v2 snapshot buffer, with tuples
/// and indexes decoded behind `OnceLock`s on first touch). The two are
/// indistinguishable through the query API; mutation detaches the backing
/// first (see [`Relation::force_owned`]) so incremental index maintenance
/// can never race a stale lazy decode.
#[derive(Debug, Clone)]
pub struct Relation {
    arity: usize,
    /// Tuple count — known without decoding anything, so `len()` and the
    /// planner's row estimates never force a lazy relation.
    rows: usize,
    /// Zero-copy columnar views, present only on lazily-decoded relations.
    backing: Option<crate::columnar::ColumnarRelation>,
    /// Row-major tuple block; initialized at construction for owned
    /// relations, decoded from `backing` on first whole-row access.
    tuples: OnceLock<Vec<Box<[Const]>>>,
    /// Membership set, built lazily on the first `contains`/`insert` — a
    /// bulk-loaded relation that is only ever scanned and index-probed
    /// never pays the O(n) clone-and-hash of materializing it.
    seen: OnceLock<HashSet<Box<[Const]>>>,
    /// Lazily built per-column index: `column -> constant -> tuple indices`.
    column_index: Vec<OnceLock<HashMap<Const, Vec<u32>>>>,
}

impl Default for Relation {
    fn default() -> Self {
        Relation::new(0)
    }
}

impl Relation {
    fn new(arity: usize) -> Self {
        Relation::owned(arity, Vec::new())
    }

    /// Assembles an owned relation whose tuple block exists up front.
    fn owned(arity: usize, tuples: Vec<Box<[Const]>>) -> Self {
        let rows = tuples.len();
        let lock = OnceLock::new();
        let _ = lock.set(tuples);
        Relation {
            arity,
            rows,
            backing: None,
            tuples: lock,
            seen: OnceLock::new(),
            column_index: (0..arity).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Builds a relation directly from a **strictly sorted** run of tuples
    /// (lexicographic on the `Const` ids, no duplicates), skipping the
    /// per-tuple insert path. This is the bulk-load constructor used by the
    /// `wdpt-store` snapshot loader: tuples arrive pre-sorted and
    /// pre-deduplicated from merged sorted runs, so no per-tuple work is
    /// left at all (the membership set stays lazy until first probed).
    ///
    /// # Panics
    /// Panics (in debug builds) if a tuple has the wrong arity or the run is
    /// not strictly sorted; callers that read untrusted input must validate
    /// first ([`wdpt-store` does, after its checksums]).
    pub fn from_sorted(arity: usize, tuples: Vec<Box<[Const]>>) -> Relation {
        debug_assert!(tuples.iter().all(|t| t.len() == arity));
        debug_assert!(tuples.windows(2).all(|w| w[0] < w[1]), "run not sorted");
        Relation::owned(arity, tuples)
    }

    /// Builds a **lazy** relation over a zero-copy columnar backing: no
    /// tuples are materialized and no indexes are decoded until a query
    /// actually touches them. The caller (the `wdpt-store` v2 decoder) must
    /// have validated the backing's streams — strictly sorted rows, cells
    /// in the constant namespace, row count in the `u32` id space.
    pub fn from_columnar(backing: crate::columnar::ColumnarRelation) -> Relation {
        Relation {
            arity: backing.arity(),
            rows: backing.rows(),
            tuples: OnceLock::new(),
            seen: OnceLock::new(),
            column_index: (0..backing.arity()).map(|_| OnceLock::new()).collect(),
            backing: Some(backing),
        }
    }

    /// True while the relation is still a pure zero-copy view (no tuple
    /// block materialized). Exposed so tests and cold-start accounting can
    /// assert that loading did not secretly decode anything.
    pub fn is_lazy(&self) -> bool {
        self.backing.is_some() && self.tuples.get().is_none()
    }

    /// The row-major tuple block, decoding it from the columnar backing on
    /// first use.
    fn tuple_vec(&self) -> &Vec<Box<[Const]>> {
        self.tuples.get_or_init(|| {
            self.backing
                .as_ref()
                .expect("owned relations initialize tuples at construction")
                .decode_tuples()
        })
    }

    /// Detaches the columnar backing before a mutation: every not-yet-built
    /// column index is decoded from the backing now, and the tuple block is
    /// materialized. Without this, an insert followed by a lazy index
    /// decode would resurrect the pre-insert posting lists from the
    /// snapshot bytes and silently drop the new row.
    fn force_owned(&mut self) {
        let Some(backing) = self.backing.take() else {
            return;
        };
        for (col, cell) in self.column_index.iter_mut().enumerate() {
            if cell.get().is_none() {
                let _ = cell.set(backing.decode_index(col));
            }
        }
        if self.tuples.get().is_none() {
            let _ = self.tuples.set(backing.decode_tuples());
        }
    }

    /// Installs a prebuilt column index (deserialized posting lists), so
    /// [`Relation::matching`] works immediately with zero index rebuild.
    /// Returns `false` (and drops `idx`) if that column's index was already
    /// built. The caller is responsible for `idx` being exactly what
    /// [`Relation::index_for`] would have computed; `wdpt-store` guarantees
    /// this by checksumming serialized indexes and validating posting
    /// targets against the tuple count.
    pub fn install_column_index(&mut self, col: usize, idx: HashMap<Const, Vec<u32>>) -> bool {
        self.column_index[col].set(idx).is_ok()
    }

    /// The built index of a column, or `None` if it has not been built yet.
    /// Unlike [`Relation::index_for`] this never triggers a build — it is
    /// the serialization-side peek used when writing snapshots.
    pub fn built_column_index(&self, col: usize) -> Option<&HashMap<Const, Vec<u32>>> {
        self.column_index[col].get()
    }

    /// Forces every column index to be built now (they are otherwise built
    /// lazily on first probe). Snapshot writers call this so the serialized
    /// relation carries all its posting lists.
    pub fn build_all_indexes(&self) {
        for col in 0..self.arity {
            let _ = self.index_for(col);
        }
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples. Never forces a lazy relation — the count is part
    /// of the columnar header.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Iterates over all tuples (materializing the tuple block of a lazy
    /// relation on first use).
    pub fn tuples(&self) -> impl Iterator<Item = &[Const]> + '_ {
        self.tuple_vec().iter().map(|t| &**t)
    }

    /// Streams `(value, posting_len)` pairs of one column without forcing
    /// a tuple materialization: from the built column index when present,
    /// else from a lazy relation's key directory. Returns `false` when
    /// neither source exists (an owned relation whose index was never
    /// built) — the caller falls back to scanning [`Relation::tuples`].
    /// Pair order is unspecified.
    pub fn scan_posting_lens(&self, col: usize, mut f: impl FnMut(Const, u32)) -> bool {
        if let Some(idx) = self.column_index.get(col).and_then(OnceLock::get) {
            for (c, rows) in idx {
                f(*c, rows.len() as u32);
            }
            return true;
        }
        if let Some(backing) = &self.backing {
            backing.scan_key_dir(col, f);
            return true;
        }
        false
    }

    /// Streams `(value, posting_len)` pairs straight from the serialized
    /// key directory, ignoring any built index. Returns `false` for owned
    /// relations. This is the verification hook: unlike
    /// [`Relation::scan_posting_lens`] (which prefers the built index as
    /// the cheapest truthful source), this always reads what the snapshot
    /// *claims*, so a deep check can compare it against the cells even
    /// after some column was decoded.
    pub fn scan_serialized_posting_lens(&self, col: usize, f: impl FnMut(Const, u32)) -> bool {
        match &self.backing {
            Some(backing) => {
                backing.scan_key_dir(col, f);
                true
            }
            None => false,
        }
    }

    /// Decomposes the relation into its owned tuples and whichever column
    /// indexes were built, without cloning either. This is the bulk
    /// *mutation* counterpart of [`Relation::from_sorted`]: the snapshot
    /// delta-apply and id-remap paths take a loaded relation apart, merge
    /// or translate its sorted run, carry the posting lists over, and
    /// reassemble — instead of re-inserting every tuple and rebuilding
    /// every index from scratch.
    /// Decomposition forces a lazy relation fully — delta application and
    /// id-remapping rewrite the tuple run, so a zero-copy view cannot
    /// survive them anyway.
    pub fn into_parts(mut self) -> RelationParts {
        self.force_owned();
        let indexes = self
            .column_index
            .into_iter()
            .map(OnceLock::into_inner)
            .collect();
        (self.arity, self.tuples.take().unwrap_or_default(), indexes)
    }

    /// The membership set, built on first use from the tuple list.
    fn seen(&self) -> &HashSet<Box<[Const]>> {
        self.seen
            .get_or_init(|| self.tuple_vec().iter().cloned().collect())
    }

    /// Set-membership test.
    pub fn contains(&self, tuple: &[Const]) -> bool {
        self.seen().contains(tuple)
    }

    fn insert(&mut self, tuple: Box<[Const]>) -> Result<bool, TooManyRows> {
        debug_assert_eq!(tuple.len(), self.arity);
        self.force_owned();
        self.seen();
        let seen = self.seen.get_mut().expect("initialized just above");
        if !seen.insert(tuple.clone()) {
            return Ok(false);
        }
        let row = match row_id(self.rows) {
            Ok(row) => row,
            Err(e) => {
                // Leave the relation exactly as it was: the membership set
                // must not claim a tuple the tuple list never received.
                seen.remove(&tuple);
                return Err(e);
            }
        };
        // Update already-built column indexes incrementally instead of
        // discarding them: appending one posting per built column is
        // O(arity), while a rebuild-on-next-use is O(n) per insert.
        for (col, cell) in self.column_index.iter_mut().enumerate() {
            if let Some(idx) = cell.get_mut() {
                idx.entry(tuple[col]).or_default().push(row);
            }
        }
        self.tuples
            .get_mut()
            .expect("force_owned materialized the tuple block")
            .push(tuple);
        self.rows += 1;
        Ok(true)
    }

    fn index_for(&self, col: usize) -> &HashMap<Const, Vec<u32>> {
        self.column_index[col].get_or_init(|| {
            // A lazy relation whose tuples are still packed derives the
            // posting lists straight from the cells blob — cheaper than
            // materializing rows first, and not counted as an index
            // *build* (nothing was recomputed, only decoded).
            if let Some(backing) = &self.backing {
                if self.tuples.get().is_none() {
                    return backing.decode_index(col);
                }
            }
            stats::record_index_build();
            let mut idx: HashMap<Const, Vec<u32>> = HashMap::new();
            for (i, t) in self.tuple_vec().iter().enumerate() {
                // Insert paths reject row ids past u32::MAX and the bulk
                // paths check row counts before `from_sorted`, so this
                // conversion cannot fail for a well-formed relation.
                let row = row_id(i).expect("row count bounded on construction");
                idx.entry(t[col]).or_default().push(row);
            }
            idx
        })
    }

    /// Length of the posting list for `c` in column `col` (building the
    /// column index if needed). This is the exact number of tuples with
    /// `t[col] == c`.
    pub fn posting_len(&self, col: usize, c: Const) -> usize {
        stats::record_index_probe();
        self.index_for(col).get(&c).map_or(0, Vec::len)
    }

    /// Estimated number of tuples matching `pattern` for join-ordering
    /// heuristics: exact (0/1) when fully bound, the shortest posting list
    /// among bound columns when partially bound, and the relation size when
    /// unbound. Never underestimates except for repeated-constant patterns,
    /// where the true count can only be smaller.
    pub fn estimate_matching(&self, pattern: &[Option<Const>]) -> usize {
        debug_assert_eq!(pattern.len(), self.arity);
        let mut best: Option<usize> = None;
        let mut fully_bound = true;
        for (col, p) in pattern.iter().enumerate() {
            match p {
                Some(c) => {
                    let len = self.posting_len(col, *c);
                    if best.is_none_or(|b| len < b) {
                        best = Some(len);
                    }
                }
                None => fully_bound = false,
            }
        }
        match best {
            Some(0) => 0,
            Some(_) if fully_bound => {
                let t: Vec<Const> = pattern.iter().map(|c| c.unwrap()).collect();
                usize::from(self.contains(&t))
            }
            Some(len) => len,
            None => self.len(),
        }
    }

    /// Like [`Relation::matching`] but always performs a full scan,
    /// ignoring the column indexes. Exists for the index-ablation
    /// benchmarks (`benches/ablations.rs`) — never faster in practice.
    pub fn matching_unindexed<'a>(
        &'a self,
        pattern: &'a [Option<Const>],
    ) -> impl Iterator<Item = &'a [Const]> + 'a {
        debug_assert_eq!(pattern.len(), self.arity);
        CountScans::new(self.tuples()).filter(move |t| {
            pattern
                .iter()
                .zip(t.iter())
                .all(|(p, v)| p.is_none_or(|c| c == *v))
        })
    }

    /// Iterates over tuples matching `pattern`: position `i` must equal
    /// `pattern[i]` when it is `Some(c)`. Uses the column index of the most
    /// selective bound position when one exists.
    pub fn matching<'a>(
        &'a self,
        pattern: &'a [Option<Const>],
    ) -> Box<dyn Iterator<Item = &'a [Const]> + 'a> {
        debug_assert_eq!(pattern.len(), self.arity);
        // Pick the bound column whose posting list is shortest.
        let mut best: Option<(usize, usize)> = None; // (column, postings len)
        for (col, p) in pattern.iter().enumerate() {
            if let Some(c) = p {
                let len = self.posting_len(col, *c);
                if best.is_none_or(|(_, bl)| len < bl) {
                    best = Some((col, len));
                }
            }
        }
        let matches = move |t: &&[Const]| {
            pattern
                .iter()
                .zip(t.iter())
                .all(|(p, v)| p.is_none_or(|c| c == *v))
        };
        match best {
            Some((col, len)) => {
                // Histogram recording costs several atomic RMWs per probe —
                // too much for this hot path to pay unconditionally, so the
                // distribution is only collected while tracing is on (i.e.
                // during profiled runs).
                if wdpt_obs::tracing_enabled() {
                    histogram!("db.posting_list_len").record(len as u64);
                }
                let c = pattern[col].expect("bound column");
                let postings = self
                    .index_for(col)
                    .get(&c)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                let tuples = self.tuple_vec();
                Box::new(
                    CountScans::new(postings.iter().map(move |&i| &*tuples[i as usize]))
                        .filter(matches),
                )
            }
            None => Box::new(CountScans::new(self.tuples()).filter(matches)),
        }
    }

    /// Forces full materialization and cross-checks every posting entry
    /// against the tuple block: ascending in-range rows, targets whose
    /// cell equals the key, and lists that jointly cover every row exactly
    /// once per column. `wdpt-store verify` runs this to extend the
    /// load-time stream validation of lazily-decoded snapshots to the full
    /// depth the v1 eager decoder checked inline.
    pub fn verify_deep(&self) -> Result<(), String> {
        let tuples = self.tuple_vec();
        if tuples.len() != self.rows {
            return Err(format!(
                "tuple block holds {} rows but the header declares {}",
                tuples.len(),
                self.rows
            ));
        }
        if let Some(t) = tuples.iter().find(|t| t.len() != self.arity) {
            return Err(format!(
                "tuple of arity {} in a relation of arity {}",
                t.len(),
                self.arity
            ));
        }
        for col in 0..self.arity {
            let idx = self.index_for(col);
            let mut covered = 0usize;
            for (key, rows) in idx {
                if rows.is_empty() {
                    return Err(format!("column {col}: empty posting list"));
                }
                if !rows.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("column {col}: posting list not ascending"));
                }
                for &row in rows {
                    let cell = tuples
                        .get(row as usize)
                        .ok_or_else(|| format!("column {col}: posting row {row} out of range"))?
                        .get(col)
                        .copied();
                    if cell != Some(*key) {
                        return Err(format!(
                            "column {col}: posting row {row} does not hold the key"
                        ));
                    }
                }
                covered += rows.len();
            }
            if covered != self.rows {
                return Err(format!(
                    "column {col}: posting lists cover {covered} of {} rows",
                    self.rows
                ));
            }
        }
        Ok(())
    }
}

/// A database: one [`Relation`] per predicate, plus the active domain.
///
/// The active domain is computed lazily: eagerly deriving it at
/// construction would force every lazily-decoded relation of a zero-copy
/// snapshot, defeating the near-constant-time load. The first
/// [`Database::active_domain`] call pays one streaming pass over key
/// directories (or tuple scans for unindexed owned relations); inserts
/// afterwards maintain it incrementally, exactly as before.
#[derive(Debug, Default, Clone)]
pub struct Database {
    relations: HashMap<Pred, Relation>,
    active_domain: OnceLock<BTreeSet<Const>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Assembles a database from bulk-constructed relations (see
    /// [`Relation::from_sorted`] and [`Relation::from_columnar`]). The
    /// active domain stays lazy — see the type-level docs.
    ///
    /// # Panics
    /// Panics if the same predicate appears twice.
    pub fn from_sorted(relations: Vec<(Pred, Relation)>) -> Database {
        let mut map = HashMap::with_capacity(relations.len());
        for (pred, rel) in relations {
            assert!(
                map.insert(pred, rel).is_none(),
                "predicate appears in two relations"
            );
        }
        Database {
            relations: map,
            active_domain: OnceLock::new(),
        }
    }

    /// Inserts a ground tuple into predicate `pred`. Returns `true` if the
    /// tuple was new.
    ///
    /// # Panics
    /// Panics if `pred` was already used at a different arity (malformed
    /// schema — a programming error in the caller), or if the relation
    /// already holds `u32::MAX` tuples (row ids are `u32`; streaming paths
    /// that can realistically grow that far use [`Database::try_insert`]
    /// and surface [`TooManyRows`] as a typed error instead).
    pub fn insert(&mut self, pred: Pred, tuple: Vec<Const>) -> bool {
        self.try_insert(pred, tuple)
            .expect("relation exceeds the u32 row-id space")
    }

    /// Like [`Database::insert`], but row-id exhaustion (more than
    /// `u32::MAX` tuples in one relation) is a typed [`TooManyRows`] error
    /// instead of a panic. The relation is left unchanged on error.
    ///
    /// # Panics
    /// Panics if `pred` was already used at a different arity (malformed
    /// schema — a programming error in the caller).
    pub fn try_insert(&mut self, pred: Pred, tuple: Vec<Const>) -> Result<bool, TooManyRows> {
        let arity = tuple.len();
        // Remember the cells only when the domain was already computed —
        // the common bulk path (domain never asked for) pays no clone.
        let cells = self.active_domain.get().map(|_| tuple.clone());
        let rel = self
            .relations
            .entry(pred)
            .or_insert_with(|| Relation::new(arity));
        assert_eq!(
            rel.arity(),
            arity,
            "predicate used with inconsistent arities"
        );
        let inserted = rel.insert(tuple.into_boxed_slice())?;
        if inserted {
            // Maintain the active domain only if it was already computed;
            // a never-asked-for domain is derived from scratch on first
            // access and will see this tuple then.
            if let (Some(domain), Some(cells)) = (self.active_domain.get_mut(), cells) {
                for c in cells {
                    domain.insert(c);
                }
            }
        }
        Ok(inserted)
    }

    /// Inserts a ground atom. Returns `true` if new.
    ///
    /// # Panics
    /// Panics if the atom contains variables.
    pub fn insert_atom(&mut self, atom: &Atom) -> bool {
        let tuple = atom
            .ground_tuple()
            .expect("Database::insert_atom requires a ground atom");
        self.insert(atom.pred, tuple)
    }

    /// The relation for `pred`, if any tuple was ever inserted for it.
    pub fn relation(&self, pred: Pred) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// True iff the ground atom is in the database.
    pub fn contains_atom(&self, atom: &Atom) -> bool {
        match atom.ground_tuple() {
            Some(t) => self
                .relations
                .get(&atom.pred)
                .is_some_and(|r| r.contains(&t)),
            None => false,
        }
    }

    /// The active domain: all constants occurring in some tuple. Computed
    /// on first use; when a relation has built indexes or a columnar key
    /// directory, its distinct constants stream from those instead of a
    /// full tuple scan, so lazy relations stay unmaterialized.
    pub fn active_domain(&self) -> &BTreeSet<Const> {
        self.active_domain.get_or_init(|| {
            let mut domain: Vec<Const> = Vec::new();
            for rel in self.relations.values() {
                for col in 0..rel.arity() {
                    if !rel.scan_posting_lens(col, |c, _| domain.push(c)) {
                        domain.extend(rel.tuples().map(|t| t[col]));
                    }
                }
            }
            domain.sort_unstable();
            domain.dedup();
            // Collecting from a sorted iterator lets BTreeSet bulk-build.
            domain.into_iter().collect()
        })
    }

    /// Total number of tuples across relations (the paper's `|D|` up to a
    /// constant factor).
    pub fn size(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Number of distinct predicates with at least one tuple.
    pub fn predicate_count(&self) -> usize {
        self.relations.len()
    }

    /// Iterates over `(predicate, relation)` pairs in unspecified order.
    pub fn relations(&self) -> impl Iterator<Item = (Pred, &Relation)> + '_ {
        self.relations.iter().map(|(&p, r)| (p, r))
    }

    /// Consumes the database into its owned relations, in unspecified
    /// order. Paired with [`Database::from_sorted`], this lets bulk
    /// transformations (snapshot delta application, interner remapping)
    /// move untouched relations — tuples, built indexes and all — into the
    /// result instead of copying them tuple by tuple.
    pub fn into_relations(self) -> impl Iterator<Item = (Pred, Relation)> {
        self.relations.into_iter()
    }

    /// Renders the database as a sorted list of ground atoms.
    pub fn display(&self, interner: &Interner) -> String {
        let mut lines: Vec<String> = Vec::new();
        for (p, rel) in &self.relations {
            for t in rel.tuples() {
                lines.push(format!(
                    "{}({})",
                    interner.pred_name(*p),
                    crate::interner::join_display(t, |c| interner.const_name(*c).to_owned())
                ));
            }
        }
        lines.sort();
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db3() -> (Interner, Database, Pred) {
        let mut i = Interner::new();
        let e = i.pred("e");
        let (a, b, c) = (i.constant("a"), i.constant("b"), i.constant("c"));
        let mut db = Database::new();
        db.insert(e, vec![a, b]);
        db.insert(e, vec![b, c]);
        db.insert(e, vec![a, c]);
        (i, db, e)
    }

    #[test]
    fn insert_dedups() {
        let (mut i, mut db, e) = db3();
        let a = i.constant("a");
        let b = i.constant("b");
        assert!(!db.insert(e, vec![a, b]));
        assert_eq!(db.size(), 3);
    }

    #[test]
    fn active_domain_tracks_constants() {
        let (_, db, _) = db3();
        assert_eq!(db.active_domain().len(), 3);
    }

    #[test]
    fn matching_with_bound_first_column() {
        let (mut i, db, e) = db3();
        let a = i.constant("a");
        assert_eq!(rel_count(&db, e, &[Some(a), None]), 2);
    }

    #[test]
    fn matching_with_bound_second_column() {
        let (mut i, db, e) = db3();
        let c = i.constant("c");
        assert_eq!(rel_count(&db, e, &[None, Some(c)]), 2);
    }

    #[test]
    fn matching_fully_bound() {
        let (mut i, db, e) = db3();
        let a = i.constant("a");
        let b = i.constant("b");
        assert_eq!(rel_count(&db, e, &[Some(a), Some(b)]), 1);
        assert_eq!(rel_count(&db, e, &[Some(b), Some(a)]), 0);
    }

    fn rel_count(db: &Database, p: Pred, pat: &[Option<Const>]) -> usize {
        db.relation(p).unwrap().matching(pat).count()
    }

    #[test]
    fn matching_unbound_scans_all() {
        let (_, db, e) = db3();
        assert_eq!(rel_count(&db, e, &[None, None]), 3);
    }

    #[test]
    fn contains_atom_checks_groundness() {
        let (mut i, db, e) = db3();
        let a = i.constant("a");
        let b = i.constant("b");
        let x = i.var("x");
        let ground = Atom::new(e, vec![a.into(), b.into()]);
        let open = Atom::new(e, vec![x.into(), b.into()]);
        assert!(db.contains_atom(&ground));
        assert!(!db.contains_atom(&open));
    }

    #[test]
    #[should_panic(expected = "inconsistent arities")]
    fn arity_mismatch_panics() {
        let (mut i, mut db, e) = db3();
        let a = i.constant("a");
        db.insert(e, vec![a]);
    }

    #[test]
    fn row_ids_are_checked_not_wrapped() {
        // The full 32-bit range is representable…
        assert_eq!(row_id(0), Ok(0));
        assert_eq!(row_id(u32::MAX as usize), Ok(u32::MAX));
        // …and one past it is a typed error, not a silent wrap to row 0.
        let err = row_id(u32::MAX as usize + 1).unwrap_err();
        assert_eq!(
            err,
            TooManyRows {
                rows: u32::MAX as u64 + 1
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("u32"), "unhelpful message: {msg}");
    }

    #[test]
    fn try_insert_matches_insert_on_the_ok_path() {
        let (mut i, mut db, e) = db3();
        let (a, d) = (i.constant("a"), i.constant("d"));
        assert_eq!(db.try_insert(e, vec![a, d]), Ok(true));
        assert_eq!(db.try_insert(e, vec![a, d]), Ok(false));
        assert_eq!(db.size(), 4);
        assert!(db.active_domain().contains(&d));
    }

    #[test]
    fn insert_after_query_rebuilds_index() {
        let (mut i, mut db, e) = db3();
        let a = i.constant("a");
        // Build the index.
        assert_eq!(rel_count(&db, e, &[Some(a), None]), 2);
        // Mutate, then query again: index must reflect the new tuple.
        let d = i.constant("d");
        db.insert(e, vec![a, d]);
        assert_eq!(rel_count(&db, e, &[Some(a), None]), 3);
    }

    #[test]
    fn interleaved_inserts_and_queries_do_not_rebuild_indexes() {
        // Regression test for the quadratic index invalidation: the seed
        // discarded every column index on every insert, so an interleaved
        // load/query workload rebuilt an O(n) index per insert. With
        // incremental maintenance each column index is built exactly once.
        let mut i = Interner::new();
        let e = i.pred("e");
        let consts: Vec<Const> = (0..64).map(|j| i.constant(&format!("k{j}"))).collect();
        let mut db = Database::new();
        db.insert(e, vec![consts[0], consts[1]]);
        let before = crate::stats::snapshot();
        for j in 1..consts.len() - 1 {
            db.insert(e, vec![consts[j], consts[j + 1]]);
            // Query between inserts: results must include the new tuple…
            assert_eq!(rel_count(&db, e, &[Some(consts[j]), None]), 1);
            assert_eq!(rel_count(&db, e, &[None, Some(consts[j + 1])]), 1);
        }
        let delta = crate::stats::snapshot().since(&before);
        // …and the two column indexes are built at most once each (other
        // tests run concurrently, so only *this relation's* builds — bounded
        // by a small constant — may show up; 62 rebuilds would mean the
        // quadratic behavior is back).
        assert!(
            delta.index_builds <= 16,
            "interleaved insert/query workload rebuilt indexes {} times",
            delta.index_builds
        );
        // Probes happened through the index, not via full scans: each
        // indexed query scans exactly its posting list (1 tuple here).
        assert!(delta.index_probes >= 124, "probes = {}", delta.index_probes);
        assert!(
            delta.tuples_scanned <= 2 * 62 + 16,
            "scans = {} — queries fell back to full scans",
            delta.tuples_scanned
        );
    }

    #[test]
    fn estimate_matching_uses_posting_lists() {
        let mut i = Interner::new();
        let e = i.pred("e");
        let hub = i.constant("hub");
        let rare = i.constant("rare");
        let mut db = Database::new();
        for j in 0..50 {
            let s = i.constant(&format!("s{j}"));
            db.insert(e, vec![s, hub]);
        }
        db.insert(e, vec![rare, hub]);
        let rel = db.relation(e).unwrap();
        // Unbound: relation size.
        assert_eq!(rel.estimate_matching(&[None, None]), 51);
        // Bound on a selective column: the posting list length, NOT len().
        assert_eq!(rel.estimate_matching(&[Some(rare), None]), 1);
        // Bound on an unselective column: its posting list length.
        assert_eq!(rel.estimate_matching(&[None, Some(hub)]), 51);
        // Fully bound: exact 0/1.
        assert_eq!(rel.estimate_matching(&[Some(rare), Some(hub)]), 1);
        assert_eq!(rel.estimate_matching(&[Some(hub), Some(rare)]), 0);
        // Bound to an absent constant: 0.
        let ghost = i.constant("ghost");
        assert_eq!(rel.estimate_matching(&[Some(ghost), None]), 0);
    }

    #[test]
    fn scan_counts_flush_on_drop_even_when_not_exhausted() {
        let (mut i, db, e) = db3();
        let a = i.constant("a");
        let rel = db.relation(e).unwrap();
        let pat = [Some(a), None];
        let before = crate::stats::snapshot();
        {
            let mut it = rel.matching(&pat);
            let _ = it.next(); // examine one candidate, then abandon
        }
        let mid = crate::stats::snapshot().since(&before);
        assert!(mid.tuples_scanned >= 1, "partial scan not flushed");
        // Exhausting an iterator flushes the full candidate count.
        assert_eq!(rel.matching(&[Some(a), None]).count(), 2);
        let after = crate::stats::snapshot().since(&before);
        assert!(after.tuples_scanned >= mid.tuples_scanned + 2);
    }

    #[test]
    fn from_sorted_matches_insert_built_database() {
        let (mut i, db, e) = db3();
        let a = i.constant("a");
        // Rebuild the same relation through the bulk path.
        let mut tuples: Vec<Box<[Const]>> =
            db.relation(e).unwrap().tuples().map(Box::from).collect();
        tuples.sort_unstable();
        let rel = Relation::from_sorted(2, tuples);
        let bulk = Database::from_sorted(vec![(e, rel)]);
        assert_eq!(bulk.size(), db.size());
        assert_eq!(bulk.active_domain(), db.active_domain());
        assert_eq!(
            bulk.relation(e).unwrap().matching(&[Some(a), None]).count(),
            db.relation(e).unwrap().matching(&[Some(a), None]).count()
        );
        let b = i.constant("b");
        assert!(bulk.relation(e).unwrap().contains(&[a, b]));
    }

    #[test]
    fn installed_column_index_answers_probes_without_a_build() {
        let (mut i, db, e) = db3();
        let a = i.constant("a");
        let src = db.relation(e).unwrap();
        src.build_all_indexes();
        let mut tuples: Vec<Box<[Const]>> = src.tuples().map(Box::from).collect();
        tuples.sort_unstable();
        // Serialize-shape copy of column 0's postings, remapped to the
        // sorted row order.
        let order: Vec<usize> = tuples
            .iter()
            .map(|t| src.tuples().position(|u| u == &**t).unwrap())
            .collect();
        let mut rel = Relation::from_sorted(2, tuples);
        for col in 0..2 {
            let mut idx: HashMap<Const, Vec<u32>> = HashMap::new();
            for (row, &orig) in order.iter().enumerate() {
                let key = src.tuples().nth(orig).unwrap()[col];
                idx.entry(key).or_default().push(row_id(row).unwrap());
            }
            assert!(rel.install_column_index(col, idx));
            assert!(rel.built_column_index(col).is_some());
        }
        let before = crate::stats::snapshot();
        assert_eq!(rel.matching(&[Some(a), None]).count(), 2);
        let delta = crate::stats::snapshot().since(&before);
        // The probe used the installed index; concurrent tests may build
        // indexes of their own, so only assert our probes were indexed.
        assert!(delta.index_probes >= 1);
        // A second install on the same column is refused.
        assert!(!rel.install_column_index(0, HashMap::new()));
    }

    #[test]
    fn bulk_loaded_relation_stays_consistent_under_interleaved_mutation() {
        // Guards the snapshot/delta-apply path: a relation assembled via
        // `from_sorted` with *installed* indexes and a still-lazy `seen`
        // set must keep `insert`, `contains`, and `posting_len` mutually
        // consistent when loads and mutations interleave — the `seen` set
        // materializes mid-stream, after some inserts already happened.
        let mut i = Interner::new();
        let e = i.pred("e");
        let consts: Vec<Const> = (0..24).map(|j| i.constant(&format!("c{j}"))).collect();
        let mut tuples: Vec<Box<[Const]>> = (0..8)
            .map(|j| vec![consts[j], consts[j + 1]].into_boxed_slice())
            .collect();
        tuples.sort_unstable();
        let mut indexes: Vec<HashMap<Const, Vec<u32>>> = vec![HashMap::new(), HashMap::new()];
        for (row, t) in tuples.iter().enumerate() {
            for col in 0..2 {
                indexes[col]
                    .entry(t[col])
                    .or_default()
                    .push(row_id(row).unwrap());
            }
        }
        let mut rel = Relation::from_sorted(2, tuples);
        for (col, idx) in indexes.into_iter().enumerate() {
            assert!(rel.install_column_index(col, idx));
        }
        let mut db = Database::from_sorted(vec![(e, rel)]);

        // Interleave: probe (posting_len through the installed index),
        // insert a new tuple, membership-check both old and new tuples.
        for j in 8..16 {
            let (a, b) = (consts[j], consts[j + 1]);
            let rel = db.relation(e).unwrap();
            assert_eq!(rel.posting_len(0, a), 0, "tuple not inserted yet");
            assert!(!rel.contains(&[a, b]));
            assert!(db.insert(e, vec![a, b]));
            assert!(!db.insert(e, vec![a, b]), "re-insert must dedup");
            let rel = db.relation(e).unwrap();
            // The installed index was maintained incrementally…
            assert_eq!(rel.posting_len(0, a), 1);
            assert_eq!(rel.posting_len(1, b), 1);
            // …and membership agrees with it, for old and new tuples alike.
            assert!(rel.contains(&[a, b]));
            assert!(rel.contains(&[consts[0], consts[1]]));
            assert_eq!(rel.matching(&[Some(a), None]).count(), 1);
        }
        let rel = db.relation(e).unwrap();
        assert_eq!(rel.len(), 16);
        // Every tuple is reachable through index, scan, and membership.
        for j in 0..16 {
            let (a, b) = (consts[j], consts[j + 1]);
            assert!(rel.contains(&[a, b]));
            assert_eq!(rel.matching(&[Some(a), Some(b)]).count(), 1);
        }
        assert_eq!(db.active_domain().len(), 17);
    }

    #[test]
    fn into_parts_round_trips_tuples_and_built_indexes() {
        let (_, db, e) = db3();
        let rel = db.relation(e).unwrap();
        rel.build_all_indexes();
        let mut rels: Vec<(Pred, Relation)> = db.into_relations().collect();
        assert_eq!(rels.len(), 1);
        let (pred, rel) = rels.pop().unwrap();
        assert_eq!(pred, e);
        let (arity, mut tuples, indexes) = rel.into_parts();
        assert_eq!(arity, 2);
        assert_eq!(tuples.len(), 3);
        assert!(indexes.iter().all(Option::is_some), "built indexes survive");
        // Reassemble and compare against a fresh build.
        tuples.sort_unstable();
        let rebuilt = Relation::from_sorted(arity, tuples);
        assert_eq!(rebuilt.len(), 3);
    }

    #[test]
    fn database_is_sync_and_shareable_across_threads() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Database>();
        let (mut i, db, e) = db3();
        let a = i.constant("a");
        let c = i.constant("c");
        std::thread::scope(|scope| {
            let h1 = scope.spawn(|| db.relation(e).unwrap().matching(&[Some(a), None]).count());
            let h2 = scope.spawn(|| db.relation(e).unwrap().matching(&[None, Some(c)]).count());
            assert_eq!(h1.join().unwrap(), 2);
            assert_eq!(h2.join().unwrap(), 2);
        });
    }
}
