//! Zero-copy columnar relation backing for WDPTSNAP v2 snapshots.
//!
//! A [`ColumnarRelation`] is a set of offset+len views into one shared
//! `Arc<[u8]>` holding the raw snapshot bytes: per column, a **cells blob**
//! (the column run, zigzag-delta varint coded) and a **key directory**
//! (ascending distinct values with posting-list lengths, delta varint
//! coded). Building one costs pointer arithmetic only — the store crate
//! validates the streams once at load time (after CRC verification), and
//! the decoders here run lazily on first touch, behind the `OnceLock`s of
//! [`crate::database::Relation`].
//!
//! Posting row-lists are **not** stored: for a strictly sorted tuple run
//! they are exactly "group ascending row ids by cell value", so
//! [`ColumnarRelation::decode_index`] derives them from the cells blob in
//! one forward pass — the same lists an eager rebuild would produce, at a
//! fraction of the snapshot bytes. The key directory exists so statistics
//! (distinct counts, posting-length sketches) and the active domain can be
//! computed by a streaming scan without materializing anything.
//!
//! The varint/zigzag codecs live here (rather than in the store crate) so
//! the encoder, the load-time validator, and the lazy decoders share one
//! definition.

use crate::database::ColumnIndex;
use crate::term::Const;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// Appends `v` as a little-endian base-128 varint (LEB128, 1–10 bytes).
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads one varint starting at `*pos`, advancing `*pos` past it. Returns
/// `None` on a truncated or overlong (≥ 10 continuation bytes) encoding —
/// never panics, never reads past `bytes`.
pub fn read_uvarint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed delta onto unsigned so small magnitudes of either
/// sign encode in few varint bytes.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes a column run as zigzag varints of consecutive differences
/// (previous value starts at 0).
pub fn encode_cells(out: &mut Vec<u8>, cells: impl Iterator<Item = u32>) {
    let mut prev = 0i64;
    for c in cells {
        write_uvarint(out, zigzag(i64::from(c) - prev));
        prev = i64::from(c);
    }
}

/// Encodes the key directory: per ascending distinct value, the key delta
/// (first key absolute, then strictly positive gaps) followed by its
/// posting-list length.
pub fn encode_key_dir(out: &mut Vec<u8>, pairs: impl Iterator<Item = (u32, u32)>) {
    let mut prev: Option<u32> = None;
    for (key, len) in pairs {
        let delta = match prev {
            None => u64::from(key),
            Some(p) => u64::from(key) - u64::from(p),
        };
        write_uvarint(out, delta);
        write_uvarint(out, u64::from(len));
        prev = Some(key);
    }
}

/// One column's views into the shared snapshot buffer.
#[derive(Debug, Clone)]
pub struct ColumnSlices {
    /// Byte range of the zigzag-delta cells blob.
    pub cells: Range<usize>,
    /// Number of distinct values (entries in the key directory).
    pub keys: usize,
    /// Byte range of the delta-coded `(key, posting_len)` directory.
    pub key_dir: Range<usize>,
}

/// An immutable relation whose payload lives inside a shared snapshot
/// buffer. Construction is pointer setup; all decoding is deferred to the
/// accessors below. The store crate is responsible for having validated
/// the streams (varint well-formedness, counts, sortedness, namespaces)
/// before handing ranges here, so the decoders are clamped/defensive but
/// never report errors.
#[derive(Debug, Clone)]
pub struct ColumnarRelation {
    raw: Arc<[u8]>,
    arity: usize,
    rows: usize,
    columns: Vec<ColumnSlices>,
}

impl ColumnarRelation {
    /// Wraps pre-validated ranges of `raw`. `columns.len()` must equal
    /// `arity`; `rows` must fit the `u32` row-id space.
    pub fn new(raw: Arc<[u8]>, arity: usize, rows: usize, columns: Vec<ColumnSlices>) -> Self {
        debug_assert_eq!(columns.len(), arity);
        debug_assert!(u32::try_from(rows).is_ok());
        ColumnarRelation {
            raw,
            arity,
            rows,
            columns,
        }
    }

    /// Number of tuples (known without decoding anything).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Decodes one column run into its `rows` values. Validated streams
    /// yield exactly `rows` in-range cells; a malformed stream (unreachable
    /// through the store's load path) is clamped and zero-padded so callers
    /// can never index out of bounds.
    fn decode_cells(&self, col: usize) -> Vec<u32> {
        let blob = &self.raw[self.columns[col].cells.clone()];
        let mut pos = 0usize;
        let mut prev = 0i64;
        let mut out = Vec::with_capacity(self.rows);
        while out.len() < self.rows {
            let Some(d) = read_uvarint(blob, &mut pos) else {
                break;
            };
            prev = prev.saturating_add(unzigzag(d));
            out.push(prev.clamp(0, i64::from(u32::MAX)) as u32);
        }
        out.resize(self.rows, 0);
        out
    }

    /// Materializes the row-major tuple block — the expensive step v1
    /// decode paid eagerly for every relation, deferred here until a scan
    /// or index probe actually needs whole rows.
    pub fn decode_tuples(&self) -> Vec<Box<[Const]>> {
        if self.arity == 0 {
            return (0..self.rows).map(|_| Box::from(&[][..])).collect();
        }
        let cols: Vec<Vec<u32>> = (0..self.arity).map(|c| self.decode_cells(c)).collect();
        (0..self.rows)
            .map(|r| cols.iter().map(|c| Const(c[r])).collect())
            .collect()
    }

    /// Derives one column's posting index from its cells run: ascending row
    /// ids grouped per value, identical to what an eager rebuild over the
    /// sorted tuples would produce.
    pub fn decode_index(&self, col: usize) -> ColumnIndex {
        let cells = self.decode_cells(col);
        let mut idx: ColumnIndex = HashMap::with_capacity(self.columns[col].keys.min(self.rows));
        for (row, &c) in cells.iter().enumerate() {
            // `rows` is bounded to the u32 id space at construction.
            idx.entry(Const(c)).or_default().push(row as u32);
        }
        idx
    }

    /// Streams `(value, posting_len)` pairs of one column from the key
    /// directory — distinct values in ascending order, no allocation, no
    /// cell decode. This is what statistics and the active domain read.
    pub fn scan_key_dir(&self, col: usize, mut f: impl FnMut(Const, u32)) {
        let blob = &self.raw[self.columns[col].key_dir.clone()];
        let mut pos = 0usize;
        let mut key = 0u64;
        for i in 0..self.columns[col].keys {
            let Some(delta) = read_uvarint(blob, &mut pos) else {
                return;
            };
            key = if i == 0 { delta } else { key.saturating_add(delta) };
            let Some(len) = read_uvarint(blob, &mut pos) else {
                return;
            };
            f(
                Const(key.min(u64::from(u32::MAX)) as u32),
                len.min(u64::from(u32::MAX)) as u32,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips_across_magnitudes() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            write_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
        assert_eq!(read_uvarint(&buf, &mut pos), None, "exhausted");
    }

    #[test]
    fn uvarint_rejects_truncated_and_overlong() {
        // Truncated: continuation bit set, no next byte.
        assert_eq!(read_uvarint(&[0x80], &mut 0), None);
        // Overlong: eleven continuation bytes exceed 64 bits of payload.
        let overlong = [0x80u8; 10];
        let mut with_end = overlong.to_vec();
        with_end.push(0x01);
        assert_eq!(read_uvarint(&with_end, &mut 0), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::from(u32::MAX), i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small: |v| ≤ 63 fits one varint byte.
        assert!(zigzag(-63) < 128);
        assert!(zigzag(63) < 128);
    }

    #[test]
    fn cells_and_index_round_trip_through_blobs() {
        let col0 = [3u32, 3, 3, 7, 9, 9];
        let col1 = [10u32, 2, 30, 1, 500, 4];
        let mut raw = Vec::new();
        let c0 = {
            let start = raw.len();
            encode_cells(&mut raw, col0.iter().copied());
            start..raw.len()
        };
        let c1 = {
            let start = raw.len();
            encode_cells(&mut raw, col1.iter().copied());
            start..raw.len()
        };
        let d0 = {
            let start = raw.len();
            encode_key_dir(&mut raw, [(3u32, 3u32), (7, 1), (9, 2)].into_iter());
            start..raw.len()
        };
        let d1 = {
            let start = raw.len();
            encode_key_dir(
                &mut raw,
                [(1u32, 1u32), (2, 1), (4, 1), (10, 1), (30, 1), (500, 1)].into_iter(),
            );
            start..raw.len()
        };
        let rel = ColumnarRelation::new(
            Arc::from(raw.into_boxed_slice()),
            2,
            6,
            vec![
                ColumnSlices {
                    cells: c0,
                    keys: 3,
                    key_dir: d0,
                },
                ColumnSlices {
                    cells: c1,
                    keys: 6,
                    key_dir: d1,
                },
            ],
        );
        let tuples = rel.decode_tuples();
        assert_eq!(tuples.len(), 6);
        assert_eq!(&*tuples[3], &[Const(7), Const(1)]);
        let idx = rel.decode_index(0);
        assert_eq!(idx[&Const(3)], vec![0, 1, 2]);
        assert_eq!(idx[&Const(9)], vec![4, 5]);
        let mut dir = Vec::new();
        rel.scan_key_dir(0, |k, n| dir.push((k.0, n)));
        assert_eq!(dir, vec![(3, 3), (7, 1), (9, 2)]);
    }

    #[test]
    fn malformed_streams_clamp_instead_of_panicking() {
        // Truncated cells blob, oversized claims: decoders must stay in
        // bounds and produce exactly `rows` tuples regardless.
        let rel = ColumnarRelation::new(
            Arc::from(vec![0x80u8].into_boxed_slice()),
            1,
            4,
            vec![ColumnSlices {
                cells: 0..1,
                keys: 9,
                key_dir: 0..1,
            }],
        );
        let tuples = rel.decode_tuples();
        assert_eq!(tuples.len(), 4);
        let idx = rel.decode_index(0);
        assert_eq!(idx.values().map(Vec::len).sum::<usize>(), 4);
        let mut seen = 0;
        rel.scan_key_dir(0, |_, _| seen += 1);
        assert_eq!(seen, 0, "truncated directory stops cleanly");
    }
}
