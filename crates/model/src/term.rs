//! Terms: variables, constants, predicate symbols.
//!
//! The paper (Section 2) fixes disjoint countably infinite sets **X** of
//! variables and **U** of constants; a term is an element of `X ∪ U`. All
//! three symbol kinds are thin `u32` newtypes over [`crate::Interner`] ids,
//! so terms are `Copy` and comparisons are integer comparisons.

use crate::interner::Interner;
use std::fmt;

/// A variable from the set **X**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A constant from the set **U**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Const(pub u32);

/// A predicate (relation) symbol from the schema `σ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(pub u32);

/// A term: either a variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable `?x ∈ X`.
    Var(Var),
    /// A constant `u ∈ U`.
    Const(Const),
}

impl Term {
    /// Returns the variable inside, if this term is one.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant inside, if this term is one.
    pub fn as_const(self) -> Option<Const> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// True iff the term is a variable.
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Renders the term using `interner`. Variables get a `?` sigil, matching
    /// the text format of [`crate::parse`].
    pub fn display(self, interner: &Interner) -> String {
        match self {
            Term::Var(v) => format!("?{}", interner.var_name(v)),
            Term::Const(c) => interner.const_name(c).to_owned(),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Const> for Term {
    fn from(c: Const) -> Self {
        Term::Const(c)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?v{}", self.0)
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_accessors() {
        let mut i = Interner::new();
        let x = i.var("x");
        let c = i.constant("a");
        let tv: Term = x.into();
        let tc: Term = c.into();
        assert_eq!(tv.as_var(), Some(x));
        assert_eq!(tv.as_const(), None);
        assert_eq!(tc.as_const(), Some(c));
        assert_eq!(tc.as_var(), None);
        assert!(tv.is_var());
        assert!(!tc.is_var());
    }

    #[test]
    fn term_display_uses_sigil() {
        let mut i = Interner::new();
        let x = i.var("x");
        let c = i.constant("Swim");
        assert_eq!(Term::Var(x).display(&i), "?x");
        assert_eq!(Term::Const(c).display(&i), "Swim");
    }
}
