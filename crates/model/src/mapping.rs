//! Partial mappings `h : X → U` and the subsumption order `⊑`.
//!
//! Answers to WDPTs are partial mappings (Definition 2); the paper compares
//! them by *subsumption*: `h ⊑ h'` iff `dom(h) ⊆ dom(h')` and the two agree
//! on `dom(h)`. Mappings are stored as vectors sorted by variable id, so
//! equality, hashing, and subsumption checks are linear merges and a set of
//! mappings can be deduplicated canonically.

use crate::interner::Interner;
use crate::term::{Const, Var};
use std::collections::BTreeSet;
use std::fmt;

/// A partial mapping from variables to constants, sorted by variable id.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Mapping {
    pairs: Vec<(Var, Const)>,
}

impl Mapping {
    /// The empty mapping (defined nowhere).
    pub fn empty() -> Self {
        Mapping::default()
    }

    /// Builds a mapping from pairs; later duplicates of a variable must agree
    /// with earlier ones (panics otherwise — this is a programming error).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, Const)>) -> Self {
        let mut m = Mapping::empty();
        for (v, c) in pairs {
            assert!(
                m.insert(v, c),
                "Mapping::from_pairs: conflicting binding for variable {v:?}"
            );
        }
        m
    }

    /// Number of variables the mapping is defined on.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True iff the mapping is defined nowhere.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Looks up the image of a variable.
    pub fn get(&self, v: Var) -> Option<Const> {
        self.pairs
            .binary_search_by_key(&v, |&(w, _)| w)
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// True iff `v ∈ dom(h)`.
    pub fn defines(&self, v: Var) -> bool {
        self.get(v).is_some()
    }

    /// Inserts a binding. Returns `false` (and leaves the mapping unchanged)
    /// if `v` is already bound to a *different* constant; returns `true` if
    /// the binding was inserted or already present with the same value.
    pub fn insert(&mut self, v: Var, c: Const) -> bool {
        match self.pairs.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => self.pairs[i].1 == c,
            Err(i) => {
                self.pairs.insert(i, (v, c));
                true
            }
        }
    }

    /// Removes a binding if present.
    pub fn remove(&mut self, v: Var) -> Option<Const> {
        match self.pairs.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => Some(self.pairs.remove(i).1),
            Err(_) => None,
        }
    }

    /// The domain of the mapping.
    pub fn domain(&self) -> BTreeSet<Var> {
        self.pairs.iter().map(|&(v, _)| v).collect()
    }

    /// Iterates over `(variable, constant)` bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Const)> + '_ {
        self.pairs.iter().copied()
    }

    /// The restriction `h|_vars` of the mapping to a set of variables
    /// (the paper's `h_x̄`).
    pub fn restrict(&self, vars: &BTreeSet<Var>) -> Mapping {
        Mapping {
            pairs: self
                .pairs
                .iter()
                .copied()
                .filter(|(v, _)| vars.contains(v))
                .collect(),
        }
    }

    /// Subsumption `self ⊑ other`: `other` is defined wherever `self` is and
    /// agrees there (Section 2).
    pub fn subsumed_by(&self, other: &Mapping) -> bool {
        // Linear merge over the sorted pair vectors.
        let mut oi = other.pairs.iter();
        let mut cur = oi.next();
        'outer: for &(v, c) in &self.pairs {
            while let Some(&(ov, oc)) = cur {
                match ov.cmp(&v) {
                    std::cmp::Ordering::Less => cur = oi.next(),
                    std::cmp::Ordering::Equal => {
                        if oc != c {
                            return false;
                        }
                        cur = oi.next();
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Strict subsumption `self ⊏ other`: subsumed but not equal.
    pub fn strictly_subsumed_by(&self, other: &Mapping) -> bool {
        self.len() < other.len() && self.subsumed_by(other)
    }

    /// True iff the two mappings agree on every variable bound by both.
    pub fn compatible(&self, other: &Mapping) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .pairs
            .iter()
            .all(|&(v, c)| large.get(v).is_none_or(|oc| oc == c))
    }

    /// The union `self ∪ other` if the mappings are compatible, else `None`.
    pub fn union(&self, other: &Mapping) -> Option<Mapping> {
        if !self.compatible(other) {
            return None;
        }
        let mut out = self.clone();
        for &(v, c) in &other.pairs {
            out.insert(v, c);
        }
        Some(out)
    }

    /// Renders the mapping, e.g. `{?x ↦ Swim, ?y ↦ Caribou}`.
    pub fn display(&self, interner: &Interner) -> String {
        let body = crate::interner::join_display(&self.pairs, |(v, c)| {
            format!("?{} ↦ {}", interner.var_name(*v), interner.const_name(*c))
        });
        format!("{{{body}}}")
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, c)) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} ↦ {c}")?;
        }
        write!(f, "}}")
    }
}

/// Removes from `mappings` every mapping strictly subsumed by another one,
/// returning only the ⊑-maximal elements (deduplicated). This implements the
/// "take the maximal answers" step of WDPT semantics at the mapping level.
pub fn maximal_mappings(mut mappings: Vec<Mapping>) -> Vec<Mapping> {
    mappings.sort();
    mappings.dedup();
    // Sort by decreasing domain size so potential subsumers come first.
    mappings.sort_by_key(|m| std::cmp::Reverse(m.len()));
    let mut kept: Vec<Mapping> = Vec::new();
    'outer: for m in mappings {
        for k in &kept {
            if m.subsumed_by(k) && m != *k {
                continue 'outer;
            }
        }
        kept.push(m);
    }
    kept.sort();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(v: u32, c: u32) -> (Var, Const) {
        (Var(v), Const(c))
    }

    #[test]
    fn insert_and_get() {
        let mut m = Mapping::empty();
        assert!(m.insert(Var(3), Const(7)));
        assert!(m.insert(Var(1), Const(5)));
        assert_eq!(m.get(Var(3)), Some(Const(7)));
        assert_eq!(m.get(Var(1)), Some(Const(5)));
        assert_eq!(m.get(Var(2)), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn insert_conflict_is_rejected() {
        let mut m = Mapping::from_pairs(vec![vc(1, 5)]);
        assert!(!m.insert(Var(1), Const(6)));
        assert_eq!(m.get(Var(1)), Some(Const(5)));
        assert!(m.insert(Var(1), Const(5)));
    }

    #[test]
    fn subsumption_basic() {
        let small = Mapping::from_pairs(vec![vc(1, 5)]);
        let large = Mapping::from_pairs(vec![vc(1, 5), vc(2, 6)]);
        let other = Mapping::from_pairs(vec![vc(1, 9), vc(2, 6)]);
        assert!(small.subsumed_by(&large));
        assert!(!large.subsumed_by(&small));
        assert!(small.strictly_subsumed_by(&large));
        assert!(!small.subsumed_by(&other));
        assert!(small.subsumed_by(&small));
        assert!(!small.strictly_subsumed_by(&small));
    }

    #[test]
    fn empty_mapping_subsumed_by_all() {
        let e = Mapping::empty();
        let m = Mapping::from_pairs(vec![vc(1, 5)]);
        assert!(e.subsumed_by(&m));
        assert!(e.subsumed_by(&e));
        assert!(!m.subsumed_by(&e));
    }

    #[test]
    fn union_compatible() {
        let a = Mapping::from_pairs(vec![vc(1, 5)]);
        let b = Mapping::from_pairs(vec![vc(2, 6), vc(1, 5)]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);
        let conflicting = Mapping::from_pairs(vec![vc(1, 9)]);
        assert!(a.union(&conflicting).is_none());
    }

    #[test]
    fn restrict_projects_domain() {
        let m = Mapping::from_pairs(vec![vc(1, 5), vc(2, 6), vc(3, 7)]);
        let vars: BTreeSet<Var> = [Var(1), Var(3)].into_iter().collect();
        let r = m.restrict(&vars);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(Var(2)), None);
        assert_eq!(r.get(Var(3)), Some(Const(7)));
    }

    #[test]
    fn maximal_mappings_removes_subsumed() {
        let m1 = Mapping::from_pairs(vec![vc(1, 5)]);
        let m2 = Mapping::from_pairs(vec![vc(1, 5), vc(2, 6)]);
        let m3 = Mapping::from_pairs(vec![vc(1, 9)]);
        let max = maximal_mappings(vec![m1.clone(), m2.clone(), m3.clone(), m2.clone()]);
        assert_eq!(max.len(), 2);
        assert!(max.contains(&m2));
        assert!(max.contains(&m3));
        assert!(!max.contains(&m1));
    }

    #[test]
    fn maximal_mappings_keeps_incomparable() {
        let m1 = Mapping::from_pairs(vec![vc(1, 5), vc(2, 6)]);
        let m2 = Mapping::from_pairs(vec![vc(1, 5), vc(3, 7)]);
        let max = maximal_mappings(vec![m1.clone(), m2.clone()]);
        assert_eq!(max.len(), 2);
    }

    #[test]
    fn remove_binding() {
        let mut m = Mapping::from_pairs(vec![vc(1, 5), vc(2, 6)]);
        assert_eq!(m.remove(Var(1)), Some(Const(5)));
        assert_eq!(m.remove(Var(1)), None);
        assert_eq!(m.len(), 1);
    }
}
