//! Lightweight engine counters.
//!
//! Process-wide relaxed atomics recording what the evaluation substrate
//! actually does: how often a column index is (re)built, how many posting
//! lists are probed, how many candidate tuples the match iterators scan,
//! how many search nodes the backtracking engine expands, and how many
//! tasks the parallel WDPT evaluator fans out. The benchmark harness
//! (`crates/bench`) snapshots them around measured runs so that the
//! index-maintenance fix and the parallel path are *observable*, not just
//! asserted; tests use them to pin down asymptotics (e.g. inserts must not
//! trigger per-insert index rebuilds).
//!
//! Relaxed ordering is deliberate: the counters are monotone event tallies
//! with no synchronizing role, so the increments stay cheap enough to live
//! on the hot path, and they aggregate correctly across the worker threads
//! of the parallel evaluator. Snapshots taken while other threads are
//! mid-run are approximate; take them around joined work for exact counts.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static INDEX_BUILDS: AtomicU64 = AtomicU64::new(0);
static INDEX_PROBES: AtomicU64 = AtomicU64::new(0);
static TUPLES_SCANNED: AtomicU64 = AtomicU64::new(0);
static NODES_EXPANDED: AtomicU64 = AtomicU64::new(0);
static PARALLEL_TASKS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of all counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Column indexes built from scratch (`Relation::index_for` misses).
    pub index_builds: u64,
    /// Posting-list lookups in a column index.
    pub index_probes: u64,
    /// Candidate tuples examined by `Relation::matching*` iterators.
    pub tuples_scanned: u64,
    /// Search nodes expanded by the backtracking CQ engine.
    pub nodes_expanded: u64,
    /// Work items executed by the parallel WDPT evaluator.
    pub parallel_tasks: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference since an earlier snapshot (saturating, so a
    /// concurrent `reset` cannot produce wrap-around nonsense).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            index_builds: self.index_builds.saturating_sub(earlier.index_builds),
            index_probes: self.index_probes.saturating_sub(earlier.index_probes),
            tuples_scanned: self.tuples_scanned.saturating_sub(earlier.tuples_scanned),
            nodes_expanded: self.nodes_expanded.saturating_sub(earlier.nodes_expanded),
            parallel_tasks: self.parallel_tasks.saturating_sub(earlier.parallel_tasks),
        }
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "index_builds={} index_probes={} tuples_scanned={} nodes_expanded={} parallel_tasks={}",
            self.index_builds,
            self.index_probes,
            self.tuples_scanned,
            self.nodes_expanded,
            self.parallel_tasks
        )
    }
}

/// Copies all counters.
pub fn snapshot() -> StatsSnapshot {
    StatsSnapshot {
        index_builds: INDEX_BUILDS.load(Relaxed),
        index_probes: INDEX_PROBES.load(Relaxed),
        tuples_scanned: TUPLES_SCANNED.load(Relaxed),
        nodes_expanded: NODES_EXPANDED.load(Relaxed),
        parallel_tasks: PARALLEL_TASKS.load(Relaxed),
    }
}

/// Zeroes all counters. Tests that assert on absolute counts should prefer
/// [`StatsSnapshot::since`] — the counters are process-wide and the test
/// harness runs tests concurrently.
pub fn reset() {
    INDEX_BUILDS.store(0, Relaxed);
    INDEX_PROBES.store(0, Relaxed);
    TUPLES_SCANNED.store(0, Relaxed);
    NODES_EXPANDED.store(0, Relaxed);
    PARALLEL_TASKS.store(0, Relaxed);
}

#[inline]
pub(crate) fn record_index_build() {
    INDEX_BUILDS.fetch_add(1, Relaxed);
}

#[inline]
pub(crate) fn record_index_probe() {
    INDEX_PROBES.fetch_add(1, Relaxed);
}

#[inline]
pub(crate) fn record_tuple_scanned() {
    TUPLES_SCANNED.fetch_add(1, Relaxed);
}

/// Records one expanded search node (called by the CQ engines).
#[inline]
pub fn record_node_expanded() {
    NODES_EXPANDED.fetch_add(1, Relaxed);
}

/// Records one executed parallel work item (called by the WDPT evaluator).
#[inline]
pub fn record_parallel_task() {
    PARALLEL_TASKS.fetch_add(1, Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_is_monotone_and_saturating() {
        let a = StatsSnapshot {
            index_builds: 5,
            index_probes: 10,
            tuples_scanned: 2,
            nodes_expanded: 1,
            parallel_tasks: 0,
        };
        let b = StatsSnapshot {
            index_builds: 7,
            index_probes: 10,
            tuples_scanned: 1,
            nodes_expanded: 4,
            parallel_tasks: 2,
        };
        let d = b.since(&a);
        assert_eq!(d.index_builds, 2);
        assert_eq!(d.index_probes, 0);
        assert_eq!(d.tuples_scanned, 0); // saturates instead of wrapping
        assert_eq!(d.nodes_expanded, 3);
        assert_eq!(d.parallel_tasks, 2);
    }

    #[test]
    fn display_names_every_counter() {
        let s = snapshot().to_string();
        for key in [
            "index_builds",
            "index_probes",
            "tuples_scanned",
            "nodes_expanded",
            "parallel_tasks",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
