//! Lightweight engine counters — compatibility facade over [`wdpt_obs`].
//!
//! The seed version of this module owned five hard-coded process-wide
//! atomics. Those now live in the `wdpt-obs` metrics registry as named
//! counters (so they show up in [`QueryProfile`](wdpt_obs::QueryProfile)s
//! and machine-readable benchmark output alongside everything else), and
//! this module keeps the original API — [`StatsSnapshot`], [`snapshot`],
//! [`reset`], the `record_*` helpers — on top of it. Existing tests and
//! benches keep working unchanged.
//!
//! The counters remain relaxed monotone event tallies with no
//! synchronizing role: increments stay cheap enough for the hot path and
//! aggregate correctly across the worker threads of the parallel
//! evaluator. Snapshots taken while other threads are mid-run are
//! approximate; take them around joined work for exact counts.

use wdpt_obs::counter;

/// Registry name of the index-build counter.
pub const INDEX_BUILDS: &str = "db.index_builds";
/// Registry name of the posting-list probe counter.
pub const INDEX_PROBES: &str = "db.index_probes";
/// Registry name of the candidate-tuple scan counter.
pub const TUPLES_SCANNED: &str = "db.tuples_scanned";
/// Registry name of the CQ search-node counter.
pub const NODES_EXPANDED: &str = "cq.nodes_expanded";
/// Registry name of the parallel work-item counter.
pub const PARALLEL_TASKS: &str = "wdpt.parallel_tasks";

/// A point-in-time copy of the five engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Column indexes built from scratch (`Relation::index_for` misses).
    pub index_builds: u64,
    /// Posting-list lookups in a column index.
    pub index_probes: u64,
    /// Candidate tuples examined by `Relation::matching*` iterators.
    pub tuples_scanned: u64,
    /// Search nodes expanded by the backtracking CQ engine.
    pub nodes_expanded: u64,
    /// Work items executed by the parallel WDPT evaluator.
    pub parallel_tasks: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference since an earlier snapshot (saturating, so a
    /// concurrent `reset` cannot produce wrap-around nonsense).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            index_builds: self.index_builds.saturating_sub(earlier.index_builds),
            index_probes: self.index_probes.saturating_sub(earlier.index_probes),
            tuples_scanned: self.tuples_scanned.saturating_sub(earlier.tuples_scanned),
            nodes_expanded: self.nodes_expanded.saturating_sub(earlier.nodes_expanded),
            parallel_tasks: self.parallel_tasks.saturating_sub(earlier.parallel_tasks),
        }
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "index_builds={} index_probes={} tuples_scanned={} nodes_expanded={} parallel_tasks={}",
            self.index_builds,
            self.index_probes,
            self.tuples_scanned,
            self.nodes_expanded,
            self.parallel_tasks
        )
    }
}

/// Copies the five engine counters out of the `wdpt-obs` registry.
pub fn snapshot() -> StatsSnapshot {
    StatsSnapshot {
        index_builds: counter!(INDEX_BUILDS).get(),
        index_probes: counter!(INDEX_PROBES).get(),
        tuples_scanned: counter!(TUPLES_SCANNED).get(),
        nodes_expanded: counter!(NODES_EXPANDED).get(),
        parallel_tasks: counter!(PARALLEL_TASKS).get(),
    }
}

/// Zeroes the five engine counters. Tests that assert on absolute counts
/// should prefer [`StatsSnapshot::since`] — the counters are process-wide
/// and the test harness runs tests concurrently.
pub fn reset() {
    counter!(INDEX_BUILDS).reset();
    counter!(INDEX_PROBES).reset();
    counter!(TUPLES_SCANNED).reset();
    counter!(NODES_EXPANDED).reset();
    counter!(PARALLEL_TASKS).reset();
}

#[inline]
pub(crate) fn record_index_build() {
    counter!(INDEX_BUILDS).incr();
}

#[inline]
pub(crate) fn record_index_probe() {
    counter!(INDEX_PROBES).incr();
}

/// Records `n` candidate tuples scanned in one batch. Match iterators
/// count locally and flush once on drop rather than paying one atomic RMW
/// per tuple.
#[inline]
pub(crate) fn record_tuples_scanned(n: u64) {
    counter!(TUPLES_SCANNED).add(n);
}

/// Records one expanded search node (called by the CQ engines).
#[inline]
pub fn record_node_expanded() {
    counter!(NODES_EXPANDED).incr();
}

/// Records one executed parallel work item (called by the WDPT evaluator).
#[inline]
pub fn record_parallel_task() {
    counter!(PARALLEL_TASKS).incr();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_is_monotone_and_saturating() {
        let a = StatsSnapshot {
            index_builds: 5,
            index_probes: 10,
            tuples_scanned: 2,
            nodes_expanded: 1,
            parallel_tasks: 0,
        };
        let b = StatsSnapshot {
            index_builds: 7,
            index_probes: 10,
            tuples_scanned: 1,
            nodes_expanded: 4,
            parallel_tasks: 2,
        };
        let d = b.since(&a);
        assert_eq!(d.index_builds, 2);
        assert_eq!(d.index_probes, 0);
        assert_eq!(d.tuples_scanned, 0); // saturates instead of wrapping
        assert_eq!(d.nodes_expanded, 3);
        assert_eq!(d.parallel_tasks, 2);
    }

    #[test]
    fn display_names_every_counter() {
        let s = snapshot().to_string();
        for key in [
            "index_builds",
            "index_probes",
            "tuples_scanned",
            "nodes_expanded",
            "parallel_tasks",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn facade_and_registry_agree() {
        let before = snapshot();
        record_node_expanded();
        record_tuples_scanned(3);
        let delta = snapshot().since(&before);
        assert!(delta.nodes_expanded >= 1);
        assert!(delta.tuples_scanned >= 3);
        // The same events are visible under their registry names.
        let m = wdpt_obs::metrics_snapshot();
        assert!(m.counter(NODES_EXPANDED) >= delta.nodes_expanded);
        assert!(m.counter(TUPLES_SCANNED) >= delta.tuples_scanned);
    }
}
