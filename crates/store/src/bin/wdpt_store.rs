//! The `wdpt-store` CLI: build, verify, and inspect database snapshots.
//!
//! ```text
//! wdpt-store build INPUT SNAPSHOT [--threads N] [--chunk-lines N]
//! wdpt-store verify SNAPSHOT [--delta DELTA]...
//! wdpt-store verify --chain DIR
//! wdpt-store inspect SNAPSHOT_OR_DELTA [--json]
//! wdpt-store delta BASE INPUT DELTA_OUT [--delta PRIOR]... [--threads N] [--chunk-lines N]
//! wdpt-store apply BASE SNAPSHOT_OUT [--delta DELTA]...
//! wdpt-store gen-music BANDSxRECORDS OUTPUT.nt [--seed S]
//! wdpt-store gen-synth TRIPLES OUTPUT.nt [--seed S] [--skew K]
//! ```
//!
//! Exit codes: `0` success, `1` corrupt or unparsable input, `2` usage or
//! I/O error — so CI can distinguish "snapshot is bad" from "I was called
//! wrong".

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;
use wdpt_model::Interner;
use wdpt_obs::Json;
use wdpt_store::{LoadOptions, StoreError};

const USAGE: &str = "usage:
  wdpt-store build INPUT SNAPSHOT [--threads N] [--chunk-lines N] [--format 1|2]
      parse a text dataset (N-Triples or facts) in parallel and write a
      snapshot; --format 2 writes the compressed columnar v2 encoding
      (delta+varint postings, front-coded dictionary, zero-copy load)
  wdpt-store verify SNAPSHOT [--delta DELTA]...
      fully decode a snapshot (applying any delta chain), checking every
      checksum, chain hash, and invariant, then cross-check each relation's
      posting directory against a fresh index rebuild
  wdpt-store verify --chain DIR
      order every WDPTSNAP file in DIR into a delta chain by base-hash
      linkage (the layout a replication log keeps), verify it end to end,
      and report the final chain head
  wdpt-store inspect SNAPSHOT_OR_DELTA [--json]
      print the header and per-relation summary (checksums only, no full
      decode); --json emits one machine-readable JSON document instead.
      A delta file gets its delta header summarized
  wdpt-store delta BASE INPUT DELTA_OUT [--delta PRIOR]... [--threads N] [--chunk-lines N]
      parse INPUT and write the new tuples/symbols as a delta chained onto
      BASE (after any PRIOR deltas, in order)
  wdpt-store apply BASE SNAPSHOT_OUT [--delta DELTA]... [--format 1|2]
      apply a delta chain to BASE and write the merged full snapshot; with
      no deltas this is a verified re-encode of BASE (a checked copy, and
      with --format a v1 <-> v2 migration verb)
  wdpt-store gen-music BANDSxRECORDS OUTPUT.nt [--seed S]
      write a synthetic music-catalog dataset as N-Triples
  wdpt-store gen-synth TRIPLES OUTPUT.nt [--seed S] [--skew K]
      stream a synthetic uniform-universe N-Triples dataset of any size;
      --skew K (0..=10) re-aims K tenths of the stream at heavy-hitter
      symbols, the shape the join planner's statistics catalog detects";

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("wdpt-store: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// `1` for data-level problems (corruption, parse errors), `2` for I/O.
fn data_err(err: &StoreError) -> ExitCode {
    eprintln!("wdpt-store: {err}");
    match err {
        StoreError::Io(_) => ExitCode::from(2),
        _ => ExitCode::from(1),
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<usize>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    v.parse::<usize>()
        .map(Some)
        .map_err(|_| format!("{flag} needs a number, got {v:?}"))
}

/// Removes every occurrence of a repeatable `--flag VALUE` pair, returning
/// the values in order.
fn take_str_flags(args: &mut Vec<String>, flag: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    while let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        out.push(args.remove(i + 1));
        args.remove(i);
    }
    Ok(out)
}

/// Parses `--format 1|2` into a snapshot encoding version (default v1).
fn take_format(args: &mut Vec<String>) -> Result<u32, String> {
    match take_flag(args, "--format")? {
        None | Some(1) => Ok(wdpt_store::VERSION),
        Some(2) => Ok(wdpt_store::VERSION_V2),
        Some(v) => Err(format!("--format must be 1 or 2, got {v}")),
    }
}

fn cmd_build(mut args: Vec<String>) -> ExitCode {
    let format = match take_format(&mut args) {
        Ok(v) => v,
        Err(e) => return usage_err(&e),
    };
    let threads = match take_flag(&mut args, "--threads") {
        Ok(v) => v.unwrap_or(0),
        Err(e) => return usage_err(&e),
    };
    let chunk_lines = match take_flag(&mut args, "--chunk-lines") {
        Ok(v) => v.unwrap_or(LoadOptions::default().chunk_lines),
        Err(e) => return usage_err(&e),
    };
    let [input, output] = args.as_slice() else {
        return usage_err("build takes INPUT and SNAPSHOT paths");
    };
    let opts = LoadOptions {
        threads,
        chunk_lines,
    };
    let mut interner = Interner::new();
    let t0 = Instant::now();
    let (db, report) = match wdpt_store::bulk_load_path(&mut interner, Path::new(input), opts) {
        Ok(r) => r,
        Err(e) => return data_err(&e),
    };
    let parse_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let bytes = match wdpt_store::save_snapshot_versioned(Path::new(output), &interner, &db, format)
    {
        Ok(n) => n,
        Err(e) => return data_err(&e),
    };
    let write_ms = t1.elapsed().as_secs_f64() * 1e3;
    println!(
        "built {output} (v{format}): {} tuples in {} relations ({} lines, {} symbols, \
         {} duplicates dropped, {} threads) parse {parse_ms:.1}ms write {write_ms:.1}ms \
         {bytes} bytes",
        report.tuples,
        report.relations,
        report.lines,
        report.symbols_appended,
        report.duplicates,
        report.threads
    );
    ExitCode::SUCCESS
}

fn cmd_verify(mut args: Vec<String>) -> ExitCode {
    let chains = match take_str_flags(&mut args, "--chain") {
        Ok(v) => v,
        Err(e) => return usage_err(&e),
    };
    let deltas = match take_str_flags(&mut args, "--delta") {
        Ok(v) => v,
        Err(e) => return usage_err(&e),
    };
    match (chains.as_slice(), args.is_empty() && deltas.is_empty()) {
        ([], _) => {}
        ([dir], true) => return verify_chain_dir(Path::new(dir)),
        ([_], false) => {
            return usage_err(
                "--chain takes the whole chain from DIR; drop the SNAPSHOT/--delta arguments",
            )
        }
        _ => return usage_err("--chain can be given once"),
    }
    let [path] = args.as_slice() else {
        return usage_err("verify takes one SNAPSHOT path");
    };
    let t0 = Instant::now();
    let loaded = if deltas.is_empty() {
        wdpt_store::load_snapshot(Path::new(path))
    } else {
        wdpt_store::load_with_deltas(Path::new(path), &deltas)
    };
    match loaded {
        Ok((interner, db)) => {
            // Checksums guarantee the bytes are the ones written; the deep
            // check guarantees the posting directories actually describe
            // the tuples (a forged-but-CRC-valid directory fails here).
            if let Err(e) = wdpt_store::verify_database_deep(&db) {
                return data_err(&e);
            }
            println!(
                "ok: {} symbols, {} relations, {} tuples ({} deltas applied), verified in {:.1}ms",
                interner.len(),
                db.predicate_count(),
                db.size(),
                deltas.len(),
                t0.elapsed().as_secs_f64() * 1e3
            );
            ExitCode::SUCCESS
        }
        Err(e) => data_err(&e),
    }
}

/// `verify --chain DIR`: discovers the snapshot + delta files in `dir`,
/// orders them by base-hash linkage, fully decodes the chain, and reports
/// the final head — the hash a replica must quote to read-your-writes
/// against this chain.
fn verify_chain_dir(dir: &Path) -> ExitCode {
    let t0 = Instant::now();
    let scan = match wdpt_store::scan_chain_dir(dir) {
        Ok(s) => s,
        Err(e) => return data_err(&e),
    };
    println!(
        "chain in {}: base {} ({})",
        dir.display(),
        scan.base
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?"),
        wdpt_store::head_hex(scan.base_hash)
    );
    for (path, head) in &scan.deltas {
        println!(
            "  + {} -> head {}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
            wdpt_store::head_hex(*head)
        );
    }
    let delta_paths: Vec<_> = scan.deltas.iter().map(|(p, _)| p.clone()).collect();
    match wdpt_store::load_with_deltas(&scan.base, &delta_paths) {
        Ok((interner, db)) => {
            println!(
                "ok: {} deltas onto base, {} symbols, {} relations, {} tuples, \
                 head {} verified in {:.1}ms",
                scan.deltas.len(),
                interner.len(),
                db.predicate_count(),
                db.size(),
                wdpt_store::head_hex(scan.head),
                t0.elapsed().as_secs_f64() * 1e3
            );
            ExitCode::SUCCESS
        }
        Err(e) => data_err(&e),
    }
}

fn cmd_delta(mut args: Vec<String>) -> ExitCode {
    let priors = match take_str_flags(&mut args, "--delta") {
        Ok(v) => v,
        Err(e) => return usage_err(&e),
    };
    let threads = match take_flag(&mut args, "--threads") {
        Ok(v) => v.unwrap_or(0),
        Err(e) => return usage_err(&e),
    };
    let chunk_lines = match take_flag(&mut args, "--chunk-lines") {
        Ok(v) => v.unwrap_or(LoadOptions::default().chunk_lines),
        Err(e) => return usage_err(&e),
    };
    let [base, input, output] = args.as_slice() else {
        return usage_err("delta takes BASE, INPUT, and DELTA_OUT paths");
    };

    // Materialize the chain tip: base + prior deltas, and the content hash
    // of the last file in the chain (what the new delta anchors to).
    let t0 = Instant::now();
    let base_bytes = match std::fs::read(base) {
        Ok(b) => b,
        Err(e) => return data_err(&StoreError::Io(e)),
    };
    let mut prior_bytes = Vec::with_capacity(priors.len());
    for p in &priors {
        match std::fs::read(p) {
            Ok(b) => prior_bytes.push(b),
            Err(e) => return data_err(&StoreError::Io(e)),
        }
    }
    let (interner, db) = match wdpt_store::decode_with_deltas(&base_bytes, &prior_bytes) {
        Ok(pair) => pair,
        Err(e) => return data_err(&e),
    };
    let tip_hash = wdpt_store::content_hash(prior_bytes.last().unwrap_or(&base_bytes));
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Parse the update on top of a copy of the chain-tip interner so new
    // symbols append after the existing ids.
    let t1 = Instant::now();
    let mut new_interner = interner.clone();
    let opts = LoadOptions {
        threads,
        chunk_lines,
    };
    let (add_db, report) =
        match wdpt_store::bulk_load_path(&mut new_interner, Path::new(input), opts) {
            Ok(r) => r,
            Err(e) => return data_err(&e),
        };
    let mut new_db = db.clone();
    for (pred, rel) in add_db.relations() {
        if let Some(existing) = new_db.relation(pred) {
            if existing.arity() != rel.arity() {
                return data_err(&StoreError::Parse {
                    line: 0,
                    message: format!(
                        "predicate {:?} used at arity {} but the base has arity {}",
                        new_interner.pred_name(pred),
                        rel.arity(),
                        existing.arity()
                    ),
                });
            }
        }
        for t in rel.tuples() {
            new_db.insert(pred, t.to_vec());
        }
    }
    let parse_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    let bytes = match wdpt_store::delta_to_vec(tip_hash, &interner, &db, &new_interner, &new_db) {
        Ok(b) => b,
        Err(e) => return data_err(&e),
    };
    if let Err(e) = wdpt_store::save_delta(Path::new(output), &bytes) {
        return data_err(&e);
    }
    let write_ms = t2.elapsed().as_secs_f64() * 1e3;
    println!(
        "wrote {output}: {} inserted tuples, {} new symbols over {} prior deltas \
         ({} input lines) load {load_ms:.1}ms parse {parse_ms:.1}ms write {write_ms:.1}ms {} bytes",
        new_db.size() - db.size(),
        new_interner.len() - interner.len(),
        priors.len(),
        report.lines,
        bytes.len()
    );
    ExitCode::SUCCESS
}

fn cmd_apply(mut args: Vec<String>) -> ExitCode {
    let format = match take_format(&mut args) {
        Ok(v) => v,
        Err(e) => return usage_err(&e),
    };
    let deltas = match take_str_flags(&mut args, "--delta") {
        Ok(v) => v,
        Err(e) => return usage_err(&e),
    };
    // No deltas is fine: `load_with_deltas` handles an empty chain, so the
    // command degrades to a fully-verified decode + deterministic re-encode
    // of BASE (byte-identical output — useful as a checked copy).
    let [base, output] = args.as_slice() else {
        return usage_err("apply takes BASE and SNAPSHOT_OUT paths");
    };
    let t0 = Instant::now();
    let (interner, db) = match wdpt_store::load_with_deltas(Path::new(base), &deltas) {
        Ok(pair) => pair,
        Err(e) => return data_err(&e),
    };
    let apply_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let bytes = match wdpt_store::save_snapshot_versioned(Path::new(output), &interner, &db, format)
    {
        Ok(n) => n,
        Err(e) => return data_err(&e),
    };
    let write_ms = t1.elapsed().as_secs_f64() * 1e3;
    println!(
        "applied {} deltas onto {base} (v{format}): {} symbols, {} relations, {} tuples \
         apply {apply_ms:.1}ms write {write_ms:.1}ms {bytes} bytes -> {output}",
        deltas.len(),
        interner.len(),
        db.predicate_count(),
        db.size()
    );
    ExitCode::SUCCESS
}

fn cmd_inspect(mut args: Vec<String>) -> ExitCode {
    let json = match args.iter().position(|a| a == "--json") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let [path] = args.as_slice() else {
        return usage_err("inspect takes one SNAPSHOT path");
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => return data_err(&StoreError::Io(e)),
    };
    // The file's content hash IS the chain-head hash a server at this
    // chain position advertises (and clients quote as `min_head`).
    let chain_head = wdpt_store::head_hex(wdpt_store::content_hash(&bytes));
    match wdpt_store::inspect_snapshot(&bytes) {
        Ok(summary) => {
            let h = summary.header;
            if json {
                let encoding = if h.version == wdpt_store::VERSION_V2 {
                    "columnar-varint"
                } else {
                    "row-fixed"
                };
                let doc = Json::obj([
                    ("kind".to_string(), Json::str("snapshot")),
                    ("version".to_string(), Json::int(h.version as u64)),
                    ("encoding".to_string(), Json::str(encoding)),
                    ("chain_head".to_string(), Json::str(chain_head.clone())),
                    ("bytes".to_string(), Json::int(summary.bytes as u64)),
                    ("symbols".to_string(), Json::int(h.symbols)),
                    ("fresh_counter".to_string(), Json::int(h.fresh_counter)),
                    ("tuples".to_string(), Json::int(h.tuples)),
                    (
                        "dictionary_bytes".to_string(),
                        Json::int(summary.dict_bytes as u64),
                    ),
                    (
                        "dictionary_raw_bytes".to_string(),
                        Json::int(summary.dict_raw_bytes),
                    ),
                    (
                        "relations".to_string(),
                        Json::Arr(
                            summary
                                .relations
                                .iter()
                                .map(|r| {
                                    Json::obj([
                                        ("pred".to_string(), Json::int(r.pred as u64)),
                                        ("name".to_string(), Json::str(r.name.clone())),
                                        ("arity".to_string(), Json::int(r.arity as u64)),
                                        ("rows".to_string(), Json::int(r.rows)),
                                        ("bytes".to_string(), Json::int(r.bytes as u64)),
                                        ("raw_bytes".to_string(), Json::int(r.raw_bytes)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]);
                println!("{doc}");
            } else {
                println!(
                    "snapshot v{}: {} bytes, {} symbols, fresh counter {}, {} relations, \
                     {} tuples, chain head {chain_head}",
                    h.version, summary.bytes, h.symbols, h.fresh_counter, h.relations, h.tuples
                );
                println!(
                    "  dictionary: {} bytes ({} raw)",
                    summary.dict_bytes, summary.dict_raw_bytes
                );
                for r in &summary.relations {
                    println!(
                        "  {}/{} (id {}): {} rows, {} bytes ({} raw)",
                        r.name, r.arity, r.pred, r.rows, r.bytes, r.raw_bytes
                    );
                }
            }
            ExitCode::SUCCESS
        }
        // A delta file is not an error worth exit code 1 here: fall back to
        // the delta header so `inspect` works on every wdpt-store artifact.
        Err(e) if e.to_string().contains("delta snapshot") => {
            match wdpt_store::decode_delta(&bytes) {
                Ok(delta) => {
                    let h = delta.header;
                    if json {
                        let doc = Json::obj([
                            ("kind".to_string(), Json::str("delta")),
                            ("version".to_string(), Json::int(h.version as u64)),
                            ("chain_head".to_string(), Json::str(chain_head.clone())),
                            ("bytes".to_string(), Json::int(bytes.len() as u64)),
                            (
                                "base_hash".to_string(),
                                Json::str(format!("{:016x}", h.base_hash)),
                            ),
                            ("base_symbols".to_string(), Json::int(h.base_symbols)),
                            ("symbols".to_string(), Json::int(h.symbols)),
                            ("fresh_counter".to_string(), Json::int(h.fresh_counter)),
                            ("relations".to_string(), Json::int(h.relations as u64)),
                            ("inserted".to_string(), Json::int(h.inserted)),
                        ]);
                        println!("{doc}");
                    } else {
                        println!(
                            "delta v{}: {} bytes, base hash {:016x}, {} -> {} symbols, \
                         {} relation deltas, {} inserted tuples, chain head {chain_head}",
                            h.version,
                            bytes.len(),
                            h.base_hash,
                            h.base_symbols,
                            h.symbols,
                            h.relations,
                            h.inserted
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => data_err(&e),
            }
        }
        Err(e) => data_err(&e),
    }
}

/// Writes a term as an N-Triples IRI, escaping the characters that would
/// break the angle-bracket syntax via `\uXXXX`.
fn write_iri(out: &mut String, term: &str) {
    out.push('<');
    for c in term.chars() {
        if c == '>' || c == '<' || c == '\\' || c.is_whitespace() || c.is_control() {
            let code = c as u32;
            if code > 0xFFFF {
                out.push_str(&format!("\\U{code:08X}"));
            } else {
                out.push_str(&format!("\\u{code:04X}"));
            }
        } else {
            out.push(c);
        }
    }
    out.push('>');
}

fn cmd_gen_music(mut args: Vec<String>) -> ExitCode {
    let seed = match take_flag(&mut args, "--seed") {
        Ok(v) => v.map(|s| s as u64),
        Err(e) => return usage_err(&e),
    };
    let [spec, output] = args.as_slice() else {
        return usage_err("gen-music takes BANDSxRECORDS and OUTPUT paths");
    };
    let Some((bands, records)) = spec
        .split_once('x')
        .and_then(|(b, r)| Some((b.parse::<usize>().ok()?, r.parse::<usize>().ok()?)))
    else {
        return usage_err("gen-music size must look like 500x20");
    };
    let mut params = wdpt_gen::music::MusicParams {
        bands,
        records_per_band: records,
        ..Default::default()
    };
    if let Some(s) = seed {
        params.seed = s;
    }
    let mut interner = Interner::new();
    let ts = wdpt_gen::music_triples(&mut interner, params);
    let triple = wdpt_sparql::TripleStore::pred(&mut interner);
    let mut out = String::new();
    if let Some(rel) = ts.database().relation(triple) {
        for t in rel.tuples() {
            for (i, c) in t.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                write_iri(&mut out, interner.name(c.0));
            }
            out.push_str(" .\n");
        }
    }
    if let Err(e) = std::fs::write(output, &out) {
        return data_err(&StoreError::Io(e));
    }
    println!("wrote {output}: {} triples", ts.len());
    ExitCode::SUCCESS
}

fn cmd_gen_synth(mut args: Vec<String>) -> ExitCode {
    let seed = match take_flag(&mut args, "--seed") {
        Ok(v) => v.map(|s| s as u64),
        Err(e) => return usage_err(&e),
    };
    let skew = match take_flag(&mut args, "--skew") {
        Ok(v) => v.map(|s| s as u64),
        Err(e) => return usage_err(&e),
    };
    let [triples, output] = args.as_slice() else {
        return usage_err("gen-synth takes TRIPLES and OUTPUT paths");
    };
    let Ok(triples) = triples.parse::<u64>() else {
        return usage_err("gen-synth TRIPLES must be a number");
    };
    if skew.is_some_and(|k| k > 10) {
        return usage_err("gen-synth --skew must be in 0..=10 (tenths of the stream)");
    }
    let mut params = wdpt_gen::SynthParams::sized_skewed(triples, skew.unwrap_or(0));
    if let Some(s) = seed {
        params.seed = s;
    }
    let t0 = Instant::now();
    let f = match std::fs::File::create(output) {
        Ok(f) => f,
        Err(e) => return data_err(&StoreError::Io(e)),
    };
    let mut w = std::io::BufWriter::new(f);
    let written = wdpt_gen::write_synth_nt(&mut w, params)
        .and_then(|n| std::io::Write::flush(&mut w).map(|()| n));
    match written {
        Ok(n) => {
            println!(
                "wrote {output}: {n} triples in {:.1}ms",
                t0.elapsed().as_secs_f64() * 1e3
            );
            ExitCode::SUCCESS
        }
        Err(e) => data_err(&StoreError::Io(e)),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage_err("missing subcommand");
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "build" => cmd_build(args),
        "verify" => cmd_verify(args),
        "inspect" => cmd_inspect(args),
        "delta" => cmd_delta(args),
        "apply" => cmd_apply(args),
        "gen-music" => cmd_gen_music(args),
        "gen-synth" => cmd_gen_synth(args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => usage_err(&format!("unknown subcommand {other:?}")),
    }
}
