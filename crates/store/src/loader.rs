//! Parallel bulk loading of text datasets.
//!
//! The pipeline (std-only, scoped threads, no new dependencies):
//!
//! ```text
//! reader thread ──chunks──▶ N parser workers ──parsed──▶ main thread
//!   (BufRead,               (string-level,                (interns in
//!    line-bounded            no interner)                  chunk order,
//!    chunking)                                             groups by pred)
//!                                          then: per-relation sort + dedup
//!                                          + index build across M threads
//! ```
//!
//! Parsing is the expensive step (escape decoding, tokenizing) and is pure
//! string → string, so it fans out; interning is a hash-map insert per
//! distinct symbol and stays on one thread, consuming parsed chunks **in
//! chunk order** so interned ids — and therefore snapshot bytes — are
//! deterministic for a given input regardless of worker scheduling.
//!
//! Formats match [`crate::text`]: lenient N-Triples (one triple per line —
//! chunks cut anywhere) and the facts format (atoms may span lines — chunks
//! cut only where all parentheses outside quoted constants are balanced).

use crate::format::StoreError;
use crate::text::FactsBalance;
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex};
use wdpt_model::{Const, Database, Interner, Pred, Relation};
use wdpt_obs::{counter, span};
use wdpt_sparql::parse_nt_line;

/// Tuning knobs for [`bulk_load`].
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// Parser worker threads. `0` means one per available core (capped at 8).
    pub threads: usize,
    /// Target lines per chunk handed to a worker.
    pub chunk_lines: usize,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions {
            threads: 0,
            chunk_lines: 4096,
        }
    }
}

impl LoadOptions {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2)
    }
}

/// What a bulk load did, for logs and the CLI.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    /// Input lines read (including blanks and comments).
    pub lines: u64,
    /// Facts/triples parsed (before deduplication).
    pub parsed: u64,
    /// Distinct tuples stored.
    pub tuples: u64,
    /// Duplicates dropped during the merge.
    pub duplicates: u64,
    /// Relations in the resulting database.
    pub relations: usize,
    /// Parser worker threads used.
    pub threads: usize,
}

/// A predicate name with its argument strings, before interning.
type RawAtom = (String, Vec<String>);

/// Per-predicate accumulation during collection: arity plus the (not yet
/// sorted or deduplicated) tuple list.
type PredTuples = HashMap<Pred, (usize, Vec<Box<[Const]>>)>;

/// A fact at the string level, before interning.
enum RawFact {
    /// `(s, p, o)` destined for the `triple/3` relation.
    Triple(String, String, String),
    /// `pred(args...)` from the facts format.
    Fact(String, Vec<String>),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Nt,
    Facts,
}

struct Chunk {
    seq: usize,
    start_line: usize,
    format: Format,
    text: String,
}

struct ParsedChunk {
    seq: usize,
    facts: Vec<RawFact>,
}

fn parse_err(line: usize, message: impl Into<String>) -> StoreError {
    StoreError::Parse {
        line,
        message: message.into(),
    }
}

/// String-level parser for the facts grammar (`wdpt_model::parse` accepts
/// the same language, but its cursor interns as it goes — this one runs on
/// worker threads that have no interner). Ground atoms only: a `?var`
/// argument is an error. Returns byte offsets for errors; the caller maps
/// them to line numbers.
fn parse_facts_text(text: &str) -> Result<Vec<RawAtom>, (usize, String)> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let is_ident = |c: char| c.is_alphanumeric() || "_.'-".contains(c);
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && (bytes[*pos] as char).is_whitespace() {
            *pos += 1;
        }
    };
    let ident_len = |from: usize| -> usize {
        text[from..]
            .chars()
            .take_while(|&c| is_ident(c))
            .map(char::len_utf8)
            .sum()
    };
    let mut atoms = Vec::new();
    loop {
        skip_ws(&mut pos);
        if pos >= bytes.len() {
            return Ok(atoms);
        }
        let start = pos;
        pos += ident_len(pos);
        if pos == start {
            return Err((pos, "expected identifier".into()));
        }
        let pred = text[start..pos].to_string();
        skip_ws(&mut pos);
        if bytes.get(pos) != Some(&b'(') {
            return Err((pos, "expected '('".into()));
        }
        pos += 1;
        let mut args = Vec::new();
        skip_ws(&mut pos);
        if bytes.get(pos) == Some(&b')') {
            pos += 1;
        } else {
            loop {
                skip_ws(&mut pos);
                match bytes.get(pos) {
                    Some(b'?') => return Err((pos, "database atoms must be ground".into())),
                    Some(b'"') => {
                        pos += 1;
                        let start = pos;
                        while pos < bytes.len() && bytes[pos] != b'"' {
                            pos += 1;
                        }
                        if pos >= bytes.len() {
                            return Err((start, "unterminated string literal".into()));
                        }
                        args.push(text[start..pos].to_string());
                        pos += 1;
                    }
                    Some(_) => {
                        let start = pos;
                        pos += ident_len(pos);
                        if pos == start {
                            return Err((pos, "expected term".into()));
                        }
                        args.push(text[start..pos].to_string());
                    }
                    None => return Err((pos, "expected term".into())),
                }
                skip_ws(&mut pos);
                match bytes.get(pos) {
                    Some(b',') => pos += 1,
                    Some(b')') => {
                        pos += 1;
                        break;
                    }
                    _ => return Err((pos, "expected ',' or ')'".into())),
                }
            }
        }
        atoms.push((pred, args));
        // Optional comma between atoms.
        skip_ws(&mut pos);
        if bytes.get(pos) == Some(&b',') {
            pos += 1;
        }
    }
}

fn parse_chunk(chunk: &Chunk) -> Result<ParsedChunk, StoreError> {
    let mut facts = Vec::new();
    match chunk.format {
        Format::Nt => {
            for (off, line) in chunk.text.lines().enumerate() {
                match parse_nt_line(line) {
                    Ok(None) => {}
                    Ok(Some((s, p, o))) => facts.push(RawFact::Triple(s, p, o)),
                    Err(e) => return Err(parse_err(chunk.start_line + off, e)),
                }
            }
        }
        Format::Facts => match parse_facts_text(&chunk.text) {
            Ok(atoms) => {
                facts.extend(atoms.into_iter().map(|(p, a)| RawFact::Fact(p, a)));
            }
            Err((at, message)) => {
                let line =
                    chunk.start_line + chunk.text[..at.min(chunk.text.len())].matches('\n').count();
                return Err(parse_err(line, message));
            }
        },
    }
    Ok(ParsedChunk {
        seq: chunk.seq,
        facts,
    })
}

fn looks_like_facts(data_line: &str) -> bool {
    let first = data_line.split_whitespace().next().unwrap_or("");
    !first.starts_with('<') && !first.starts_with('"') && first.contains('(')
}

/// Accumulates lines into line-bounded chunks (cut only at balanced
/// boundaries for facts) and sends them to the workers.
struct Chunker<'a> {
    format: Format,
    chunk_lines: usize,
    tx: &'a SyncSender<Chunk>,
    seq: usize,
    chunk: String,
    chunk_start: usize,
    chunk_len: usize,
    balance: FactsBalance,
    /// Set when a send fails — every worker has exited (after reporting an
    /// error), so the reader should stop.
    hung_up: bool,
}

impl<'a> Chunker<'a> {
    fn new(format: Format, chunk_lines: usize, tx: &'a SyncSender<Chunk>) -> Chunker<'a> {
        Chunker {
            format,
            chunk_lines,
            tx,
            seq: 0,
            chunk: String::new(),
            chunk_start: 0,
            chunk_len: 0,
            balance: FactsBalance::new(),
            hung_up: false,
        }
    }

    fn push_line(&mut self, l: &str, line_no: usize) {
        let t = l.trim();
        let skippable = t.is_empty() || t.starts_with('#');
        let at_boundary = self.format == Format::Nt || self.balance.balanced();
        if skippable && at_boundary {
            return;
        }
        if self.chunk.is_empty() {
            self.chunk_start = line_no;
        }
        if self.format == Format::Facts {
            self.balance.feed(l);
        }
        self.chunk.push_str(l);
        if !l.ends_with('\n') {
            self.chunk.push('\n');
        }
        self.chunk_len += 1;
        let cuttable = self.format == Format::Nt || self.balance.balanced();
        if self.chunk_len >= self.chunk_lines && cuttable {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.chunk.is_empty() {
            return;
        }
        let text = std::mem::take(&mut self.chunk);
        self.chunk_len = 0;
        let send = self.tx.send(Chunk {
            seq: self.seq,
            start_line: self.chunk_start,
            format: self.format,
            text,
        });
        if send.is_err() {
            self.hung_up = true;
        }
        self.seq += 1;
    }
}

/// The reader loop: sniffs the format from the first data line, then feeds
/// the [`Chunker`]. Reads raw bytes per line (no per-line `String`) and
/// validates UTF-8 in place.
fn read_chunks<R: BufRead>(
    r: &mut R,
    chunk_lines: usize,
    tx: &SyncSender<Chunk>,
) -> Result<u64, StoreError> {
    let mut buf = Vec::new();
    let mut line_no = 0usize;
    let mut chunker: Option<Chunker<'_>> = None;
    loop {
        line_no += 1;
        buf.clear();
        if r.read_until(b'\n', &mut buf)? == 0 {
            break;
        }
        let l = std::str::from_utf8(&buf).map_err(|_| parse_err(line_no, "invalid utf-8"))?;
        match &mut chunker {
            None => {
                let t = l.trim();
                if t.is_empty() || t.starts_with('#') {
                    continue;
                }
                let format = if looks_like_facts(l) {
                    Format::Facts
                } else {
                    Format::Nt
                };
                let mut c = Chunker::new(format, chunk_lines, tx);
                c.push_line(l, line_no);
                chunker = Some(c);
            }
            Some(c) => {
                c.push_line(l, line_no);
                if c.hung_up {
                    return Ok(line_no as u64);
                }
            }
        }
    }
    if let Some(mut c) = chunker {
        c.flush();
    }
    Ok(line_no as u64 - 1)
}

/// Bulk-loads a text dataset from a reader, parsing on worker threads.
pub fn bulk_load<R: BufRead + Send>(
    interner: &mut Interner,
    r: &mut R,
    opts: LoadOptions,
) -> Result<(Database, LoadReport), StoreError> {
    let _g = span!("store.bulk_load");
    let threads = opts.effective_threads();
    let chunk_lines = opts.chunk_lines.max(1);

    let (chunk_tx, chunk_rx) = sync_channel::<Chunk>(threads * 2);
    let (parsed_tx, parsed_rx) = sync_channel::<Result<ParsedChunk, StoreError>>(threads * 2);
    let chunk_rx = Arc::new(Mutex::new(chunk_rx));

    let mut lines = 0u64;
    let mut reader_result: Result<(), StoreError> = Ok(());
    let mut tuples_by_pred: PredTuples = HashMap::new();
    let mut parsed_count = 0u64;
    let mut collect_result: Result<(), StoreError> = Ok(());

    std::thread::scope(|scope| {
        {
            // Move the sender and mutable captures into the reader thread so
            // the channel hangs up when it finishes (or when every worker
            // has exited and a send fails).
            let tx = chunk_tx;
            let lines = &mut lines;
            let reader_result = &mut reader_result;
            let r = &mut *r;
            scope.spawn(move || match read_chunks(r, chunk_lines, &tx) {
                Ok(n) => *lines = n,
                Err(e) => *reader_result = Err(e),
            });
        }
        for _ in 0..threads {
            let chunk_rx = Arc::clone(&chunk_rx);
            let parsed_tx = parsed_tx.clone();
            scope.spawn(move || loop {
                let chunk = match chunk_rx.lock().expect("loader mutex poisoned").recv() {
                    Ok(c) => c,
                    Err(_) => return,
                };
                let result = parse_chunk(&chunk);
                let failed = result.is_err();
                if parsed_tx.send(result).is_err() || failed {
                    return;
                }
            });
        }
        // Drop the main thread's handles: the workers' receiver clones and
        // sender clones are now the only ones, so hangups propagate.
        drop(chunk_rx);
        drop(parsed_tx);

        // Consume parsed chunks strictly in sequence order so interner ids
        // are independent of worker scheduling.
        let mut pending: HashMap<usize, ParsedChunk> = HashMap::new();
        let mut next_seq = 0usize;
        let mut triple_pred: Option<Pred> = None;
        let mut intern =
            |parsed: ParsedChunk, tuples_by_pred: &mut PredTuples| -> Result<(), StoreError> {
                for fact in parsed.facts {
                    let (pred, tuple): (Pred, Box<[Const]>) = match fact {
                        RawFact::Triple(s, p, o) => {
                            let pred = *triple_pred
                                .get_or_insert_with(|| interner.pred(wdpt_sparql::TRIPLE_PRED));
                            let tuple = Box::new([
                                interner.constant(&s),
                                interner.constant(&p),
                                interner.constant(&o),
                            ]);
                            (pred, tuple)
                        }
                        RawFact::Fact(p, a) => {
                            let pred = interner.pred(&p);
                            let tuple = a.iter().map(|x| interner.constant(x)).collect();
                            (pred, tuple)
                        }
                    };
                    let entry = tuples_by_pred
                        .entry(pred)
                        .or_insert_with(|| (tuple.len(), Vec::new()));
                    if entry.0 != tuple.len() {
                        return Err(parse_err(
                            0,
                            format!(
                                "predicate {} used with arities {} and {}",
                                interner.name(pred.0),
                                entry.0,
                                tuple.len()
                            ),
                        ));
                    }
                    entry.1.push(tuple);
                    parsed_count += 1;
                }
                Ok(())
            };
        for result in parsed_rx.iter() {
            let parsed = match result {
                Ok(p) => p,
                Err(e) => {
                    collect_result = Err(e);
                    break;
                }
            };
            pending.insert(parsed.seq, parsed);
            while let Some(p) = pending.remove(&next_seq) {
                if let Err(e) = intern(p, &mut tuples_by_pred) {
                    collect_result = Err(e);
                    break;
                }
                next_seq += 1;
            }
            if collect_result.is_err() {
                break;
            }
        }
        // Drain remaining results so blocked workers can finish and the
        // scope can join. (Only does work after an error.)
        for _ in parsed_rx.iter() {}
    });

    reader_result?;
    collect_result?;

    // Per-relation sort + dedup, fanned out across threads.
    let work: Vec<_> = tuples_by_pred
        .into_iter()
        .map(|(pred, (arity, tuples))| (pred, arity, tuples))
        .collect();
    let built = Mutex::new(Vec::with_capacity(work.len()));
    let queue = Mutex::new(work.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let Some((pred, arity, mut tuples)) =
                    queue.lock().expect("loader mutex poisoned").next()
                else {
                    return;
                };
                tuples.sort_unstable();
                tuples.dedup();
                let rel = Relation::from_sorted(arity, tuples);
                built
                    .lock()
                    .expect("loader mutex poisoned")
                    .push((pred, rel));
            });
        }
    });
    let mut relations = built.into_inner().expect("loader mutex poisoned");
    relations.sort_by_key(|(p, _)| *p);

    // Index builds parallelize at (relation, column) granularity — the
    // common N-Triples load is a single triple/3 relation, which would
    // otherwise serialize all three column builds on one thread.
    let jobs: Vec<(usize, usize)> = relations
        .iter()
        .enumerate()
        .flat_map(|(i, (_, rel))| (0..rel.arity()).map(move |col| (i, col)))
        .collect();
    let job_queue = Mutex::new(jobs.into_iter());
    let indexes = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let Some((i, col)) = job_queue.lock().expect("loader mutex poisoned").next() else {
                    return;
                };
                let rel = &relations[i].1;
                let mut index: HashMap<Const, Vec<u32>> = HashMap::new();
                for (row, t) in rel.tuples().enumerate() {
                    index.entry(t[col]).or_default().push(row as u32);
                }
                indexes
                    .lock()
                    .expect("loader mutex poisoned")
                    .push((i, col, index));
            });
        }
    });
    for (i, col, index) in indexes.into_inner().expect("loader mutex poisoned") {
        relations[i].1.install_column_index(col, index);
    }

    let db = Database::from_sorted(relations);
    let tuples = db.size() as u64;
    let report = LoadReport {
        lines,
        parsed: parsed_count,
        tuples,
        duplicates: parsed_count - tuples,
        relations: db.predicate_count(),
        threads,
    };
    counter!("store.bulk.lines").add(report.lines);
    counter!("store.bulk.tuples").add(report.tuples);
    counter!("store.bulk.duplicates").add(report.duplicates);
    Ok((db, report))
}

/// Bulk-loads a text dataset file.
pub fn bulk_load_path(
    interner: &mut Interner,
    path: &Path,
    opts: LoadOptions,
) -> Result<(Database, LoadReport), StoreError> {
    let f = std::fs::File::open(path)?;
    let mut r = std::io::BufReader::new(f);
    bulk_load(interner, &mut r, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn load(text: &str, opts: LoadOptions) -> Result<(Interner, Database, LoadReport), StoreError> {
        let mut i = Interner::new();
        let (db, report) = bulk_load(&mut i, &mut Cursor::new(text.as_bytes()), opts)?;
        Ok((i, db, report))
    }

    fn tiny_chunks() -> LoadOptions {
        LoadOptions {
            threads: 3,
            chunk_lines: 2,
        }
    }

    #[test]
    fn bulk_load_matches_serial_text_load_on_nt() {
        let mut text = String::new();
        for i in 0..200 {
            text.push_str(&format!("<s{i}> <p{}> <o{}> .\n", i % 7, i % 13));
        }
        text.push_str("<s0> <p0> <o0> .\n"); // duplicate
        let (i1, db1, report) = load(&text, tiny_chunks()).unwrap();
        assert_eq!(report.parsed, 201);
        assert_eq!(report.tuples, 200);
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.lines, 201);

        let mut i2 = Interner::new();
        let db2 =
            crate::text::read_text_database(&mut i2, &mut Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(db1.size(), db2.size());
        assert_eq!(db1.display(&i1), db2.display(&i2));
    }

    #[test]
    fn bulk_load_is_deterministic_across_runs() {
        let mut text = String::new();
        for i in 0..300 {
            text.push_str(&format!("<s{}> <p> <o{}> .\n", i % 31, i));
        }
        let (i1, db1, _) = load(&text, tiny_chunks()).unwrap();
        let (i2, db2, _) = load(&text, tiny_chunks()).unwrap();
        let a = crate::format::snapshot_to_vec(&i1, &db1).unwrap();
        let b = crate::format::snapshot_to_vec(&i2, &db2).unwrap();
        assert_eq!(a, b, "interner ids depend on worker scheduling");
    }

    #[test]
    fn bulk_loads_facts_with_multi_line_atoms() {
        let text = "edge(a,\n b)\nedge(b, c),\nnode(\"x (\")\nedge(a, b)\n";
        let (mut i, db, report) = load(text, tiny_chunks()).unwrap();
        assert_eq!(report.tuples, 3);
        assert_eq!(report.duplicates, 1);
        let e = i.pred("edge");
        assert_eq!(db.relation(e).unwrap().len(), 2);
        let n = i.pred("node");
        let c = i.constant("x (");
        assert!(db.relation(n).unwrap().tuples().any(|t| t[0] == c));
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let text = "<a> <b> <c> .\n<a> <b> <c> .\n<a> <b .\n";
        let err = load(text, tiny_chunks()).unwrap_err();
        match err {
            StoreError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn all_chunks_malformed_does_not_deadlock() {
        // Every chunk errors, so every worker exits early; the reader must
        // notice the hangup instead of blocking on a full channel.
        let mut text = String::new();
        for _ in 0..500 {
            text.push_str("<a> <b .\n");
        }
        let err = load(&text, tiny_chunks()).unwrap_err();
        assert!(matches!(err, StoreError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn rejects_inconsistent_arity() {
        let text = "edge(a, b)\nedge(a, b, c)\n";
        let err = load(text, tiny_chunks()).unwrap_err();
        assert!(matches!(err, StoreError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn empty_input_yields_empty_database() {
        let (_, db, report) = load("", LoadOptions::default()).unwrap();
        assert_eq!(db.size(), 0);
        assert_eq!(report.tuples, 0);
    }

    #[test]
    fn loaded_relations_have_prebuilt_indexes() {
        let text = "<a> <b> <c> .\n<a> <b> <d> .\n";
        let (mut i, db, _) = load(text, LoadOptions::default()).unwrap();
        let p = i.pred("triple");
        let rel = db.relation(p).unwrap();
        for col in 0..rel.arity() {
            assert!(rel.built_column_index(col).is_some());
        }
    }
}
