//! Parallel bulk loading of text datasets with two-pass parallel interning.
//!
//! The pipeline (std-only, scoped threads, no new dependencies):
//!
//! ```text
//! reader thread ──chunks──▶ N parse workers ──coded chunks──▶ main thread
//!   (BufRead,               (string-level parse +             (collects)
//!    line-bounded            per-worker LOCAL dictionary,
//!    chunking)               tuples coded as local u32 ids)
//!
//! then: canonical merge — the union of the local dictionaries is folded
//!       into the global interner in (namespace, name) order
//!       (`Interner::extend_canonical`), so global ids depend only on the
//!       symbol set, never on worker count or scheduling
//! then: parallel remap — each coded chunk is rewritten local→global ids
//!       and grouped by predicate across M threads
//! then: per-relation sort + dedup + (relation, column) index builds
//!       across M threads
//! ```
//!
//! Parsing and interning are both the expensive steps at catalog scale
//! (escape decoding, tokenizing, one hash insert per symbol *occurrence*),
//! and both fan out here: a worker's local dictionary absorbs the per-cell
//! hash traffic (each distinct symbol is hashed once per worker), and the
//! serial section shrinks to merging the per-worker *distinct* symbol sets.
//! The seed pipeline instead interned every cell on one thread in chunk
//! order, which pinned bulk load at ~1.2× regardless of worker count.
//!
//! Determinism: snapshot bytes are a pure function of `(Interner,
//! Database)`, the canonical merge makes global ids a pure function of the
//! input's symbol set, and sort+dedup makes each relation's tuple run a
//! pure function of the input's tuple set — so `build --threads 1` and
//! `--threads 8` write byte-identical snapshots (enforced by tests and the
//! CI `store_smoke` job).
//!
//! Formats match [`crate::text`]: lenient N-Triples (one triple per line —
//! chunks cut anywhere) and the facts format (atoms may span lines — chunks
//! cut only where all parentheses outside quoted constants are balanced,
//! tracked escape-aware so `\"` inside a quoted constant cannot fake a
//! boundary).
//!
//! Input is streamed line by line (bounded `read_until`, no slurping) and
//! the buffered coded form is flat `u32`s — 4 bytes per tuple cell plus two
//! per fact — so peak memory stays proportional to the *output* database,
//! not to the input text.

use crate::format::StoreError;
use crate::text::FactsBalance;
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex};
use wdpt_model::{row_id, Const, Database, Interner, Pred, Relation, SymbolSpace};
use wdpt_obs::{counter, span};
use wdpt_sparql::parse_nt_line;

/// Tuning knobs for [`bulk_load`].
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// Parser worker threads. `0` means one per available core (capped at 8).
    pub threads: usize,
    /// Target lines per chunk handed to a worker.
    pub chunk_lines: usize,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions {
            threads: 0,
            chunk_lines: 4096,
        }
    }
}

impl LoadOptions {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2)
    }
}

/// What a bulk load did, for logs and the CLI.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    /// Input lines read (including blanks and comments).
    pub lines: u64,
    /// Facts/triples parsed (before deduplication).
    pub parsed: u64,
    /// Distinct tuples stored.
    pub tuples: u64,
    /// Duplicates dropped during the merge.
    pub duplicates: u64,
    /// Relations in the resulting database.
    pub relations: usize,
    /// Parser worker threads used.
    pub threads: usize,
    /// Symbols appended to the interner by the canonical merge.
    pub symbols_appended: u64,
}

/// A predicate name with its argument strings, before interning.
type RawAtom = (String, Vec<String>);

/// Per-predicate accumulation during collection: arity plus the (not yet
/// sorted or deduplicated) tuple list.
type PredTuples = HashMap<Pred, (usize, Vec<Box<[Const]>>)>;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Nt,
    Facts,
}

struct Chunk {
    start_line: usize,
    format: Format,
    text: String,
}

fn parse_err(line: usize, message: impl Into<String>) -> StoreError {
    StoreError::Parse {
        line,
        message: message.into(),
    }
}

/// One worker's local dictionary: distinct predicate and constant names in
/// first-seen order, each mapped to a dense *local* `u32` id. Local ids are
/// meaningless across workers; the canonical-merge phase translates them to
/// global interner ids. Predicates also carry the arity of their first use
/// so inconsistent arities fail fast at parse time.
#[derive(Default)]
struct LocalDict {
    preds: Vec<String>,
    pred_ids: HashMap<String, u32>,
    pred_arity: Vec<u32>,
    consts: Vec<String>,
    const_ids: HashMap<String, u32>,
}

impl LocalDict {
    fn intern(names: &mut Vec<String>, ids: &mut HashMap<String, u32>, name: String) -> u32 {
        use std::collections::hash_map::Entry;
        match ids.entry(name) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let id = u32::try_from(names.len()).expect("local dictionary overflow");
                names.push(e.key().clone());
                e.insert(id);
                id
            }
        }
    }

    fn pred(&mut self, name: String, arity: u32) -> Result<u32, String> {
        let id = Self::intern(&mut self.preds, &mut self.pred_ids, name);
        if id as usize == self.pred_arity.len() {
            self.pred_arity.push(arity);
        } else if self.pred_arity[id as usize] != arity {
            return Err(format!(
                "predicate {} used with arities {} and {}",
                self.preds[id as usize], self.pred_arity[id as usize], arity
            ));
        }
        Ok(id)
    }

    fn constant(&mut self, name: String) -> u32 {
        Self::intern(&mut self.consts, &mut self.const_ids, name)
    }
}

/// A chunk's facts coded against one worker's local dictionary, flattened
/// as `[pred, argc, args...]` per fact: 4 bytes per cell plus 8 per fact,
/// in one allocation per chunk — an order of magnitude smaller than the
/// parsed-string form it replaces in the buffered stage.
struct CodedChunk {
    worker: usize,
    code: Vec<u32>,
    facts: u64,
}

/// String-level parser for the facts grammar (`wdpt_model::parse` accepts
/// the same language, but its cursor interns as it goes — this one runs on
/// worker threads against a local dictionary). Ground atoms only: a `?var`
/// argument is an error. Returns byte offsets for errors; the caller maps
/// them to line numbers. Quoted constants decode the same escapes as the
/// serial path (via [`wdpt_model::parse::unescape`]), and the closing-quote
/// scan is escape-aware to match [`FactsBalance`].
fn parse_facts_text(text: &str) -> Result<Vec<RawAtom>, (usize, String)> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let is_ident = |c: char| c.is_alphanumeric() || "_.'-".contains(c);
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && (bytes[*pos] as char).is_whitespace() {
            *pos += 1;
        }
    };
    let ident_len = |from: usize| -> usize {
        text[from..]
            .chars()
            .take_while(|&c| is_ident(c))
            .map(char::len_utf8)
            .sum()
    };
    let mut atoms = Vec::new();
    loop {
        skip_ws(&mut pos);
        if pos >= bytes.len() {
            return Ok(atoms);
        }
        let start = pos;
        pos += ident_len(pos);
        if pos == start {
            return Err((pos, "expected identifier".into()));
        }
        let pred = text[start..pos].to_string();
        skip_ws(&mut pos);
        if bytes.get(pos) != Some(&b'(') {
            return Err((pos, "expected '('".into()));
        }
        pos += 1;
        let mut args = Vec::new();
        skip_ws(&mut pos);
        if bytes.get(pos) == Some(&b')') {
            pos += 1;
        } else {
            loop {
                skip_ws(&mut pos);
                match bytes.get(pos) {
                    Some(b'?') => return Err((pos, "database atoms must be ground".into())),
                    Some(b'"') => {
                        pos += 1;
                        let start = pos;
                        let mut escaped = false;
                        loop {
                            match bytes.get(pos) {
                                None => return Err((start, "unterminated string literal".into())),
                                Some(_) if escaped => {
                                    escaped = false;
                                    pos += 1;
                                }
                                Some(b'\\') => {
                                    escaped = true;
                                    pos += 1;
                                }
                                Some(b'"') => break,
                                Some(_) => pos += 1,
                            }
                        }
                        match wdpt_model::parse::unescape(&text[start..pos]) {
                            Ok(s) => args.push(s.into_owned()),
                            Err(e) => return Err((start + e.at, e.message)),
                        }
                        pos += 1;
                    }
                    Some(_) => {
                        let start = pos;
                        pos += ident_len(pos);
                        if pos == start {
                            return Err((pos, "expected term".into()));
                        }
                        args.push(text[start..pos].to_string());
                    }
                    None => return Err((pos, "expected term".into())),
                }
                skip_ws(&mut pos);
                match bytes.get(pos) {
                    Some(b',') => pos += 1,
                    Some(b')') => {
                        pos += 1;
                        break;
                    }
                    _ => return Err((pos, "expected ',' or ')'".into())),
                }
            }
        }
        atoms.push((pred, args));
        // Optional comma between atoms.
        skip_ws(&mut pos);
        if bytes.get(pos) == Some(&b',') {
            pos += 1;
        }
    }
}

/// Pass 1 per worker: parse a chunk at the string level, then code every
/// fact against the worker's local dictionary.
fn code_chunk(
    chunk: &Chunk,
    worker: usize,
    dict: &mut LocalDict,
) -> Result<CodedChunk, StoreError> {
    let mut code = Vec::new();
    let mut facts = 0u64;
    match chunk.format {
        Format::Nt => {
            for (off, line) in chunk.text.lines().enumerate() {
                match parse_nt_line(line) {
                    Ok(None) => {}
                    Ok(Some((s, p, o))) => {
                        let pred = dict
                            .pred(wdpt_sparql::TRIPLE_PRED.to_owned(), 3)
                            .map_err(|m| parse_err(chunk.start_line + off, m))?;
                        code.push(pred);
                        code.push(3);
                        code.push(dict.constant(s));
                        code.push(dict.constant(p));
                        code.push(dict.constant(o));
                        facts += 1;
                    }
                    Err(e) => return Err(parse_err(chunk.start_line + off, e)),
                }
            }
        }
        Format::Facts => match parse_facts_text(&chunk.text) {
            Ok(atoms) => {
                for (p, args) in atoms {
                    let arity = u32::try_from(args.len()).expect("arity fits u32");
                    let pred = dict
                        .pred(p, arity)
                        .map_err(|m| parse_err(chunk.start_line, m))?;
                    code.push(pred);
                    code.push(arity);
                    for a in args {
                        code.push(dict.constant(a));
                    }
                    facts += 1;
                }
            }
            Err((at, message)) => {
                let line =
                    chunk.start_line + chunk.text[..at.min(chunk.text.len())].matches('\n').count();
                return Err(parse_err(line, message));
            }
        },
    }
    Ok(CodedChunk {
        worker,
        code,
        facts,
    })
}

fn looks_like_facts(data_line: &str) -> bool {
    let first = data_line.split_whitespace().next().unwrap_or("");
    !first.starts_with('<') && !first.starts_with('"') && first.contains('(')
}

/// Accumulates lines into line-bounded chunks (cut only at balanced
/// boundaries for facts) and sends them to the workers.
struct Chunker<'a> {
    format: Format,
    chunk_lines: usize,
    tx: &'a SyncSender<Chunk>,
    chunk: String,
    chunk_start: usize,
    chunk_len: usize,
    balance: FactsBalance,
    /// Set when a send fails — every worker has exited (after reporting an
    /// error), so the reader should stop.
    hung_up: bool,
}

impl<'a> Chunker<'a> {
    fn new(format: Format, chunk_lines: usize, tx: &'a SyncSender<Chunk>) -> Chunker<'a> {
        Chunker {
            format,
            chunk_lines,
            tx,
            chunk: String::new(),
            chunk_start: 0,
            chunk_len: 0,
            balance: FactsBalance::new(),
            hung_up: false,
        }
    }

    fn push_line(&mut self, l: &str, line_no: usize) {
        let t = l.trim();
        let skippable = t.is_empty() || t.starts_with('#');
        let at_boundary = self.format == Format::Nt || self.balance.balanced();
        if skippable && at_boundary {
            return;
        }
        if self.chunk.is_empty() {
            self.chunk_start = line_no;
        }
        if self.format == Format::Facts {
            self.balance.feed(l);
        }
        self.chunk.push_str(l);
        if !l.ends_with('\n') {
            self.chunk.push('\n');
        }
        self.chunk_len += 1;
        let cuttable = self.format == Format::Nt || self.balance.balanced();
        if self.chunk_len >= self.chunk_lines && cuttable {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.chunk.is_empty() {
            return;
        }
        let text = std::mem::take(&mut self.chunk);
        self.chunk_len = 0;
        let send = self.tx.send(Chunk {
            start_line: self.chunk_start,
            format: self.format,
            text,
        });
        if send.is_err() {
            self.hung_up = true;
        }
    }
}

/// The reader loop: sniffs the format from the first data line, then feeds
/// the [`Chunker`]. Reads raw bytes per line (no per-line `String`) and
/// validates UTF-8 in place.
fn read_chunks<R: BufRead>(
    r: &mut R,
    chunk_lines: usize,
    tx: &SyncSender<Chunk>,
) -> Result<u64, StoreError> {
    let mut buf = Vec::new();
    let mut line_no = 0usize;
    let mut chunker: Option<Chunker<'_>> = None;
    loop {
        line_no += 1;
        buf.clear();
        if r.read_until(b'\n', &mut buf)? == 0 {
            break;
        }
        let l = std::str::from_utf8(&buf).map_err(|_| parse_err(line_no, "invalid utf-8"))?;
        match &mut chunker {
            None => {
                let t = l.trim();
                if t.is_empty() || t.starts_with('#') {
                    continue;
                }
                let format = if looks_like_facts(l) {
                    Format::Facts
                } else {
                    Format::Nt
                };
                let mut c = Chunker::new(format, chunk_lines, tx);
                c.push_line(l, line_no);
                chunker = Some(c);
            }
            Some(c) => {
                c.push_line(l, line_no);
                if c.hung_up {
                    return Ok(line_no as u64);
                }
            }
        }
    }
    if let Some(mut c) = chunker {
        c.flush();
    }
    Ok(line_no as u64 - 1)
}

/// Bulk-loads a text dataset from a reader: parallel parse into per-worker
/// local dictionaries, deterministic canonical merge into `interner`,
/// parallel remap, then parallel sort/dedup/index builds. See the module
/// docs for the pipeline and the determinism argument.
pub fn bulk_load<R: BufRead + Send>(
    interner: &mut Interner,
    r: &mut R,
    opts: LoadOptions,
) -> Result<(Database, LoadReport), StoreError> {
    let _g = span!("store.bulk_load");
    let threads = opts.effective_threads();
    let chunk_lines = opts.chunk_lines.max(1);

    let (chunk_tx, chunk_rx) = sync_channel::<Chunk>(threads * 2);
    let (coded_tx, coded_rx) = sync_channel::<Result<CodedChunk, StoreError>>(threads * 2);
    let chunk_rx = Arc::new(Mutex::new(chunk_rx));

    let mut lines = 0u64;
    let mut reader_result: Result<(), StoreError> = Ok(());
    let mut chunks: Vec<CodedChunk> = Vec::new();
    let mut parsed_count = 0u64;
    let mut first_error: Option<StoreError> = None;
    let mut dicts: Vec<LocalDict> = Vec::new();

    // Pass 1: parallel parse + local coding.
    std::thread::scope(|scope| {
        {
            // Move the sender and mutable captures into the reader thread so
            // the channel hangs up when it finishes (or when every worker
            // has exited and a send fails).
            let tx = chunk_tx;
            let lines = &mut lines;
            let reader_result = &mut reader_result;
            let r = &mut *r;
            scope.spawn(move || match read_chunks(r, chunk_lines, &tx) {
                Ok(n) => *lines = n,
                Err(e) => *reader_result = Err(e),
            });
        }
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let chunk_rx = Arc::clone(&chunk_rx);
            let coded_tx = coded_tx.clone();
            handles.push(scope.spawn(move || {
                let mut dict = LocalDict::default();
                loop {
                    let chunk = match chunk_rx.lock().expect("loader mutex poisoned").recv() {
                        Ok(c) => c,
                        Err(_) => break,
                    };
                    let result = code_chunk(&chunk, worker, &mut dict);
                    let failed = result.is_err();
                    if coded_tx.send(result).is_err() || failed {
                        break;
                    }
                }
                dict
            }));
        }
        // Drop the main thread's handles: the workers' receiver clones and
        // sender clones are now the only ones, so hangups propagate.
        drop(chunk_rx);
        drop(coded_tx);

        // Collect coded chunks in arrival order — order does not matter,
        // because determinism comes from the canonical merge below, not
        // from consumption order (the seed's serial reorder buffer and its
        // chunk-order interning are gone entirely).
        for result in coded_rx.iter() {
            match result {
                Ok(c) => {
                    parsed_count += c.facts;
                    chunks.push(c);
                }
                Err(e) => {
                    // Keep the error with the smallest line number so the
                    // reported failure does not depend on which worker
                    // reached its bad chunk first.
                    let better = match (&e, &first_error) {
                        (_, None) => true,
                        (
                            StoreError::Parse { line, .. },
                            Some(StoreError::Parse { line: prev, .. }),
                        ) => line < prev,
                        _ => false,
                    };
                    if better {
                        first_error = Some(e);
                    }
                }
            }
        }
        dicts = handles
            .into_iter()
            .map(|h| h.join().expect("parse worker panicked"))
            .collect();
    });

    reader_result?;
    if let Some(e) = first_error {
        return Err(e);
    }

    // Canonical merge: fold the union of the local dictionaries into the
    // global interner in (namespace, name) order. Ids depend only on the
    // symbol *set* plus the interner's prior contents — not on thread
    // count, chunking, or scheduling — which is what keeps snapshot bytes
    // identical across `--threads` settings.
    let appended = interner.extend_canonical(dicts.iter().flat_map(|d| {
        d.preds
            .iter()
            .map(|n| (SymbolSpace::Pred, n.as_str()))
            .chain(d.consts.iter().map(|n| (SymbolSpace::Const, n.as_str())))
    }));
    counter!("store.intern.appended").add(appended as u64);

    // Per-worker translation tables (local id → global typed id), plus the
    // cross-worker arity consistency check the per-worker parse cannot see.
    let pred_maps: Vec<Vec<Pred>> = dicts
        .iter()
        .map(|d| d.preds.iter().map(|n| interner.pred(n)).collect())
        .collect();
    let const_maps: Vec<Vec<Const>> = dicts
        .iter()
        .map(|d| d.consts.iter().map(|n| interner.constant(n)).collect())
        .collect();
    let mut arity_of: HashMap<Pred, u32> = HashMap::new();
    for (w, d) in dicts.iter().enumerate() {
        for (local, name) in d.preds.iter().enumerate() {
            let pred = pred_maps[w][local];
            let arity = d.pred_arity[local];
            match arity_of.insert(pred, arity) {
                Some(prev) if prev != arity => {
                    return Err(parse_err(
                        0,
                        format!(
                            "predicate {name} used with arities {} and {}",
                            prev.min(arity),
                            prev.max(arity)
                        ),
                    ));
                }
                _ => {}
            }
        }
    }
    drop(arity_of);

    // Pass 2: parallel remap local→global ids, grouping tuples by
    // predicate. Each thread accumulates its own groups; the groups merge
    // by concatenation, and any order differences wash out in the sort
    // below (the tuple multiset is thread-independent).
    let queue = Mutex::new(chunks.into_iter());
    let grouped: Mutex<Vec<PredTuples>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: PredTuples = HashMap::new();
                loop {
                    let next = queue.lock().expect("loader mutex poisoned").next();
                    let Some(chunk) = next else { break };
                    let preds = &pred_maps[chunk.worker];
                    let consts = &const_maps[chunk.worker];
                    let mut at = 0usize;
                    while at < chunk.code.len() {
                        let pred = preds[chunk.code[at] as usize];
                        let argc = chunk.code[at + 1] as usize;
                        let args = &chunk.code[at + 2..at + 2 + argc];
                        at += 2 + argc;
                        let tuple: Box<[Const]> =
                            args.iter().map(|&a| consts[a as usize]).collect();
                        local
                            .entry(pred)
                            .or_insert_with(|| (argc, Vec::new()))
                            .1
                            .push(tuple);
                    }
                }
                grouped.lock().expect("loader mutex poisoned").push(local);
            });
        }
    });
    drop(dicts);
    let mut tuples_by_pred: PredTuples = HashMap::new();
    for local in grouped.into_inner().expect("loader mutex poisoned") {
        for (pred, (arity, mut tuples)) in local {
            tuples_by_pred
                .entry(pred)
                .or_insert_with(|| (arity, Vec::new()))
                .1
                .append(&mut tuples);
        }
    }

    // Per-relation sort + dedup, fanned out across threads.
    let work: Vec<_> = tuples_by_pred
        .into_iter()
        .map(|(pred, (arity, tuples))| (pred, arity, tuples))
        .collect();
    let built = Mutex::new(Vec::with_capacity(work.len()));
    let sort_err: Mutex<Option<StoreError>> = Mutex::new(None);
    let queue = Mutex::new(work.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let Some((pred, arity, mut tuples)) =
                    queue.lock().expect("loader mutex poisoned").next()
                else {
                    return;
                };
                tuples.sort_unstable();
                tuples.dedup();
                // Row ids are u32 everywhere (posting lists, snapshots):
                // reject a >4Gi-row relation with a typed error instead of
                // letting the index build below wrap and alias rows.
                if let Some(last) = tuples.len().checked_sub(1) {
                    if let Err(e) = row_id(last) {
                        *sort_err.lock().expect("loader mutex poisoned") = Some(e.into());
                        return;
                    }
                }
                let rel = Relation::from_sorted(arity, tuples);
                built
                    .lock()
                    .expect("loader mutex poisoned")
                    .push((pred, rel));
            });
        }
    });
    if let Some(e) = sort_err.into_inner().expect("loader mutex poisoned") {
        return Err(e);
    }
    let mut relations = built.into_inner().expect("loader mutex poisoned");
    relations.sort_by_key(|(p, _)| *p);

    // Index builds parallelize at (relation, column) granularity — the
    // common N-Triples load is a single triple/3 relation, which would
    // otherwise serialize all three column builds on one thread.
    let jobs: Vec<(usize, usize)> = relations
        .iter()
        .enumerate()
        .flat_map(|(i, (_, rel))| (0..rel.arity()).map(move |col| (i, col)))
        .collect();
    let job_queue = Mutex::new(jobs.into_iter());
    let indexes = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let Some((i, col)) = job_queue.lock().expect("loader mutex poisoned").next() else {
                    return;
                };
                let rel = &relations[i].1;
                let mut index: HashMap<Const, Vec<u32>> = HashMap::new();
                for (row, t) in rel.tuples().enumerate() {
                    let row = row_id(row).expect("row count checked after dedup");
                    index.entry(t[col]).or_default().push(row);
                }
                indexes
                    .lock()
                    .expect("loader mutex poisoned")
                    .push((i, col, index));
            });
        }
    });
    for (i, col, index) in indexes.into_inner().expect("loader mutex poisoned") {
        relations[i].1.install_column_index(col, index);
    }

    let db = Database::from_sorted(relations);
    let tuples = db.size() as u64;
    let report = LoadReport {
        lines,
        parsed: parsed_count,
        tuples,
        duplicates: parsed_count - tuples,
        relations: db.predicate_count(),
        threads,
        symbols_appended: appended as u64,
    };
    counter!("store.bulk.lines").add(report.lines);
    counter!("store.bulk.tuples").add(report.tuples);
    counter!("store.bulk.duplicates").add(report.duplicates);
    Ok((db, report))
}

/// Bulk-loads a text dataset file.
pub fn bulk_load_path(
    interner: &mut Interner,
    path: &Path,
    opts: LoadOptions,
) -> Result<(Database, LoadReport), StoreError> {
    let f = std::fs::File::open(path)?;
    let mut r = std::io::BufReader::new(f);
    bulk_load(interner, &mut r, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn load(text: &str, opts: LoadOptions) -> Result<(Interner, Database, LoadReport), StoreError> {
        let mut i = Interner::new();
        let (db, report) = bulk_load(&mut i, &mut Cursor::new(text.as_bytes()), opts)?;
        Ok((i, db, report))
    }

    fn tiny_chunks() -> LoadOptions {
        LoadOptions {
            threads: 3,
            chunk_lines: 2,
        }
    }

    #[test]
    fn bulk_load_matches_serial_text_load_on_nt() {
        let mut text = String::new();
        for i in 0..200 {
            text.push_str(&format!("<s{i}> <p{}> <o{}> .\n", i % 7, i % 13));
        }
        text.push_str("<s0> <p0> <o0> .\n"); // duplicate
        let (i1, db1, report) = load(&text, tiny_chunks()).unwrap();
        assert_eq!(report.parsed, 201);
        assert_eq!(report.tuples, 200);
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.lines, 201);
        assert!(report.symbols_appended > 0);

        let mut i2 = Interner::new();
        let db2 =
            crate::text::read_text_database(&mut i2, &mut Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(db1.size(), db2.size());
        assert_eq!(db1.display(&i1), db2.display(&i2));
    }

    #[test]
    fn bulk_load_is_deterministic_across_runs() {
        let mut text = String::new();
        for i in 0..300 {
            text.push_str(&format!("<s{}> <p> <o{}> .\n", i % 31, i));
        }
        let (i1, db1, _) = load(&text, tiny_chunks()).unwrap();
        let (i2, db2, _) = load(&text, tiny_chunks()).unwrap();
        let a = crate::format::snapshot_to_vec(&i1, &db1).unwrap();
        let b = crate::format::snapshot_to_vec(&i2, &db2).unwrap();
        assert_eq!(a, b, "interner ids depend on worker scheduling");
    }

    #[test]
    fn snapshot_bytes_are_identical_across_thread_counts() {
        let mut text = String::new();
        for i in 0..400 {
            text.push_str(&format!("<s{}> <p{}> <o{}> .\n", i % 37, i % 5, i % 53));
        }
        text.push_str("mixed_case <p0> \"a literal\" .\n");
        let mut reference: Option<Vec<u8>> = None;
        for threads in [1usize, 2, 5] {
            let opts = LoadOptions {
                threads,
                chunk_lines: 3,
            };
            let (i, db, _) = load(&text, opts).unwrap();
            let bytes = crate::format::snapshot_to_vec(&i, &db).unwrap();
            match &reference {
                None => reference = Some(bytes),
                Some(r) => assert_eq!(r, &bytes, "thread count {threads} changed the bytes"),
            }
        }
    }

    #[test]
    fn bulk_load_appends_canonically_to_a_non_empty_interner() {
        // The delta path and multi-dataset serve loads start from an
        // interner that already has symbols: existing ids must survive and
        // new ids must not depend on the thread count.
        let text = "<a> <p> <b> .\n<c> <p> <d> .\n";
        let mut outcomes = Vec::new();
        for threads in [1usize, 4] {
            let mut i = Interner::new();
            let keep = i.constant("p");
            let (db, _) = bulk_load(
                &mut i,
                &mut Cursor::new(text.as_bytes()),
                LoadOptions {
                    threads,
                    chunk_lines: 1,
                },
            )
            .unwrap();
            assert_eq!(i.constant("p"), keep, "existing id moved");
            let listing: Vec<(SymbolSpace, String)> =
                i.symbols().map(|(s, n)| (s, n.to_owned())).collect();
            outcomes.push((listing, db.display(&i)));
        }
        assert_eq!(outcomes[0], outcomes[1]);
    }

    #[test]
    fn bulk_loads_facts_with_multi_line_atoms() {
        let text = "edge(a,\n b)\nedge(b, c),\nnode(\"x (\")\nedge(a, b)\n";
        let (mut i, db, report) = load(text, tiny_chunks()).unwrap();
        assert_eq!(report.tuples, 3);
        assert_eq!(report.duplicates, 1);
        let e = i.pred("edge");
        assert_eq!(db.relation(e).unwrap().len(), 2);
        let n = i.pred("node");
        let c = i.constant("x (");
        assert!(db.relation(n).unwrap().tuples().any(|t| t[0] == c));
    }

    #[test]
    fn facts_escapes_on_chunk_edges_parse_identically() {
        // Escaped quotes and `\u` escapes sit exactly where the chunker
        // considers cutting (line ends, `chunk_lines: 1` makes every line a
        // candidate boundary). The old quote toggle treated `\"` as a
        // closing quote, saw the atom as balanced mid-string, and cut a
        // chunk that mis-parsed on both sides of the boundary.
        let text = concat!(
            "edge(a, \"x\\\")\n",     // escaped quote right before a ')'
            "\", b)\n",               // string closes on the next line
            "node(\"\\u0028\")\n",    // decodes to "(" — must not unbalance
            "node(\"(\\u0029\")\n",   // literal "(" inside quotes + escaped ")"
            "edge(\"\\\\\", c, d)\n", // escaped backslash then a real close
        );
        let opts = LoadOptions {
            threads: 3,
            chunk_lines: 1,
        };
        let (i1, db1, report) = load(text, opts).unwrap();
        assert_eq!(report.tuples, 4);

        // Serial oracle: identical database, symbol for symbol.
        let mut i2 = Interner::new();
        let db2 =
            crate::text::read_text_database(&mut i2, &mut Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(db1.display(&i1), db2.display(&i2));

        let mut i1 = i1;
        let e = i1.pred("edge");
        let c = i1.constant("x\")\n");
        assert!(db1.relation(e).unwrap().tuples().any(|t| t[1] == c));
        let bs = i1.constant("\\");
        assert!(db1.relation(e).unwrap().tuples().any(|t| t[0] == bs));
        let n = i1.pred("node");
        let par = i1.constant("(");
        let both = i1.constant("()");
        let tuples: Vec<_> = db1.relation(n).unwrap().tuples().map(|t| t[0]).collect();
        assert!(tuples.contains(&par) && tuples.contains(&both));
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let text = "<a> <b> <c> .\n<a> <b> <c> .\n<a> <b .\n";
        let err = load(text, tiny_chunks()).unwrap_err();
        match err {
            StoreError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn error_line_is_the_smallest_across_workers() {
        // Two malformed lines in different chunks: whichever worker errors
        // first, the reported line must be the earlier one.
        let text = "<a> <b> <c> .\n<bad .\n<a> <b> <c> .\n<also bad .\n";
        for _ in 0..10 {
            let err = load(text, tiny_chunks()).unwrap_err();
            match err {
                StoreError::Parse { line, .. } => assert_eq!(line, 2),
                other => panic!("expected Parse, got {other:?}"),
            }
        }
    }

    #[test]
    fn all_chunks_malformed_does_not_deadlock() {
        // Every chunk errors, so every worker exits early; the reader must
        // notice the hangup instead of blocking on a full channel.
        let mut text = String::new();
        for _ in 0..500 {
            text.push_str("<a> <b .\n");
        }
        let err = load(&text, tiny_chunks()).unwrap_err();
        assert!(matches!(err, StoreError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn rejects_inconsistent_arity() {
        let text = "edge(a, b)\nedge(a, b, c)\n";
        let err = load(text, tiny_chunks()).unwrap_err();
        assert!(matches!(err, StoreError::Parse { .. }), "{err:?}");
        // Same outcome when the conflicting uses land on different workers.
        let text = "edge(a, b)\n\n\n\n\n\n\n\nedge(a, b, c)\n";
        let err = load(text, tiny_chunks()).unwrap_err();
        assert!(matches!(err, StoreError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn empty_input_yields_empty_database() {
        let (_, db, report) = load("", LoadOptions::default()).unwrap();
        assert_eq!(db.size(), 0);
        assert_eq!(report.tuples, 0);
    }

    #[test]
    fn loaded_relations_have_prebuilt_indexes() {
        let text = "<a> <b> <c> .\n<a> <b> <d> .\n";
        let (mut i, db, _) = load(text, LoadOptions::default()).unwrap();
        let p = i.pred("triple");
        let rel = db.relation(p).unwrap();
        for col in 0..rel.arity() {
            assert!(rel.built_column_index(col).is_some());
        }
    }
}
