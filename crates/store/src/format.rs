//! The versioned binary snapshot format for an `(Interner, Database)` pair.
//!
//! Layout (all integers little-endian; see `DESIGN.md` §8 for the rationale
//! and versioning rules):
//!
//! ```text
//! magic    b"WDPTSNAP"                                       8 bytes
//! version  u32                                               = 1
//! section* tag u8 · len u64 · payload · crc32 u32
//! ```
//!
//! The CRC of a section covers its tag and length as well as the payload,
//! so *any* single corrupted byte after the version field is caught by a
//! checksum rather than by undefined downstream behavior. Sections appear
//! in a fixed order:
//!
//! | tag  | section    | payload                                          |
//! |------|------------|--------------------------------------------------|
//! | 0x01 | header     | symbols u64 · fresh u64 · relations u32 · tuples u64 |
//! | 0x02 | dictionary | per symbol: space u8 · len u32 · UTF-8 bytes     |
//! | 0x03 | relation   | pred u32 · arity u32 · rows u64 · column-major cells · per-column posting index |
//! | 0xFF | end        | empty                                            |
//!
//! Relation tuples are stored **sorted** (lexicographic on `Const` ids,
//! deduplicated) and column-major; each column also serializes its posting
//! index (`key → ascending row list`, keys ascending), so the decoder
//! reconstructs `Relation`s whose `matching` works immediately with zero
//! index rebuild. The decoder validates every structural invariant it
//! relies on (sortedness, posting targets, namespace of every id) and
//! returns a typed [`StoreError`] — never a panic — on anything off.

use crate::crc::{crc32, Crc32};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use wdpt_model::{Const, Database, Interner, Pred, Relation, SymbolSpace};
use wdpt_obs::{counter, span};

/// The eight magic bytes opening every snapshot.
pub const MAGIC: [u8; 8] = *b"WDPTSNAP";
/// The current (and only) format version.
pub const VERSION: u32 = 1;

pub(crate) const TAG_HEADER: u8 = 0x01;
pub(crate) const TAG_DICTIONARY: u8 = 0x02;
pub(crate) const TAG_RELATION: u8 = 0x03;
pub(crate) const TAG_DELTA_HEADER: u8 = 0x04;
pub(crate) const TAG_RELATION_DELTA: u8 = 0x05;
pub(crate) const TAG_END: u8 = 0xFF;

/// Everything that can go wrong reading or writing a snapshot. Corruption
/// surfaces as `Truncated` / `ChecksumMismatch` / `Malformed`, each naming
/// the section at fault so `wdpt-store verify` can point at it.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is not one this build can read.
    UnsupportedVersion(u32),
    /// The file ends before the named section is complete.
    Truncated {
        /// Which section was being read.
        section: String,
    },
    /// A section's CRC does not match its bytes.
    ChecksumMismatch {
        /// Which section failed its checksum.
        section: String,
    },
    /// A section passed its checksum but violates a structural invariant
    /// (impossible for files written by this crate — a hand-edited or
    /// adversarial input).
    Malformed {
        /// Which section is malformed.
        section: String,
        /// What invariant failed.
        detail: String,
    },
    /// A value does not fit the fixed-width field the format gives it
    /// (e.g. more than `u32::MAX` rows in one relation). Raised at encode
    /// time so a too-wide value can never be silently truncated into a
    /// corrupt-but-valid-CRC snapshot.
    TooLarge {
        /// Which quantity overflowed its wire field.
        what: String,
        /// The value that did not fit.
        value: u64,
    },
    /// A text-input parse failure from the bulk loader, with its 1-based
    /// line number.
    Parse {
        /// 1-based line number in the text input.
        line: usize,
        /// What was wrong with the line.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a wdpt snapshot (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {VERSION})"
                )
            }
            StoreError::Truncated { section } => {
                write!(f, "snapshot truncated inside the {section} section")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in the {section} section")
            }
            StoreError::Malformed { section, detail } => {
                write!(f, "malformed {section} section: {detail}")
            }
            StoreError::TooLarge { what, value } => {
                write!(f, "{what} ({value}) exceeds the format's u32 field width")
            }
            StoreError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<wdpt_model::TooManyRows> for StoreError {
    fn from(e: wdpt_model::TooManyRows) -> StoreError {
        StoreError::TooLarge {
            what: "relation row id".to_string(),
            value: e.rows,
        }
    }
}

/// Checked narrowing for every u32-wide wire field: a value that does not
/// fit becomes a typed [`StoreError::TooLarge`] instead of a silent
/// truncation that would CRC-validate and decode as garbage.
pub(crate) fn len_u32(value: usize, what: &str) -> Result<u32, StoreError> {
    u32::try_from(value).map_err(|_| StoreError::TooLarge {
        what: what.to_string(),
        value: value as u64,
    })
}

/// FNV-1a 64-bit hash of a whole file's bytes. Used to chain delta
/// snapshots to the exact base (or predecessor delta) they were computed
/// against — cheap, dependency-free, and stable across platforms.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn space_code(space: SymbolSpace) -> u8 {
    match space {
        SymbolSpace::Var => 0,
        SymbolSpace::Const => 1,
        SymbolSpace::Pred => 2,
    }
}

pub(crate) fn space_from_code(code: u8) -> Option<SymbolSpace> {
    match code {
        0 => Some(SymbolSpace::Var),
        1 => Some(SymbolSpace::Const),
        2 => Some(SymbolSpace::Pred),
        _ => None,
    }
}

pub(crate) fn push_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let mut crc = Crc32::new();
    crc.update(&[tag]);
    crc.update(&(payload.len() as u64).to_le_bytes());
    crc.update(payload);
    out.extend_from_slice(&crc.finish().to_le_bytes());
}

/// Serializes a snapshot to bytes. Deterministic: the same `(Interner,
/// Database)` pair always yields identical bytes (relations ordered by
/// predicate id, posting keys ascending), so snapshots can be compared and
/// cached byte-wise.
pub fn snapshot_to_vec(interner: &Interner, db: &Database) -> Result<Vec<u8>, StoreError> {
    let _g = span!("store.encode");
    let mut rel_order: Vec<(Pred, &Relation)> = db.relations().collect();
    rel_order.sort_by_key(|(p, _)| *p);

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());

    // Header.
    let mut header = Vec::with_capacity(8 + 8 + 4 + 8);
    header.extend_from_slice(&(interner.len() as u64).to_le_bytes());
    header.extend_from_slice(&interner.fresh_counter().to_le_bytes());
    header.extend_from_slice(&len_u32(rel_order.len(), "relation count")?.to_le_bytes());
    header.extend_from_slice(&(db.size() as u64).to_le_bytes());
    push_section(&mut out, TAG_HEADER, &header);

    // Dictionary: every interned symbol, in id order.
    push_section(
        &mut out,
        TAG_DICTIONARY,
        &encode_dictionary(interner.symbols())?,
    );

    // Relations, sorted tuples, column-major, plus per-column postings.
    for (pred, rel) in rel_order {
        let mut rows: Vec<&[Const]> = rel.tuples().collect();
        rows.sort_unstable();
        let arity = rel.arity();
        let mut payload = Vec::with_capacity(16 + rows.len() * arity * 4);
        payload.extend_from_slice(&pred.0.to_le_bytes());
        payload.extend_from_slice(&len_u32(arity, "relation arity")?.to_le_bytes());
        payload.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        // One up-front check makes every row index below a valid u32.
        len_u32(rows.len(), "relation row count")?;
        for col in 0..arity {
            for t in &rows {
                payload.extend_from_slice(&t[col].0.to_le_bytes());
            }
        }
        // Posting indexes are derived from the *sorted* row order here (the
        // in-memory relation's lazily-built indexes, if any, refer to
        // insertion order). BTreeMap keeps keys ascending → determinism.
        for col in 0..arity {
            let mut postings: std::collections::BTreeMap<Const, Vec<u32>> = Default::default();
            for (row, t) in rows.iter().enumerate() {
                postings
                    .entry(t[col])
                    .or_default()
                    .push(len_u32(row, "posting row index")?);
            }
            payload.extend_from_slice(&(postings.len() as u64).to_le_bytes());
            for (key, rows_for_key) in &postings {
                payload.extend_from_slice(&key.0.to_le_bytes());
                payload.extend_from_slice(
                    &len_u32(rows_for_key.len(), "posting length")?.to_le_bytes(),
                );
            }
            for rows_for_key in postings.values() {
                for &r in rows_for_key {
                    payload.extend_from_slice(&r.to_le_bytes());
                }
            }
        }
        push_section(&mut out, TAG_RELATION, &payload);
    }

    push_section(&mut out, TAG_END, &[]);
    counter!("store.snapshot.bytes_encoded").add(out.len() as u64);
    Ok(out)
}

/// Encodes a run of dictionary entries (`space u8 · len u32 · bytes`) —
/// shared between the full snapshot dictionary and the appended-symbols
/// dictionary of a delta.
pub(crate) fn encode_dictionary<'a>(
    symbols: impl Iterator<Item = (SymbolSpace, &'a str)>,
) -> Result<Vec<u8>, StoreError> {
    let mut dict = Vec::new();
    for (space, name) in symbols {
        dict.push(space_code(space));
        dict.extend_from_slice(&len_u32(name.len(), "symbol name length")?.to_le_bytes());
        dict.extend_from_slice(name.as_bytes());
    }
    Ok(dict)
}

/// Writes a snapshot to a writer. Returns the byte count.
pub fn write_snapshot<W: Write>(
    w: &mut W,
    interner: &Interner,
    db: &Database,
) -> Result<u64, StoreError> {
    let bytes = snapshot_to_vec(interner, db)?;
    w.write_all(&bytes)?;
    Ok(bytes.len() as u64)
}

/// Writes a snapshot to a file (atomically: a temp file in the same
/// directory, then a rename, so a crash mid-write never leaves a partial
/// snapshot under the final name).
pub fn save_snapshot(path: &Path, interner: &Interner, db: &Database) -> Result<u64, StoreError> {
    let _g = span!("store.save_snapshot");
    let tmp = path.with_extension("snap.tmp");
    let mut f = std::fs::File::create(&tmp)?;
    let n = write_snapshot(&mut f, interner, db)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    counter!("store.snapshot.saves").add(1);
    Ok(n)
}

/// A byte reader with typed truncation errors.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize, section: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                section: section.to_string(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, section: &str) -> Result<u8, StoreError> {
        Ok(self.take(1, section)?[0])
    }

    pub(crate) fn u32(&mut self, section: &str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, section)?.try_into().unwrap(),
        ))
    }

    pub(crate) fn u64(&mut self, section: &str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, section)?.try_into().unwrap(),
        ))
    }
}

pub(crate) fn malformed(section: &str, detail: impl Into<String>) -> StoreError {
    StoreError::Malformed {
        section: section.to_string(),
        detail: detail.into(),
    }
}

/// A checksummed section sliced out of the snapshot.
pub(crate) struct Section<'a> {
    pub(crate) tag: u8,
    pub(crate) payload: &'a [u8],
}

/// Reads the next section, verifying its CRC. `label` names the section we
/// *expect* for error messages before the tag is known.
pub(crate) fn read_section<'a>(r: &mut Reader<'a>, label: &str) -> Result<Section<'a>, StoreError> {
    let start = r.pos;
    let tag = r.u8(label)?;
    let len = r.u64(label)?;
    let len = usize::try_from(len).map_err(|_| malformed(label, "section length overflow"))?;
    let payload = r.take(len, label)?;
    let stored_crc = r.u32(label)?;
    // CRC covers tag + len + payload — i.e. everything since `start` except
    // the CRC field itself.
    let computed = crc32(&r.bytes[start..start + 1 + 8 + len]);
    if computed != stored_crc {
        return Err(StoreError::ChecksumMismatch {
            section: label.to_string(),
        });
    }
    Ok(Section { tag, payload })
}

/// The parsed header section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version of the file.
    pub version: u32,
    /// Interned symbols across all namespaces.
    pub symbols: u64,
    /// The interner's fresh-name counter.
    pub fresh_counter: u64,
    /// Number of relation sections.
    pub relations: u32,
    /// Total tuple count across relations.
    pub tuples: u64,
}

/// Summary of one relation section (from [`inspect_snapshot`]).
#[derive(Debug, Clone)]
pub struct RelationSummary {
    /// The predicate's interned id.
    pub pred: u32,
    /// The predicate's name, when the dictionary resolves it.
    pub name: String,
    /// Relation arity.
    pub arity: u32,
    /// Tuple count.
    pub rows: u64,
    /// Serialized size of the section payload in bytes.
    pub bytes: usize,
}

/// A full snapshot summary: what `wdpt-store inspect` prints.
#[derive(Debug, Clone)]
pub struct SnapshotSummary {
    /// The parsed header.
    pub header: SnapshotHeader,
    /// Per-relation summaries, in file order.
    pub relations: Vec<RelationSummary>,
    /// Total file size in bytes.
    pub bytes: usize,
}

pub(crate) fn read_magic_version(r: &mut Reader<'_>) -> Result<u32, StoreError> {
    let magic = r.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u32("version")?;
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    Ok(version)
}

fn parse_header(payload: &[u8], version: u32) -> Result<SnapshotHeader, StoreError> {
    let mut r = Reader::new(payload);
    let header = SnapshotHeader {
        version,
        symbols: r.u64("header")?,
        fresh_counter: r.u64("header")?,
        relations: r.u32("header")?,
        tuples: r.u64("header")?,
    };
    if r.remaining() != 0 {
        return Err(malformed("header", "trailing bytes"));
    }
    Ok(header)
}

pub(crate) fn expect_tag(section: &Section<'_>, tag: u8, label: &str) -> Result<(), StoreError> {
    if section.tag != tag {
        return Err(malformed(
            label,
            format!(
                "expected section tag {tag:#04x}, found {:#04x}",
                section.tag
            ),
        ));
    }
    Ok(())
}

fn parse_dictionary(
    payload: &[u8],
    header: &SnapshotHeader,
) -> Result<Vec<(SymbolSpace, String)>, StoreError> {
    let count = usize::try_from(header.symbols)
        .ok()
        .filter(|&n| u32::try_from(n).is_ok())
        .ok_or_else(|| malformed("dictionary", "symbol count exceeds u32 id space"))?;
    parse_dictionary_entries(payload, count)
}

/// Parses exactly `count` dictionary entries from `payload` (shared with
/// the appended-symbols dictionary of a delta snapshot).
pub(crate) fn parse_dictionary_entries(
    payload: &[u8],
    count: usize,
) -> Result<Vec<(SymbolSpace, String)>, StoreError> {
    let mut r = Reader::new(payload);
    let mut symbols = Vec::new();
    for i in 0..count {
        let space = space_from_code(r.u8("dictionary")?)
            .ok_or_else(|| malformed("dictionary", format!("bad namespace code for symbol {i}")))?;
        let len = r.u32("dictionary")? as usize;
        let bytes = r.take(len, "dictionary")?;
        let name = std::str::from_utf8(bytes)
            .map_err(|_| malformed("dictionary", format!("symbol {i} is not UTF-8")))?;
        symbols.push((space, name.to_string()));
    }
    if r.remaining() != 0 {
        return Err(malformed("dictionary", "trailing bytes"));
    }
    Ok(symbols)
}

/// Per-symbol namespace lookup table for cell validation (dense, so the
/// per-cell check in relation decoding is an array index, not a hash probe).
pub(crate) struct SpaceTable {
    pub(crate) spaces: Vec<SymbolSpace>,
}

impl SpaceTable {
    /// Builds the table from an interner's id-ordered symbol listing.
    pub(crate) fn from_interner(interner: &Interner) -> SpaceTable {
        SpaceTable {
            spaces: interner.symbols().map(|(s, _)| s).collect(),
        }
    }

    pub(crate) fn is(&self, id: u32, space: SymbolSpace) -> bool {
        self.spaces.get(id as usize) == Some(&space)
    }
}

struct DecodedRelation {
    pred: Pred,
    relation: Relation,
}

fn parse_relation(
    payload: &[u8],
    idx: usize,
    spaces: &SpaceTable,
) -> Result<DecodedRelation, StoreError> {
    let label = format!("relation[{idx}]");
    let label = label.as_str();
    let mut r = Reader::new(payload);
    let pred_id = r.u32(label)?;
    if !spaces.is(pred_id, SymbolSpace::Pred) {
        return Err(malformed(label, format!("id {pred_id} is not a predicate")));
    }
    let arity = r.u32(label)? as usize;
    let rows_u64 = r.u64(label)?;
    let rows = usize::try_from(rows_u64).map_err(|_| malformed(label, "row count overflow"))?;
    let cells = arity
        .checked_mul(rows)
        .and_then(|c| c.checked_mul(4))
        .ok_or_else(|| malformed(label, "cell count overflow"))?;
    if r.remaining() < cells {
        return Err(StoreError::Truncated {
            section: label.to_string(),
        });
    }

    // Columns are stored column-major; reassemble row-major tuples.
    let mut columns: Vec<Vec<Const>> = Vec::with_capacity(arity);
    for col in 0..arity {
        let raw = r.take(rows * 4, label)?;
        let mut column = Vec::with_capacity(rows);
        for cell in raw.chunks_exact(4) {
            let id = u32::from_le_bytes(cell.try_into().unwrap());
            if !spaces.is(id, SymbolSpace::Const) {
                return Err(malformed(
                    label,
                    format!("column {col} holds id {id}, which is not a constant"),
                ));
            }
            column.push(Const(id));
        }
        columns.push(column);
    }
    let mut tuples: Vec<Box<[Const]>> = Vec::with_capacity(rows);
    for row in 0..rows {
        tuples.push(columns.iter().map(|c| c[row]).collect());
    }
    if let Some(w) = tuples.windows(2).find(|w| w[0] >= w[1]) {
        let detail = if w[0] == w[1] {
            "duplicate tuple in sorted block"
        } else {
            "tuple block is not sorted"
        };
        return Err(malformed(label, detail));
    }
    if arity == 0 && rows > 1 {
        return Err(malformed(label, "nullary relation with more than one row"));
    }

    // Posting indexes: keys ascending, row lists ascending, every entry
    // pointing at a row whose cell really holds the key, and exactly `rows`
    // entries per column — together that pins the index to be exactly what
    // a rebuild would produce.
    let mut indexes: Vec<HashMap<Const, Vec<u32>>> = Vec::with_capacity(arity);
    // The loop is driven by the wire format (one serialized index per
    // column, read sequentially), not by iterating `tuples`.
    #[allow(clippy::needless_range_loop)]
    for col in 0..arity {
        let keys = r.u64(label)?;
        let keys = usize::try_from(keys).map_err(|_| malformed(label, "key count overflow"))?;
        if keys > rows {
            return Err(malformed(
                label,
                format!("column {col} claims {keys} keys for {rows} rows"),
            ));
        }
        let mut lens: Vec<(Const, u32)> = Vec::with_capacity(keys);
        let mut prev_key: Option<u32> = None;
        let mut total: u64 = 0;
        for _ in 0..keys {
            let key = r.u32(label)?;
            if prev_key.is_some_and(|p| p >= key) {
                return Err(malformed(label, format!("column {col} keys not ascending")));
            }
            prev_key = Some(key);
            if !spaces.is(key, SymbolSpace::Const) {
                return Err(malformed(
                    label,
                    format!("column {col} posting key {key} is not a constant"),
                ));
            }
            let len = r.u32(label)?;
            total += u64::from(len);
            lens.push((Const(key), len));
        }
        if total != rows_u64 {
            return Err(malformed(
                label,
                format!("column {col} postings cover {total} rows, expected {rows_u64}"),
            ));
        }
        let mut index: HashMap<Const, Vec<u32>> = HashMap::with_capacity(keys);
        for (key, len) in lens {
            let mut postings = Vec::with_capacity(len as usize);
            let mut prev: Option<u32> = None;
            for _ in 0..len {
                let row = r.u32(label)?;
                if row as usize >= rows {
                    return Err(malformed(
                        label,
                        format!("column {col} posting row {row} out of range"),
                    ));
                }
                if prev.is_some_and(|p| p >= row) {
                    return Err(malformed(
                        label,
                        format!("column {col} postings for {} not ascending", key.0),
                    ));
                }
                prev = Some(row);
                postings.push(row);
            }
            index.insert(key, postings);
        }
        // Cross-check every posting against the tuple block.
        for (key, postings) in &index {
            for &row in postings {
                if tuples[row as usize][col] != *key {
                    return Err(malformed(
                        label,
                        format!(
                            "column {col} posting for id {} points at a mismatched row",
                            key.0
                        ),
                    ));
                }
            }
        }
        indexes.push(index);
    }
    if r.remaining() != 0 {
        return Err(malformed(label, "trailing bytes"));
    }
    let mut relation = Relation::from_sorted(arity, tuples);
    for (col, index) in indexes.into_iter().enumerate() {
        relation.install_column_index(col, index);
    }
    Ok(DecodedRelation {
        pred: Pred(pred_id),
        relation,
    })
}

/// Decodes a snapshot from bytes into a fresh `(Interner, Database)` pair.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(Interner, Database), StoreError> {
    let _g = span!("store.decode");
    let mut r = Reader::new(bytes);
    let version = read_magic_version(&mut r)?;

    let section = read_section(&mut r, "header")?;
    if section.tag == TAG_DELTA_HEADER {
        return Err(malformed(
            "header",
            "file is a delta snapshot; apply it to its base first (wdpt-store apply)",
        ));
    }
    expect_tag(&section, TAG_HEADER, "header")?;
    let header = parse_header(section.payload, version)?;

    let section = read_section(&mut r, "dictionary")?;
    expect_tag(&section, TAG_DICTIONARY, "dictionary")?;
    let symbols = parse_dictionary(section.payload, &header)?;
    let spaces = SpaceTable {
        spaces: symbols.iter().map(|(s, _)| *s).collect(),
    };
    let interner = Interner::from_symbols(symbols, header.fresh_counter)
        .ok_or_else(|| malformed("dictionary", "duplicate symbol entry"))?;

    let mut relations: Vec<(Pred, Relation)> = Vec::with_capacity(header.relations as usize);
    let mut seen_preds = std::collections::HashSet::new();
    let mut total_tuples: u64 = 0;
    for idx in 0..header.relations as usize {
        let label = format!("relation[{idx}]");
        let section = read_section(&mut r, &label)?;
        expect_tag(&section, TAG_RELATION, &label)?;
        let decoded = parse_relation(section.payload, idx, &spaces)?;
        if !seen_preds.insert(decoded.pred) {
            return Err(malformed(&label, "predicate appears in two relations"));
        }
        total_tuples += decoded.relation.len() as u64;
        relations.push((decoded.pred, decoded.relation));
    }
    if total_tuples != header.tuples {
        return Err(malformed(
            "header",
            format!(
                "header claims {} tuples, sections hold {total_tuples}",
                header.tuples
            ),
        ));
    }

    let section = read_section(&mut r, "end")?;
    expect_tag(&section, TAG_END, "end")?;
    if !section.payload.is_empty() {
        return Err(malformed("end", "non-empty end section"));
    }
    if r.remaining() != 0 {
        return Err(malformed("end", "trailing bytes after end section"));
    }

    counter!("store.snapshot.loads").add(1);
    counter!("store.snapshot.tuples_loaded").add(total_tuples);
    Ok((interner, Database::from_sorted(relations)))
}

/// Reads and decodes a snapshot from any reader.
pub fn read_snapshot<R: Read>(r: &mut R) -> Result<(Interner, Database), StoreError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_snapshot(&bytes)
}

/// Loads a snapshot file.
pub fn load_snapshot(path: &Path) -> Result<(Interner, Database), StoreError> {
    let _g = span!("store.load_snapshot");
    let bytes = std::fs::read(path)?;
    decode_snapshot(&bytes)
}

/// Walks a snapshot's sections — verifying magic, version, and every CRC —
/// and returns a summary **without** materializing the database. This is
/// `wdpt-store inspect`; [`decode_snapshot`] (used by `verify`) adds the
/// full structural validation on top.
pub fn inspect_snapshot(bytes: &[u8]) -> Result<SnapshotSummary, StoreError> {
    let mut r = Reader::new(bytes);
    let version = read_magic_version(&mut r)?;
    let section = read_section(&mut r, "header")?;
    if section.tag == TAG_DELTA_HEADER {
        return Err(malformed(
            "header",
            "file is a delta snapshot; apply it to its base first (wdpt-store apply)",
        ));
    }
    expect_tag(&section, TAG_HEADER, "header")?;
    let header = parse_header(section.payload, version)?;

    let section = read_section(&mut r, "dictionary")?;
    expect_tag(&section, TAG_DICTIONARY, "dictionary")?;
    let symbols = parse_dictionary(section.payload, &header)?;

    let mut relations = Vec::with_capacity(header.relations as usize);
    for idx in 0..header.relations as usize {
        let label = format!("relation[{idx}]");
        let section = read_section(&mut r, &label)?;
        expect_tag(&section, TAG_RELATION, &label)?;
        let mut pr = Reader::new(section.payload);
        let pred = pr.u32(&label)?;
        let arity = pr.u32(&label)?;
        let rows = pr.u64(&label)?;
        let name = symbols
            .get(pred as usize)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("<unknown id {pred}>"));
        relations.push(RelationSummary {
            pred,
            name,
            arity,
            rows,
            bytes: section.payload.len(),
        });
    }
    let section = read_section(&mut r, "end")?;
    expect_tag(&section, TAG_END, "end")?;
    if r.remaining() != 0 {
        return Err(malformed("end", "trailing bytes after end section"));
    }
    Ok(SnapshotSummary {
        header,
        relations,
        bytes: bytes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Interner, Database) {
        let mut i = Interner::new();
        let e = i.pred("edge");
        let n = i.pred("node");
        let (a, b, c) = (i.constant("a"), i.constant("b"), i.constant("c"));
        i.var("x"); // vars serialize too
        let mut db = Database::new();
        db.insert(e, vec![b, c]);
        db.insert(e, vec![a, b]);
        db.insert(n, vec![a]);
        db.insert(n, vec![c]);
        (i, db)
    }

    #[test]
    fn round_trips_a_small_database() {
        let (i, db) = sample();
        let bytes = snapshot_to_vec(&i, &db).unwrap();
        let (i2, db2) = decode_snapshot(&bytes).unwrap();
        assert_eq!(i2.len(), i.len());
        assert_eq!(db2.size(), db.size());
        assert_eq!(db2.active_domain(), db.active_domain());
        assert_eq!(db2.display(&i2), db.display(&i));
    }

    #[test]
    fn decoded_relations_have_installed_indexes() {
        let (mut i, db) = sample();
        let bytes = snapshot_to_vec(&i, &db).unwrap();
        let (_, db2) = decode_snapshot(&bytes).unwrap();
        let e = i.pred("edge");
        let rel = db2.relation(e).unwrap();
        for col in 0..rel.arity() {
            assert!(
                rel.built_column_index(col).is_some(),
                "column {col} not installed"
            );
        }
        let a = i.constant("a");
        assert_eq!(rel.posting_len(0, a), 1);
        assert_eq!(rel.matching(&[Some(a), None]).count(), 1);
    }

    #[test]
    fn encoding_is_deterministic_and_idempotent() {
        let (i, db) = sample();
        let bytes = snapshot_to_vec(&i, &db).unwrap();
        assert_eq!(bytes, snapshot_to_vec(&i, &db).unwrap());
        let (i2, db2) = decode_snapshot(&bytes).unwrap();
        assert_eq!(
            bytes,
            snapshot_to_vec(&i2, &db2).unwrap(),
            "re-encode differs"
        );
    }

    #[test]
    fn inspect_reports_sections() {
        let (i, db) = sample();
        let bytes = snapshot_to_vec(&i, &db).unwrap();
        let summary = inspect_snapshot(&bytes).unwrap();
        assert_eq!(summary.header.version, VERSION);
        assert_eq!(summary.header.symbols, i.len() as u64);
        assert_eq!(summary.header.tuples, 4);
        assert_eq!(summary.relations.len(), 2);
        assert!(summary
            .relations
            .iter()
            .any(|r| r.name == "edge" && r.arity == 2));
        assert_eq!(summary.bytes, bytes.len());
    }

    #[test]
    fn empty_database_round_trips() {
        let i = Interner::new();
        let db = Database::new();
        let bytes = snapshot_to_vec(&i, &db).unwrap();
        let (i2, db2) = decode_snapshot(&bytes).unwrap();
        assert!(i2.is_empty());
        assert_eq!(db2.size(), 0);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn over_wide_values_error_instead_of_truncating() {
        // A >u32::MAX quantity can't be materialized in a test, so the
        // checked-narrowing helper that guards every u32 wire field is
        // exercised directly: pre-fix code wrote `value as u32` here and
        // produced a corrupt-but-valid-CRC snapshot.
        let too_many = u32::MAX as usize + 1;
        match len_u32(too_many, "relation row count") {
            Err(StoreError::TooLarge { what, value }) => {
                assert_eq!(what, "relation row count");
                assert_eq!(value, too_many as u64);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert_eq!(len_u32(u32::MAX as usize, "x").unwrap(), u32::MAX);
        let msg = len_u32(too_many, "posting length").unwrap_err().to_string();
        assert!(msg.contains("posting length"), "unhelpful message: {msg}");
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let (i, db) = sample();
        let mut bytes = snapshot_to_vec(&i, &db).unwrap();
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xFF;
        assert!(matches!(decode_snapshot(&wrong), Err(StoreError::BadMagic)));
        bytes[8] = 0xFE; // version little-endian low byte
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(StoreError::UnsupportedVersion(_))
        ));
    }
}
